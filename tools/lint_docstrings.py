#!/usr/bin/env python
"""Docstring-presence lint for the public API.

Walks the given files/directories (default: ``src/repro/runtime``,
``src/repro/analysis``, ``src/repro/sim``, ``src/repro/mac`` and
``src/repro/backends``) and
reports every public module, class, function or method without a
docstring.  Exit status 1 if anything is missing — CI runs this next
to the test suite.

Usage::

    python tools/lint_docstrings.py [PATH ...]

"Public" means the name (and every enclosing scope's name) has no
leading underscore; ``__init__`` and friends are treated as private.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Sequence

DEFAULT_PATHS = ("src/repro/runtime", "src/repro/analysis",
                 "src/repro/sim", "src/repro/mac",
                 "src/repro/backends")

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_public(name: str) -> bool:
    """Whether ``name`` is part of the public API surface."""
    return not name.startswith("_")


def _walk_defs(node: ast.AST, qualname: str = "") -> Iterator[tuple]:
    """Yield ``(qualname, node)`` for every public def/class inside."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _DEF_NODES):
            if not _is_public(child.name):
                continue
            child_qualname = (f"{qualname}.{child.name}"
                              if qualname else child.name)
            yield child_qualname, child
            if isinstance(child, ast.ClassDef):
                yield from _walk_defs(child, child_qualname)


def missing_docstrings(path: pathlib.Path) -> List[str]:
    """Public defs in ``path`` without docstrings, as ``file:line name``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: List[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}:1 (module)")
    for qualname, node in _walk_defs(tree):
        if ast.get_docstring(node) is None:
            missing.append(f"{path}:{node.lineno} {qualname}")
    return missing


def python_files(target: pathlib.Path) -> List[pathlib.Path]:
    """The ``*.py`` files under ``target`` (or ``target`` itself)."""
    if target.is_dir():
        return sorted(target.rglob("*.py"))
    return [target]


def run(paths: Sequence[str]) -> List[str]:
    """Lint every path; returns the list of violations."""
    violations: List[str] = []
    for raw in paths:
        target = pathlib.Path(raw)
        if not target.exists():
            raise FileNotFoundError(f"no such path: {target}")
        for path in python_files(target):
            violations.extend(missing_docstrings(path))
    return violations


def main(argv: Sequence[str]) -> int:
    """CLI entry point."""
    paths = list(argv) or list(DEFAULT_PATHS)
    violations = run(paths)
    if violations:
        print(f"{len(violations)} public definition(s) missing docstrings:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"docstring lint clean ({', '.join(paths)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
