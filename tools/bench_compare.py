#!/usr/bin/env python
"""Benchmark-regression gate for CI.

Compares a fresh ``pytest-benchmark --benchmark-json`` run against the
committed baseline (``benchmarks/results/baseline.json``) and exits
non-zero if any benchmark's median regressed by more than the
threshold (default 25%).  Faster-than-baseline results and benchmarks
missing from either side never fail the gate — new benchmarks appear
before their baseline is refreshed, and retired ones disappear after —
but both are reported so the log shows exactly what was compared.

Usage::

    python tools/bench_compare.py CURRENT.json BASELINE.json \
        [--threshold 0.25] [--normalize]

``--normalize`` divides every current/baseline ratio by the geometric
mean of all ratios before applying the threshold.  A uniformly slower
or faster machine moves every ratio by the same factor, so the
normalized gate ignores runner-speed differences and only fails when
one benchmark regresses *relative to the others* — which is what lets
CI compare against a baseline recorded on different hardware.

Refresh the baseline by re-running the suite on a quiet machine::

    REPRO_BENCH_SCALE=0.05 PYTHONPATH=src python -m pytest \
        benchmarks/bench_simulator_performance.py \
        --benchmark-json=benchmarks/results/baseline.json
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
from typing import Dict, List, Sequence


def load_medians(path: pathlib.Path) -> Dict[str, float]:
    """``benchmark name -> median seconds`` from a pytest-benchmark JSON."""
    payload = json.loads(path.read_text())
    medians: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        medians[str(bench["name"])] = float(bench["stats"]["median"])
    return medians


def compare(current: Dict[str, float], baseline: Dict[str, float],
            threshold: float, normalize: bool = False) -> List[str]:
    """Regression messages for benchmarks slower than ``1 + threshold``.

    With ``normalize`` every ratio is divided by the geometric mean of
    all common ratios first (machine-speed calibration).  Returns one
    message per offending benchmark; an empty list means the gate
    passes.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    common = sorted(set(current) & set(baseline))
    calibration = 1.0
    if normalize and common:
        calibration = math.exp(
            sum(math.log(current[name] / baseline[name])
                for name in common) / len(common))
        print(f"  (machine calibration: geometric-mean ratio "
              f"{calibration:.2f}x divided out)")
    failures: List[str] = []
    for name in common:
        ratio = current[name] / baseline[name] / calibration
        status = "ok"
        if ratio > 1 + threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: median {current[name] * 1e3:.2f} ms vs baseline "
                f"{baseline[name] * 1e3:.2f} ms ({ratio:.2f}x)")
        print(f"  {name:<44} {current[name] * 1e3:>9.2f} ms "
              f"(baseline {baseline[name] * 1e3:>9.2f} ms, "
              f"{ratio:>5.2f}x) {status}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<44} {current[name] * 1e3:>9.2f} ms "
              f"(no baseline yet)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:<44} missing from current run "
              f"(baseline {baseline[name] * 1e3:.2f} ms)")
    return failures


def main(argv: Sequence[str]) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="fail on >threshold median benchmark regressions")
    parser.add_argument("current", type=pathlib.Path,
                        help="pytest-benchmark JSON of this run")
    parser.add_argument("baseline", type=pathlib.Path,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional median slowdown "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide out the geometric-mean ratio so a "
                             "uniformly slower/faster machine does not "
                             "trip the gate (use when the baseline was "
                             "recorded on different hardware)")
    args = parser.parse_args(argv)
    current = load_medians(args.current)
    baseline = load_medians(args.baseline)
    if not current:
        print(f"no benchmarks found in {args.current}", file=sys.stderr)
        return 2
    print(f"comparing {len(current)} benchmark(s) against "
          f"{args.baseline} (threshold {args.threshold:.0%}):")
    failures = compare(current, baseline, args.threshold,
                       normalize=args.normalize)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("benchmark gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
