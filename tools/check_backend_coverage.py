#!/usr/bin/env python
"""Backend-coverage gate for CI: dual-backend coverage can only grow.

The experiment registry declares which repetition backends every
experiment supports (``Experiment.backends``).  This tool compares the
live registry against the committed manifest
``benchmarks/results/backend_coverage.json`` and exits non-zero if

* a manifest experiment disappeared from the registry, or
* an experiment lost a backend it used to offer (e.g. a dual-backend
  experiment dropping its ``vector`` entry).

New experiments and newly gained backends never fail the gate — they
are reported with a reminder to refresh the manifest so the new
coverage becomes load-bearing.  Refresh with::

    PYTHONPATH=src python tools/check_backend_coverage.py --refresh

Usage::

    PYTHONPATH=src python tools/check_backend_coverage.py [BASELINE]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Sequence

DEFAULT_BASELINE = (pathlib.Path(__file__).resolve().parent.parent
                    / "benchmarks" / "results" / "backend_coverage.json")


def registry_coverage() -> Dict[str, List[str]]:
    """``experiment name -> supported backends`` from the live registry."""
    from repro.runtime import registry
    return {experiment.name: list(experiment.backends)
            for experiment in registry.experiments()}


def load_baseline(path: pathlib.Path) -> Dict[str, List[str]]:
    """The committed coverage manifest."""
    payload = json.loads(path.read_text())
    return {str(name): [str(b) for b in backends]
            for name, backends in payload.items()}


def compare(current: Dict[str, List[str]],
            baseline: Dict[str, List[str]]) -> List[str]:
    """Coverage regressions (one message each); empty means the gate
    passes."""
    failures: List[str] = []
    for name in sorted(baseline):
        if name not in current:
            failures.append(
                f"{name}: experiment disappeared from the registry "
                f"(was [{', '.join(baseline[name])}])")
            continue
        lost = [b for b in baseline[name] if b not in current[name]]
        if lost:
            failures.append(
                f"{name}: lost backend(s) {', '.join(lost)} "
                f"(was [{', '.join(baseline[name])}], now "
                f"[{', '.join(current[name])}])")
        gained = [b for b in current[name] if b not in baseline[name]]
        if gained:
            print(f"  {name}: gained backend(s) {', '.join(gained)} — "
                  "refresh the manifest to make them load-bearing")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: new experiment "
              f"([{', '.join(current[name])}]) — not in the manifest yet")
    return failures


def refresh(path: pathlib.Path, current: Dict[str, List[str]]) -> None:
    """Rewrite the manifest from the live registry."""
    path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(current)} experiment(s) to {path}")


def main(argv: Sequence[str]) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="fail when an experiment loses a repetition backend")
    parser.add_argument("baseline", type=pathlib.Path, nargs="?",
                        default=DEFAULT_BASELINE,
                        help="committed coverage manifest (default: "
                             "benchmarks/results/backend_coverage.json)")
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite the manifest from the live "
                             "registry instead of gating against it")
    args = parser.parse_args(argv)
    current = registry_coverage()
    if args.refresh:
        refresh(args.baseline, current)
        return 0
    if not args.baseline.exists():
        print(f"no manifest at {args.baseline}; run with --refresh first",
              file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)
    dual = sum(1 for backends in current.values() if len(backends) > 1)
    print(f"checking {len(current)} experiment(s) "
          f"({dual} dual-backend) against {args.baseline}:")
    failures = compare(current, baseline)
    if failures:
        print(f"\n{len(failures)} backend-coverage regression(s):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("backend-coverage gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
