#!/usr/bin/env python
"""Backend-coverage gate for CI: dual-backend coverage can only grow.

The experiment registry *derives* which repetition backends every
experiment supports from its declared scenario and the kernels'
capabilities (:mod:`repro.backends`).  This tool compares that derived
coverage against the committed manifest
``benchmarks/results/backend_coverage.json`` and exits non-zero if

* a manifest experiment disappeared from the registry,
* an experiment lost a backend it used to offer (e.g. a dual-backend
  experiment dropping its ``vector`` entry), or
* the coverage matrices generated into ``README.md`` and
  ``docs/architecture.md`` (see ``tools/gen_backend_docs.py``) drifted
  from the manifest.

New experiments and newly gained backends never fail the gate — they
are reported with a reminder to refresh the manifest so the new
coverage becomes load-bearing.  Refresh (manifest *and* generated doc
matrices) with::

    PYTHONPATH=src python tools/check_backend_coverage.py --refresh

Usage::

    PYTHONPATH=src python tools/check_backend_coverage.py [BASELINE]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Sequence

import gen_backend_docs

DEFAULT_BASELINE = (pathlib.Path(__file__).resolve().parent.parent
                    / "benchmarks" / "results" / "backend_coverage.json")


def registry_coverage() -> Dict[str, Dict]:
    """Dispatcher-derived coverage of the live registry.

    ``experiment name -> {"backends": [...], "kernel": ...}`` for
    kernel-capable experiments (the fastest kernel ``auto`` picks when
    every optional dependency is installed) or ``{"backends": [...],
    "reason": ...}`` for event-only ones (the structured reason every
    kernel was rejected).  Capability-only: the derivation ignores
    which optional dependencies (numba) happen to be importable here,
    so the manifest — and therefore the gate — is identical in numba
    and numba-free environments.
    """
    from repro.backends import dispatch
    from repro.runtime import registry
    out: Dict[str, Dict] = {}
    for experiment in registry.experiments():
        entry: Dict[str, object] = {"backends": list(experiment.backends)}
        if len(experiment.backends) > 1:
            kernels = [backend for backend in dispatch.eligible(
                           experiment.scenario, assume_available=True)
                       if backend.name != "event"]
            entry["kernel"] = kernels[0].kernel
        else:
            entry["reason"] = experiment.resolve_backend("auto").fallback
        out[experiment.name] = entry
    return out


def load_baseline(path: pathlib.Path) -> Dict[str, Dict]:
    """The committed coverage manifest (legacy flat form normalised)."""
    return gen_backend_docs.load_manifest(path)


def compare(current: Dict[str, Dict],
            baseline: Dict[str, Dict]) -> List[str]:
    """Coverage regressions (one message each); empty means the gate
    passes."""
    failures: List[str] = []
    for name in sorted(baseline):
        old = baseline[name]["backends"]
        if name not in current:
            failures.append(
                f"{name}: experiment disappeared from the registry "
                f"(was [{', '.join(old)}])")
            continue
        now = current[name]["backends"]
        lost = [b for b in old if b not in now]
        if lost:
            failures.append(
                f"{name}: lost backend(s) {', '.join(lost)} "
                f"(was [{', '.join(old)}], now [{', '.join(now)}])")
        gained = [b for b in now if b not in old]
        if gained:
            print(f"  {name}: gained backend(s) {', '.join(gained)} — "
                  "refresh the manifest to make them load-bearing")
    for name in sorted(set(current) - set(baseline)):
        backends = current[name]["backends"]
        print(f"  {name}: new experiment "
              f"([{', '.join(backends)}]) — not in the manifest yet")
    return failures


def refresh(path: pathlib.Path, current: Dict[str, Dict]) -> None:
    """Rewrite the manifest from the live registry and regenerate the
    doc matrices from it."""
    path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {len(current)} experiment(s) to {path}")
    gen_backend_docs.write_targets(current)


def main(argv: Sequence[str]) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="fail when an experiment loses a repetition backend "
                    "or the generated doc matrices drift")
    parser.add_argument("baseline", type=pathlib.Path, nargs="?",
                        default=DEFAULT_BASELINE,
                        help="committed coverage manifest (default: "
                             "benchmarks/results/backend_coverage.json)")
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite the manifest (and the generated "
                             "doc matrices) from the live registry "
                             "instead of gating against it")
    parser.add_argument("--skip-docs", action="store_true",
                        help="skip the generated-doc sync check (e.g. "
                             "when gating against a non-default "
                             "baseline in tests)")
    args = parser.parse_args(argv)
    current = registry_coverage()
    if args.refresh:
        refresh(args.baseline, current)
        return 0
    if not args.baseline.exists():
        print(f"no manifest at {args.baseline}; run with --refresh first",
              file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)
    dual = sum(1 for entry in current.values()
               if len(entry["backends"]) > 1)
    print(f"checking {len(current)} experiment(s) "
          f"({dual} dual-backend) against {args.baseline}:")
    failures = compare(current, baseline)
    if not args.skip_docs:
        failures += gen_backend_docs.stale_targets(baseline)
    if failures:
        print(f"\n{len(failures)} backend-coverage regression(s):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("backend-coverage gate clean (manifest + generated docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
