#!/usr/bin/env python
"""Generate the backend-coverage matrices from the committed manifest.

``benchmarks/results/backend_coverage.json`` is the single source of
truth for which experiments run on which backends (it is itself
refreshed from the dispatcher-derived registry by
``tools/check_backend_coverage.py --refresh``).  This tool renders it
as the markdown coverage matrix embedded in ``README.md`` and
``docs/architecture.md`` between the marker comments, so the docs can
never drift from the manifest::

    python tools/gen_backend_docs.py --write   # regenerate both docs
    python tools/gen_backend_docs.py --check   # exit 1 if stale (CI)

The coverage gate runs the ``--check`` mode automatically.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Sequence

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The committed coverage manifest the matrices are rendered from.
MANIFEST = ROOT / "benchmarks" / "results" / "backend_coverage.json"

#: Documents carrying a generated matrix between the markers.
TARGETS = (ROOT / "README.md", ROOT / "docs" / "architecture.md")

BEGIN_MARK = ("<!-- backend-coverage-matrix:begin — generated from "
              "benchmarks/results/backend_coverage.json by "
              "tools/gen_backend_docs.py; do not edit by hand -->")
END_MARK = "<!-- backend-coverage-matrix:end -->"


def load_manifest(path: pathlib.Path = MANIFEST) -> Dict[str, Dict]:
    """The manifest as ``name -> {backends, kernel?/reason?}``.

    Legacy flat entries (``name -> [backends]``) are normalised so the
    tool keeps working against historic manifests.
    """
    payload = json.loads(path.read_text())
    out: Dict[str, Dict] = {}
    for name, entry in payload.items():
        if isinstance(entry, list):
            entry = {"backends": entry}
        out[str(name)] = {
            "backends": [str(b) for b in entry.get("backends", [])],
            **({"kernel": str(entry["kernel"])} if "kernel" in entry
               else {}),
            **({"reason": str(entry["reason"])} if "reason" in entry
               else {}),
        }
    return out


def render_matrix(coverage: Dict[str, Dict]) -> str:
    """The coverage table as a markdown block (markers included)."""
    lines = [
        BEGIN_MARK,
        "| Experiment | `event` | `vector` | `jit` "
        "| Fastest kernel / why event-only |",
        "|---|:-:|:-:|:-:|---|",
    ]
    dual = jit = 0
    for name, entry in coverage.items():
        has_vector = "vector" in entry["backends"]
        has_jit = "jit" in entry["backends"]
        dual += has_vector
        jit += has_jit
        if has_vector or has_jit:
            note = entry.get("kernel", "")
        else:
            note = f"event-only: {entry.get('reason', '')}"
        lines.append(f"| `{name}` | ✓ | {'✓' if has_vector else '—'} "
                     f"| {'✓' if has_jit else '—'} | {note} |")
    lines.append("")
    lines.append(f"**{dual} of {len(coverage)} experiments are "
                 f"dual-backend; {jit} also offer the numba jit "
                 "tier.** The matrix is generated from "
                 "`benchmarks/results/backend_coverage.json` — edit "
                 "nothing here by hand; refresh with "
                 "`python tools/check_backend_coverage.py --refresh`.")
    lines.append(END_MARK)
    return "\n".join(lines)


def apply_matrix(text: str, block: str, path: pathlib.Path) -> str:
    """Replace the marker-delimited block inside ``text``."""
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            f"{path} has no backend-coverage markers; add\n"
            f"{BEGIN_MARK}\n{END_MARK}\nwhere the matrix belongs")
    return text[:begin] + block + text[end + len(END_MARK):]


def _label(path: pathlib.Path) -> str:
    """Repo-relative path when possible (tests use temp dirs)."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def stale_targets(coverage: Dict[str, Dict],
                  targets: Sequence[pathlib.Path] = TARGETS) -> List[str]:
    """Targets whose embedded matrix differs from the manifest."""
    block = render_matrix(coverage)
    stale: List[str] = []
    for path in targets:
        try:
            fresh = apply_matrix(path.read_text(), block, path)
        except (OSError, ValueError) as exc:
            stale.append(f"{_label(path)}: {exc}")
            continue
        if fresh != path.read_text():
            stale.append(f"{_label(path)}: coverage matrix is "
                         "out of sync with the manifest (run `python "
                         "tools/gen_backend_docs.py --write`)")
    return stale


def write_targets(coverage: Dict[str, Dict],
                  targets: Sequence[pathlib.Path] = TARGETS) -> None:
    """Regenerate the matrix block in every target document."""
    block = render_matrix(coverage)
    for path in targets:
        path.write_text(apply_matrix(path.read_text(), block, path))
        print(f"wrote coverage matrix to {_label(path)}")


def main(argv: Sequence[str]) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="render the backend-coverage matrices from the "
                    "committed manifest")
    parser.add_argument("--manifest", type=pathlib.Path, default=MANIFEST,
                        help="coverage manifest (default: "
                             "benchmarks/results/backend_coverage.json)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="regenerate the matrices in place")
    mode.add_argument("--check", action="store_true",
                      help="exit non-zero if any matrix is stale")
    args = parser.parse_args(argv)
    coverage = load_manifest(args.manifest)
    if args.write:
        write_targets(coverage)
        return 0
    stale = stale_targets(coverage)
    if stale:
        print(f"{len(stale)} stale coverage matrix target(s):",
              file=sys.stderr)
        for line in stale:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("coverage matrices in sync with the manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
