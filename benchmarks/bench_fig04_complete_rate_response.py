"""Figure 4 — the complete picture: FIFO + contending cross-traffic.

Expected shape: the probe deviates when probe + FIFO aggregate hits the
station's fair share; the FIFO cross-traffic throughput decays as the
probe crowds it out of the shared queue; the probe's plateau matches
equation (4).
"""

import numpy as np


def test_fig04_complete_rate_response(run_experiment):
    run_experiment(
        "fig4",
        minimum=1,
        probe_rates_bps=np.arange(0.5e6, 10.01e6, 0.5e6),
        cross_rate_bps=3.0e6,
        fifo_rate_bps=1.5e6,
        duration=4.0,
        warmup=0.5,
        seed=104,
    )
