"""Figure 15 — short trains with FIFO cross-traffic re-introduced.

Expected shape: like figure 13 but with looser deviations below the
achievable throughput (the FIFO burstiness loosens the bounds); the
high-rate overestimation survives regardless of the FIFO traffic
(equation (30), region 3).
"""

import numpy as np


def test_fig15_short_trains_fifo(run_experiment):
    run_experiment(
        "fig15",
        probe_rates_bps=np.arange(0.5e6, 10.01e6, 0.5e6),
        train_lengths=(3, 10, 50),
        cross_rate_bps=3e6,
        fifo_rate_bps=1e6,
        seed=115,
    )
