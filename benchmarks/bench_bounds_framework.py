"""Analytical-framework bench — measured E[gO] vs. the strict
transient bounds (equations (21) + (23)).

For a sweep of probing rates the measured mean output gap must lie
inside the sample-path bounds computed from the measured per-index
mean access delays.  This is the machine-checkable core of section 6.
"""

import numpy as np


def test_bounds_framework(run_experiment):
    run_experiment(
        "bounds",
        probe_rates_bps=np.array([1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 8e6]),
        cross_rate_bps=3e6,
        n_packets=10,
        seed=202,
    )
