"""Figure 7 — access-delay histograms: 1st vs. steady-state packet.

Expected shape: the first packet's distribution concentrates at small
delays (often the bare frame airtime); the steady-state packet's is
shifted right with a heavier tail.
"""


def test_fig07_delay_histograms(run_experiment):
    run_experiment(
        "fig7",
        probe_rate_bps=5e6,
        cross_rate_bps=4e6,
        n_packets=250,
        bins=30,
        seed=107,
    )
