"""Figure 7 — access-delay histograms: 1st vs. steady-state packet.

Expected shape: the first packet's distribution concentrates at small
delays (often the bare frame airtime); the steady-state packet's is
shifted right with a heavier tail.
"""

from repro.analysis.transient import fig7_delay_histograms

from conftest import scaled


def test_fig07_delay_histograms(benchmark, record_result):
    result = benchmark.pedantic(
        fig7_delay_histograms,
        kwargs=dict(
            probe_rate_bps=5e6,
            cross_rate_bps=4e6,
            n_packets=250,
            repetitions=scaled(500),
            bins=30,
            seed=107,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)
