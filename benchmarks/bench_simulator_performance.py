"""Micro-benchmarks of the substrates themselves.

Not figure reproductions — these track the raw speed of the pieces the
experiments are built on, so performance regressions in the simulator
show up in CI: event-engine scheduling throughput, DCF packets
simulated per second, and the Lindley recursion.
"""

import numpy as np

from repro.mac.scenario import StationSpec, WlanScenario
from repro.queueing.lindley import lindley_recursion
from repro.sim.engine import Simulator
from repro.traffic.generators import PoissonGenerator


def test_engine_event_throughput(benchmark):
    """Schedule + fire 20k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule_after(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_dcf_packet_throughput(benchmark):
    """Simulate ~3k packet exchanges with two contending stations."""

    scenario = WlanScenario()
    specs = [
        StationSpec("a", generator=PoissonGenerator(3e6, 1500)),
        StationSpec("b", generator=PoissonGenerator(3e6, 1500)),
    ]

    def run():
        result = scenario.run(specs, horizon=6.0, seed=1)
        return result.successes

    successes = benchmark(run)
    assert successes > 2500


def test_lindley_recursion_throughput(benchmark):
    """Push 100k packets through the Lindley recursion."""

    rng = np.random.default_rng(0)
    arrivals = np.sort(rng.uniform(0, 100.0, 100_000))
    services = rng.exponential(1e-3, 100_000)

    def run():
        starts, departures = lindley_recursion(arrivals, services)
        return float(departures[-1])

    assert benchmark(run) > 0
