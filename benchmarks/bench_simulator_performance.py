"""Micro-benchmarks of the substrates themselves.

Not figure reproductions — these track the raw speed of the pieces the
experiments are built on, so performance regressions in the simulator
show up in CI: event-engine scheduling throughput, DCF packets
simulated per second, the vectorized batch kernel (including its
speedup floor over the event engine), and the Lindley recursion.

The bench-regression CI job runs this file at ``REPRO_BENCH_SCALE``
0.05 and compares the medians against
``benchmarks/results/baseline.json`` via ``tools/bench_compare.py``.
"""

import time
import tracemalloc

import numpy as np

from conftest import bench_scale

from repro.analysis.saturation import simulate_saturated
from repro.backends import BatchRequest, ScenarioSpec, dispatch
from repro.core.batch import OutputGapReducer
from repro.core.dispersion import output_gaps_batch
from repro.runtime.executor import chunked_reps, run_batch
from repro.mac.scenario import StationSpec, WlanScenario
from repro.queueing.lindley import lindley_batch, lindley_recursion
from repro.sim.engine import Simulator
from repro.sim.probe_vector import (
    CbrCrossSpec,
    OnOffCrossSpec,
    PoissonCrossSpec,
    simulate_probe_train_batch,
    simulate_steady_state_batch,
)
from repro.sim.vector import simulate_saturated_batch
from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import OnOffGenerator, PoissonGenerator
from repro.traffic.probe import ProbeTrain


def _best_speedup(event_fn, vector_fn, floor=5.0, attempts=3):
    """Best event/vector wall-clock ratio over a few attempts.

    Shared shape of every backend speedup floor: a single
    descheduling hiccup on a noisy shared runner must not fail the
    gate, so the best of ``attempts`` measurements is compared against
    the floor (typical clean ratios sit far above it).
    """
    best, last = 0.0, (0.0, 0.0)
    for _ in range(attempts):
        start = time.perf_counter()
        event_fn()
        event_s = time.perf_counter() - start
        start = time.perf_counter()
        vector_fn()
        vector_s = time.perf_counter() - start
        last = (event_s, vector_s)
        best = max(best, event_s / vector_s)
        if best >= floor:
            break
    return best, last


def test_engine_event_throughput(benchmark):
    """Schedule + fire 20k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule_after(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_dcf_packet_throughput(benchmark):
    """Simulate packet exchanges with two contending stations.

    ~3k packets at full scale; ``REPRO_BENCH_SCALE`` shortens the
    horizon (clamped at 1 s of simulated time) for the quick CI pass.
    """
    horizon = max(1.0, 6.0 * bench_scale())
    scenario = WlanScenario()
    specs = [
        StationSpec("a", generator=PoissonGenerator(3e6, 1500)),
        StationSpec("b", generator=PoissonGenerator(3e6, 1500)),
    ]

    def run():
        result = scenario.run(specs, horizon=horizon, seed=1)
        return result.successes

    successes = benchmark(run)
    # ~500 exchanges per simulated second at 6 Mb/s offered load.
    assert successes > 400 * horizon


def test_vector_dcf_batch_throughput(benchmark):
    """Vector kernel: 10 saturated stations, scaled repetition batch.

    100 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 20 repetitions, below which fixed per-round
    dispatch dominates and the bench stops measuring the kernel).
    """
    repetitions = max(20, int(round(100 * bench_scale())))

    def run():
        batch = simulate_saturated_batch(10, 20, repetitions, seed=1)
        return int(batch.successes.sum())

    assert benchmark(run) == 10 * 20 * repetitions


def test_vector_backend_speedup():
    """The vector backend must beat the event engine by >= 5x.

    Acceptance floor of the vectorized fast path: a 10-station
    saturated scenario at 100 repetitions, identical workload on both
    backends.  Deliberately *not* scaled by ``REPRO_BENCH_SCALE``: the
    kernel pays a fixed ~10 ms of per-round numpy dispatch that only
    amortises across a real batch, so shrinking the batch would test a
    regime the fast path is not built for.
    """
    stations, packets = 10, 10
    repetitions = 100
    expected = stations * packets

    def run_event():
        event = simulate_saturated(stations, packets, repetitions, seed=2,
                                   backend="event")
        assert np.all(event.successes == expected)

    def run_vector():
        vector = simulate_saturated(stations, packets, repetitions, seed=2,
                                    backend="vector")
        assert np.all(vector.successes == expected)

    best, (event_s, vector_s) = _best_speedup(run_event, run_vector)
    print(f"\nvector backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s, "
          f"{repetitions} repetitions)")
    assert best >= 5.0, (
        f"vector backend only {best:.1f}x faster across 3 attempts "
        f"(last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_lindley_recursion_throughput(benchmark):
    """Push 100k packets through the Lindley recursion."""

    rng = np.random.default_rng(0)
    arrivals = np.sort(rng.uniform(0, 100.0, 100_000))
    services = rng.exponential(1e-3, 100_000)

    def run():
        starts, departures = lindley_recursion(arrivals, services)
        return float(departures[-1])

    assert benchmark(run) > 0


def test_lindley_batch_throughput(benchmark):
    """Batched Lindley: 100 repetitions x 1000 packets in one pass."""

    rng = np.random.default_rng(1)
    arrivals = np.sort(rng.uniform(0, 10.0, (100, 1000)), axis=1)
    services = rng.exponential(1e-3, (100, 1000))

    def run():
        starts, departures = lindley_batch(arrivals, services)
        return float(departures[:, -1].sum())

    assert benchmark(run) > 0


def test_probe_vector_batch_throughput(benchmark):
    """Probe-train kernel: one 25-packet train batch under contention.

    60 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 15 repetitions, below which fixed per-event
    numpy dispatch dominates and the bench stops measuring the
    kernel).
    """
    repetitions = max(15, int(round(60 * bench_scale())))
    train = ProbeTrain.at_rate(25, 5e6, 1500)

    def run():
        batch = simulate_probe_train_batch(
            train.n, train.gap, repetitions, size_bytes=1500,
            cross=[PoissonCrossSpec(4e6 / (1500 * 8), 1500)],
            horizon=1.0, seed=1)
        return float(batch.recv_times[:, -1].sum())

    assert benchmark(run) > 0


def test_probe_vector_backend_speedup():
    """The probe-train vector backend must beat the event engine >= 5x.

    Acceptance floor of the vectorized rate-response pipeline: a full
    rate scan — 20 probing rates x 60 repetitions of a 10-packet train
    against 2 Mb/s Poisson cross-traffic — on both backends of the
    same channel.  Deliberately *not* scaled by ``REPRO_BENCH_SCALE``:
    the kernel pays fixed per-event numpy dispatch that only amortises
    across a real batch, so shrinking the batch would test a regime
    the fast path is not built for.
    """
    repetitions, n_packets = 60, 10
    rates = np.linspace(1e6, 8e6, 20)
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05)

    def scan(backend):
        total = 0.0
        for k, rate in enumerate(rates):
            train = ProbeTrain.at_rate(n_packets, float(rate), 1500)
            raws = channel.send_trains(train, repetitions,
                                       seed=7 + 13 * k, backend=backend)
            total += sum(float(r.recv_times[-1]) for r in raws)
        assert total > 0

    best, (event_s, vector_s) = _best_speedup(
        lambda: scan("event"), lambda: scan("vector"))
    print(f"\nprobe vector backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s, "
          f"{len(rates)} rates x {repetitions} repetitions)")
    assert best >= 5.0, (
        f"probe vector backend only {best:.1f}x faster across 3 attempts "
        f"(last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_probe_vector_rts_batch_throughput(benchmark):
    """Probe-train kernel in RTS/CTS mode (ablation-rts's setting).

    60 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 15 repetitions, below which fixed per-event
    numpy dispatch dominates).
    """
    repetitions = max(15, int(round(60 * bench_scale())))
    train = ProbeTrain.at_rate(25, 5e6, 1500)

    def run():
        batch = simulate_probe_train_batch(
            train.n, train.gap, repetitions, size_bytes=1500,
            cross=[PoissonCrossSpec(4e6 / (1500 * 8), 1500)],
            horizon=1.0, seed=1, rts_threshold=0)
        return float(batch.recv_times[:, -1].sum())

    assert benchmark(run) > 0


def test_probe_vector_queue_trace_batch_throughput(benchmark):
    """Probe-train kernel with queue tracking (fig8's setting).

    40 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 10 repetitions).
    """
    repetitions = max(10, int(round(40 * bench_scale())))
    train = ProbeTrain.at_rate(30, 8e6, 1500)

    def run():
        batch = simulate_probe_train_batch(
            train.n, train.gap, repetitions, size_bytes=1500,
            cross=[PoissonCrossSpec(2e6 / (1500 * 8), 1500)],
            horizon=1.0, seed=1, track_queues=True)
        return float(batch.queue_traces[0]
                     .size_at(batch.send_times).sum())

    assert benchmark(run) >= 0


def test_steady_cbr_batch_throughput(benchmark):
    """Steady-state kernel with CBR cross-traffic (ablation-bianchi).

    20 repetitions of a 3-station saturated second at full scale;
    ``REPRO_BENCH_SCALE`` shrinks the batch (clamped at 5).
    """
    repetitions = max(5, int(round(20 * bench_scale())))
    pps = 9e6 / (1500 * 8)

    def run():
        batch = simulate_steady_state_batch(
            9e6, repetitions, size_bytes=1500,
            cross=[CbrCrossSpec(pps, 1500)] * 2,
            duration=1.0, warmup=0.3, seed=1)
        return float(np.sum(batch.probe_bits + batch.cross_bits.sum(axis=1)))

    assert benchmark(run) > 0


def test_multihop_chain_batch_throughput(benchmark):
    """Chained per-hop kernels (ext-multihop's path).

    40 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 10 repetitions).
    """
    from repro.path import NetworkPath, SimulatedPathChannel, WiredHop, WlanHop
    repetitions = max(10, int(round(40 * bench_scale())))
    channel = SimulatedPathChannel(NetworkPath([
        WiredHop(100e6, prop_delay=1e-3),
        WlanHop([("neighbour", PoissonGenerator(4e6, 1500))]),
    ]))
    train = ProbeTrain.at_rate(20, 3e6, 1500)

    def run():
        batch = channel.send_trains_batch(train, repetitions, seed=1)
        return float(batch.recv_times[:, -1].sum())

    assert benchmark(run) > 0


def test_fig8_queue_trace_backend_speedup():
    """fig8's vector path must beat the event engine by >= 5x.

    Acceptance floor of the queue-trace capability: fig8's
    configuration shape (8 Mb/s probe, 2 Mb/s cross, queue tracking)
    at 60 repetitions of a 40-packet train on both backends of
    ``collect_delay_matrix``.  Deliberately *not* scaled by
    ``REPRO_BENCH_SCALE``: the kernel pays fixed per-event numpy
    dispatch that only amortises across a real batch.
    """
    from repro.analysis.transient import collect_delay_matrix
    cross = [("cross", PoissonGenerator(2e6, 1500))]
    kwargs = dict(n_packets=40, repetitions=60, seed=5,
                  track_queues=True)

    best, (event_s, vector_s) = _best_speedup(
        lambda: collect_delay_matrix(8e6, cross, backend="event",
                                     **kwargs),
        lambda: collect_delay_matrix(8e6, cross, backend="vector",
                                     **kwargs))
    print(f"\nfig8 queue-trace backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s)")
    assert best >= 5.0, (
        f"fig8 vector path only {best:.1f}x faster across 3 attempts "
        f"(last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_rts_cts_backend_speedup():
    """ablation-rts's vector path must beat the event engine by >= 5x.

    Acceptance floor of the RTS/CTS airtime mode: the ablation's
    configuration shape (5 Mb/s probe, 4 Mb/s cross, RTS on every
    frame) at 60 repetitions of a 40-packet train.  Not scaled by
    ``REPRO_BENCH_SCALE`` (see the probe-kernel floor).
    """
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(4e6, 1500))], warmup=0.1,
        rts_threshold=0)
    train = ProbeTrain.at_rate(40, 5e6, 1500)

    best, (event_s, vector_s) = _best_speedup(
        lambda: channel.send_trains_dense(train, 60, seed=3,
                                          backend="event"),
        lambda: channel.send_trains_dense(train, 60, seed=3,
                                          backend="vector"))
    print(f"\nRTS/CTS backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s)")
    assert best >= 5.0, (
        f"RTS/CTS vector path only {best:.1f}x faster across 3 attempts "
        f"(last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_cbr_steady_backend_speedup():
    """ablation-bianchi's vector path must beat the event engine >= 5x.

    Acceptance floor of the batched CBR sampler: the ablation's
    configuration shape (9 Mb/s CBR per station, saturated channel) at
    station counts 2 and 3 with a 40-repetition batch per count over a
    2 s horizon.  Not scaled by ``REPRO_BENCH_SCALE`` (the ratio is
    what is under test).
    """
    from repro.analysis.ablations import ablation_bianchi_calibration
    kwargs = dict(station_counts=(2, 3), repetitions=40, duration=2.0,
                  warmup=0.4, seed=2)

    best, (event_s, vector_s) = _best_speedup(
        lambda: ablation_bianchi_calibration(backend="event", **kwargs),
        lambda: ablation_bianchi_calibration(backend="vector", **kwargs))
    print(f"\nCBR steady backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s)")
    assert best >= 5.0, (
        f"CBR steady vector path only {best:.1f}x faster across 3 "
        f"attempts (last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_multihop_chain_backend_speedup():
    """ext-multihop's vector path must beat the event engine by >= 5x.

    Acceptance floor of the multihop chaining layer: ext-multihop's
    path (100 Mb/s wired backbone + WLAN last mile against 4 Mb/s
    Poisson cross-traffic) probed with 60 repetitions of a 30-packet
    train on both backends.  Not scaled by ``REPRO_BENCH_SCALE`` (see
    the probe-kernel floor).
    """
    from repro.path import NetworkPath, SimulatedPathChannel, WiredHop, WlanHop
    channel = SimulatedPathChannel(NetworkPath([
        WiredHop(100e6, prop_delay=1e-3),
        WlanHop([("neighbour", PoissonGenerator(4e6, 1500))]),
    ]))
    train = ProbeTrain.at_rate(30, 3e6, 1500)

    best, (event_s, vector_s) = _best_speedup(
        lambda: channel.send_trains(train, 60, seed=7, backend="event"),
        lambda: channel.send_trains(train, 60, seed=7, backend="vector"))
    print(f"\nmultihop chain backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s)")
    assert best >= 5.0, (
        f"multihop vector path only {best:.1f}x faster across 3 attempts "
        f"(last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_retry_limit_batch_throughput(benchmark):
    """Saturated kernel with a retry cap (ext-retry-limit's setting).

    100 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 20 repetitions, below which fixed per-round
    numpy dispatch dominates).
    """
    repetitions = max(20, int(round(100 * bench_scale())))

    def run():
        batch = simulate_saturated_batch(10, 20, repetitions, seed=1,
                                         retry_limit=2)
        return int(batch.successes.sum())

    assert benchmark(run) > 0


def test_onoff_probe_batch_throughput(benchmark):
    """Probe-train kernel against on-off cross-traffic (ext-onoff).

    60 repetitions at full scale; ``REPRO_BENCH_SCALE`` shrinks the
    batch (clamped at 15 repetitions, below which fixed per-event
    numpy dispatch dominates).
    """
    repetitions = max(15, int(round(60 * bench_scale())))
    train = ProbeTrain.at_rate(25, 5e6, 1500)

    def run():
        batch = simulate_probe_train_batch(
            train.n, train.gap, repetitions, size_bytes=1500,
            cross=[OnOffCrossSpec(6e6 / (1500 * 8), 1500,
                                  mean_on=0.05, mean_off=0.05)],
            horizon=1.0, seed=1)
        return float(batch.recv_times[:, -1].sum())

    assert benchmark(run) > 0


def test_retry_limit_backend_speedup():
    """ext-retry-limit's vector path must beat the event engine >= 5x.

    Acceptance floor of the retry-capped saturated kernel: 10
    saturated stations at retry limit 2 with a 100-repetition batch on
    both backends.  Deliberately *not* scaled by ``REPRO_BENCH_SCALE``:
    the kernel pays fixed per-round numpy dispatch that only amortises
    across a real batch.
    """
    kwargs = dict(retry_limit=2, seed=2)

    def run_event():
        batch = simulate_saturated(10, 10, 100, backend="event", **kwargs)
        assert batch.drops is not None

    def run_vector():
        batch = simulate_saturated(10, 10, 100, backend="vector", **kwargs)
        assert batch.drops is not None

    best, (event_s, vector_s) = _best_speedup(run_event, run_vector)
    print(f"\nretry-limit backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s)")
    assert best >= 5.0, (
        f"retry-limit vector path only {best:.1f}x faster across 3 "
        f"attempts (last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_onoff_backend_speedup():
    """ext-onoff's vector path must beat the event engine by >= 5x.

    Acceptance floor of the on-off cross-traffic sampler: ext-onoff's
    configuration shape (4 Mb/s probe train against a 6 Mb/s-peak
    on-off contender at 50 ms mean burst) with 60 repetitions of a
    40-packet train on both backends.  Not scaled by
    ``REPRO_BENCH_SCALE`` (see the probe-kernel floor).
    """
    channel = SimulatedWlanChannel(
        [("burst", OnOffGenerator(6e6, mean_on=0.05, mean_off=0.05,
                                  size_bytes=1500))], warmup=0.1)
    train = ProbeTrain.at_rate(40, 4e6, 1500)

    best, (event_s, vector_s) = _best_speedup(
        lambda: channel.send_trains_dense(train, 60, seed=3,
                                          backend="event"),
        lambda: channel.send_trains_dense(train, 60, seed=3,
                                          backend="vector"))
    print(f"\non-off backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, vector {vector_s:.4f}s)")
    assert best >= 5.0, (
        f"on-off vector path only {best:.1f}x faster across 3 attempts "
        f"(last: event {event_s:.3f}s vs vector {vector_s:.3f}s)")


def test_chunked_probe_batch_memory(benchmark):
    """Streaming a big probe batch must cut peak memory >= 4x.

    Acceptance floor of the PR-7 streaming path: a 10^5-repetition
    probe batch (``REPRO_BENCH_SCALE`` shrinks it, clamped at 20k —
    enough repetitions that matrix storage, not fixed kernel state,
    dominates the peak) reduced to its per-train output gaps.  The
    dense run materialises every ``(repetitions, n)`` timestamp
    matrix; the ``--chunk-reps 1000`` run folds 1000-repetition chunks
    through :class:`repro.core.batch.OutputGapReducer` and must peak
    below a quarter of that — while producing the bit-identical gap
    vector.  The benchmark fixture times the chunked run, so its
    wall-clock lands in ``baseline.json`` next to the dense kernel
    benches.
    """
    repetitions = max(20_000, int(round(100_000 * bench_scale())))
    chunk = 1000
    train = ProbeTrain.at_rate(5, 5e6, 1500)

    def batch_task(seeds):
        return simulate_probe_train_batch(
            train.n, train.gap, len(seeds), size_bytes=1500,
            warmup=0.0, seeds=seeds)

    def dense():
        batch = run_batch(BatchRequest(repetitions=repetitions, seed=1,
                                       batch_task=batch_task),
                          backend="vector")
        return output_gaps_batch(batch.recv_times)

    def chunked():
        return run_batch(
            BatchRequest(repetitions=repetitions, seed=1,
                         batch_task=batch_task, chunk_reps=chunk,
                         reducer=OutputGapReducer),
            backend="vector")

    tracemalloc.start()
    dense_gaps = dense()
    _, dense_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    chunked_gaps = chunked()
    _, chunked_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert np.array_equal(chunked_gaps, dense_gaps)
    ratio = dense_peak / chunked_peak
    print(f"\nchunked probe batch peak memory: "
          f"dense {dense_peak / 1e6:.1f} MB vs chunked "
          f"{chunked_peak / 1e6:.1f} MB ({ratio:.1f}x, "
          f"{repetitions} repetitions, chunk {chunk})")
    assert ratio >= 4.0, (
        f"chunked run peaked at {chunked_peak / 1e6:.1f} MB, only "
        f"{ratio:.1f}x below the dense {dense_peak / 1e6:.1f} MB "
        f"({repetitions} repetitions, chunk {chunk})")
    assert len(benchmark(chunked)) == repetitions


def test_chunked_backend_speedup():
    """The >= 5x vector floor must survive chunked execution.

    Same workload as ``test_vector_backend_speedup`` (10 saturated
    stations, 100 repetitions) with the vector side streamed through
    ``chunk_reps=25`` — four kernel calls instead of one.  The fixed
    per-call numpy dispatch quadruples, so this floor guards the chunk
    loop's overhead staying negligible next to the kernel itself.  Not
    scaled by ``REPRO_BENCH_SCALE`` (the ratio is what is under test).
    """
    stations, packets = 10, 10
    repetitions = 100
    expected = stations * packets

    def run_event():
        event = simulate_saturated(stations, packets, repetitions,
                                   seed=2, backend="event")
        assert np.all(event.successes == expected)

    def run_chunked():
        with chunked_reps(25):
            vector = simulate_saturated(stations, packets, repetitions,
                                        seed=2, backend="vector")
        assert np.all(vector.successes == expected)

    best, (event_s, vector_s) = _best_speedup(run_event, run_chunked)
    print(f"\nchunked vector backend speedup: {best:.1f}x "
          f"(last attempt: event {event_s:.3f}s, chunked vector "
          f"{vector_s:.4f}s, {repetitions} repetitions in chunks of 25)")
    assert best >= 5.0, (
        f"chunked vector backend only {best:.1f}x faster across 3 "
        f"attempts (last: event {event_s:.3f}s vs chunked "
        f"{vector_s:.3f}s)")


def test_backend_dispatch_throughput(benchmark):
    """1000 auto-dispatch resolutions of a probe-train scenario.

    The capability dispatcher sits on every ``--backend auto`` code
    path (registry kwargs resolution, channel routing), so a
    regression here taxes every experiment; the companion test below
    bounds it against a real batch.
    """
    spec = ScenarioSpec(system="wlan", workload="train",
                        cross_traffic="poisson")

    def run():
        for _ in range(1000):
            resolution = dispatch.resolve(spec, "auto")
        return resolution.name

    from repro.sim import jit
    assert benchmark(run) == ("jit" if jit.available() else "vector")


def test_auto_dispatch_overhead_under_one_percent():
    """Auto-selection must add < 1% to a repetition batch.

    An experiment resolves its backend once per batch, so the bound
    compares one ``resolve`` call (averaged over many) against the
    probe-kernel batch the speedup floor uses (60 repetitions of a
    25-packet train).  Deliberately *not* scaled by
    ``REPRO_BENCH_SCALE``: the ratio is what is under test.
    """
    train = ProbeTrain.at_rate(25, 5e6, 1500)

    start = time.perf_counter()
    simulate_probe_train_batch(
        train.n, train.gap, 60, size_bytes=1500,
        cross=[PoissonCrossSpec(4e6 / (1500 * 8), 1500)],
        horizon=1.0, seed=1)
    batch_s = time.perf_counter() - start

    spec = ScenarioSpec(system="wlan", workload="train",
                        cross_traffic="poisson")
    rounds = 2000
    start = time.perf_counter()
    for _ in range(rounds):
        dispatch.resolve(spec, "auto")
    resolve_s = (time.perf_counter() - start) / rounds

    ratio = resolve_s / batch_s
    print(f"\nauto-dispatch overhead: {resolve_s * 1e6:.1f} us/resolve "
          f"vs {batch_s * 1e3:.1f} ms/batch ({ratio:.5%})")
    assert ratio < 0.01, (
        f"auto dispatch costs {ratio:.3%} of a 60-repetition batch "
        f"({resolve_s * 1e6:.1f} us vs {batch_s * 1e3:.1f} ms)")


def _require_warm_jit():
    """Skip unless the jit tier can run; compile outside the window.

    ``warm_kernels`` triggers the one-time numba compilation of all
    three cores on dtype-exact toy inputs, so the floors below measure
    steady-state kernel speed, never compiler warm-up — the tier's
    stated contract ("warm-up stays out of measured windows").
    """
    import pytest

    from repro.sim import jit
    if not jit.available():
        pytest.skip("numba not installed — jit tier unavailable")
    jit.warm_kernels()
    return jit


def test_jit_saturated_speedup():
    """The jit tier must beat the numpy saturated kernel by >= 3x.

    Acceptance floor of the PR-9 jit tier, on the same workload as the
    event-vs-vector floor above (10 saturated stations, 100
    repetitions) so the two ratios compose.  Deliberately *not* scaled
    by ``REPRO_BENCH_SCALE``: the numpy kernel pays per-round dispatch
    that only amortises across a real batch, and shrinking it would
    flatter the jit side.
    """
    _require_warm_jit()
    stations, packets, repetitions = 10, 10, 100
    expected = stations * packets

    def run_vector():
        batch = simulate_saturated(stations, packets, repetitions,
                                   seed=2, backend="vector")
        assert np.all(batch.successes == expected)

    def run_jit():
        batch = simulate_saturated(stations, packets, repetitions,
                                   seed=2, backend="jit")
        assert np.all(batch.successes == expected)

    best, (numpy_s, jit_s) = _best_speedup(run_vector, run_jit,
                                           floor=3.0)
    print(f"\njit saturated speedup: {best:.1f}x "
          f"(last attempt: numpy {numpy_s:.3f}s, jit {jit_s:.4f}s, "
          f"{repetitions} repetitions)")
    assert best >= 3.0, (
        f"jit saturated kernel only {best:.1f}x faster than numpy "
        f"across 3 attempts (last: numpy {numpy_s:.3f}s vs jit "
        f"{jit_s:.3f}s)")


def test_jit_probe_train_speedup():
    """The jit tier must beat the numpy probe-train kernel by >= 3x.

    Acceptance floor on the probe-train kernel: 60 repetitions of a
    25-packet train against 4 Mb/s Poisson cross-traffic, the same
    batch shape the dispatch-overhead bound uses.  Not scaled by
    ``REPRO_BENCH_SCALE`` (see the saturated floor).
    """
    _require_warm_jit()
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(4e6, 1500))], warmup=0.05)
    train = ProbeTrain.at_rate(25, 5e6, 1500)

    def run(backend):
        batch = channel.send_trains_dense(train, 60, seed=7,
                                          backend=backend)
        assert np.all(np.isfinite(batch.recv_times))

    best, (numpy_s, jit_s) = _best_speedup(
        lambda: run("vector"), lambda: run("jit"), floor=3.0)
    print(f"\njit probe-train speedup: {best:.1f}x "
          f"(last attempt: numpy {numpy_s:.3f}s, jit {jit_s:.4f}s)")
    assert best >= 3.0, (
        f"jit probe-train kernel only {best:.1f}x faster than numpy "
        f"across 3 attempts (last: numpy {numpy_s:.3f}s vs jit "
        f"{jit_s:.3f}s)")
