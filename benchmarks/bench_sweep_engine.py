"""Benchmarks of the fused sweep engine (``repro sweep --store``).

Tracks the throughput of the two sweep execution paths over the same
grid — the legacy per-point loop (one ``Experiment.run`` + one JSON
cache fsync + one journal line per point) and the fused
:class:`~repro.runtime.sweep.SweepPlan` engine (windowed fan-out into
a columnar store) — plus the acceptance floor on their ratio: the
fused engine must beat the per-point loop by
``$REPRO_SWEEP_SPEEDUP_FLOOR`` (default 2.0; the sweep-scale CI job
sets 5.0 with two workers, where fusion also amortises process
fan-out the per-point vector path cannot use).

The bench-regression CI job runs this file at ``REPRO_BENCH_SCALE``
0.05 and compares the medians against
``benchmarks/results/baseline.json`` via ``tools/bench_compare.py``.
"""

import os
import time

from conftest import bench_jobs, bench_scale

from repro.runtime import registry
from repro.runtime.cache import ResultCache
from repro.runtime.manifest import Manifest, PointRecord, point_id
from repro.runtime.store import SweepStore
from repro.runtime.sweep import SweepPlan, run_plan

#: One cheap eq1 configuration (~0.6 ms/point bare): a single probe
#: rate, a short train, two repetitions.  Sweeping ``cross_rate_bps``
#: keeps per-point cost constant while making every point distinct.
CHEAP = {"probe_rates_bps": [4e6], "n_packets": 24, "repetitions": 2}


def _grid(points):
    return [dict(CHEAP, cross_rate_bps=1e6 + 4e6 * i / max(1, points - 1))
            for i in range(points)]


def _run_fused(experiment, grid, root, jobs):
    root.mkdir(parents=True, exist_ok=True)
    store = SweepStore.create(root / "store", experiment.name,
                              params=["cross_rate_bps"])
    manifest = Manifest.create(root / "manifest.jsonl", "sweep",
                               experiment.name)
    plan = SweepPlan(experiment, iter(grid), seed=1, backend="auto")
    done = 0
    for window in run_plan(plan, jobs=jobs, store=store,
                           manifest=manifest):
        done += len(window.outcomes)
    store.close()
    assert done == len(grid)


def _run_per_point(experiment, grid, root, jobs):
    """The pre-fusion ``sweep`` loop, faithfully: per-point run,
    per-point JSON cache entry (one fsync each), per-point journal
    line."""
    root.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(root / "cache")
    manifest = Manifest.create(root / "manifest.jsonl", "sweep",
                               experiment.name)
    for overrides in grid:
        report = experiment.run(seed=1, overrides=overrides,
                                backend="auto", jobs=jobs, cache=cache)
        manifest.record(PointRecord(
            point_id=point_id(experiment.name, report.kwargs),
            status="done" if report.result.all_checks_pass
            else "failed", label=""))


def test_fused_sweep_throughput(benchmark, tmp_path):
    """Fused engine over a 400-point grid (scaled)."""
    experiment = registry.get("eq1")
    grid = _grid(max(50, int(round(400 * bench_scale()))))
    benchmark.pedantic(
        lambda: _run_fused(experiment, grid, tmp_path, bench_jobs()),
        rounds=1, iterations=1)


def test_per_point_sweep_throughput(benchmark, tmp_path):
    """Legacy per-point loop over the same (scaled) grid."""
    experiment = registry.get("eq1")
    grid = _grid(max(50, int(round(400 * bench_scale()))))
    benchmark.pedantic(
        lambda: _run_per_point(experiment, grid, tmp_path,
                               bench_jobs()),
        rounds=1, iterations=1)


def test_fused_sweep_speedup(tmp_path):
    """Fusion must beat the per-point loop at equal ``--jobs``.

    A ~1000-point vector-capable grid, both paths end to end
    (planning, execution, persistence, journal).  Deliberately *not*
    shrunk by ``REPRO_BENCH_SCALE`` below 1000 points in CI's
    sweep-scale job (which leaves the scale at 1.0): fusion's win is
    amortisation, so the gate must run a grid big enough to amortise
    over.  Best of 3 attempts, like every other speedup floor here.
    """
    floor = float(os.environ.get("REPRO_SWEEP_SPEEDUP_FLOOR", "2.0"))
    experiment = registry.get("eq1")
    grid = _grid(max(200, int(round(1000 * bench_scale()))))
    jobs = bench_jobs()
    best, last = 0.0, (0.0, 0.0)
    for attempt in range(3):
        root = tmp_path / f"attempt-{attempt}"
        root.mkdir()
        start = time.perf_counter()
        _run_per_point(experiment, grid, root / "legacy", jobs)
        legacy_s = time.perf_counter() - start
        start = time.perf_counter()
        _run_fused(experiment, grid, root / "fused", jobs)
        fused_s = time.perf_counter() - start
        last = (legacy_s, fused_s)
        best = max(best, legacy_s / fused_s)
        if best >= floor:
            break
    legacy_s, fused_s = last
    print(f"\nfused sweep speedup: {best:.1f}x over {len(grid)} points "
          f"at jobs={jobs} (last attempt: per-point {legacy_s:.2f}s, "
          f"fused {fused_s:.2f}s)")
    assert best >= floor, (
        f"fused sweep only {best:.1f}x faster than the per-point loop "
        f"across 3 attempts (floor {floor}; last: per-point "
        f"{legacy_s:.2f}s vs fused {fused_s:.2f}s at jobs={jobs})")
