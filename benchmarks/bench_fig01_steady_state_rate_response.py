"""Figure 1 — steady-state rate response with contending cross-traffic.

Paper setting: C ~ 6.5 Mb/s, one Poisson cross flow at 4.5 Mb/s
(A ~ 2 Mb/s), fair share B ~ 3.4 Mb/s.  Expected shape: the probe curve
rides the diagonal to ~B and flattens there (no knee at A); the cross
flow's throughput starts dropping once the probe passes A.
"""

import numpy as np


def test_fig01_steady_state_rate_response(run_experiment):
    run_experiment(
        "fig1",
        minimum=1,
        probe_rates_bps=np.arange(0.5e6, 10.01e6, 0.5e6),
        cross_rate_bps=4.5e6,
        duration=4.0,
        warmup=0.5,
        seed=101,
    )
