"""Extension benches for claims the paper makes in prose.

* Section 7.2: a pathload-style iterative tool converges to the
  achievable throughput B across cross-traffic loads, ignoring the
  available bandwidth A (the programmatic version of [25]'s figure 4);
* Section 6.2.1 / equation (31): the achievable throughput of an
  n-packet train decreases with n toward the steady-state value.
"""

import numpy as np


def test_ext_tool_convergence(run_experiment):
    run_experiment(
        "ext-tool-convergence",
        minimum=6,
        cross_rates_bps=np.arange(1e6, 5.01e6, 1e6),
        n_packets=50,
        seed=401,
    )


def test_ext_topp_on_wlan(run_experiment):
    run_experiment(
        "ext-topp",
        minimum=6,
        cross_rates_bps=np.array([2e6, 3e6, 4e6, 5e6]),
        seed=403,
    )


def test_ext_multihop_access_path(run_experiment):
    run_experiment(
        "ext-multihop",
        minimum=10,
        probe_rates_bps=np.arange(1e6, 6.01e6, 0.5e6),
        seed=404,
    )


def test_ext_transient_b_vs_n(run_experiment):
    run_experiment(
        "ext-b-vs-n",
        train_lengths=(2, 3, 5, 10, 20, 50, 100, 200),
        probe_rate_bps=8e6,
        cross_rate_bps=4e6,
        seed=402,
    )
