"""Extension benches for claims the paper makes in prose.

* Section 7.2: a pathload-style iterative tool converges to the
  achievable throughput B across cross-traffic loads, ignoring the
  available bandwidth A (the programmatic version of [25]'s figure 4);
* Section 6.2.1 / equation (31): the achievable throughput of an
  n-packet train decreases with n toward the steady-state value.
"""

import numpy as np

from repro.analysis.extensions import (
    multihop_access_path_study,
    tool_convergence_study,
    topp_on_wlan_study,
    transient_b_vs_n,
)

from conftest import scaled


def test_ext_tool_convergence(benchmark, record_result):
    result = benchmark.pedantic(
        tool_convergence_study,
        kwargs=dict(
            cross_rates_bps=np.arange(1e6, 5.01e6, 1e6),
            n_packets=50,
            repetitions=scaled(10, minimum=6),
            seed=401,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ext_topp_on_wlan(benchmark, record_result):
    result = benchmark.pedantic(
        topp_on_wlan_study,
        kwargs=dict(
            cross_rates_bps=np.array([2e6, 3e6, 4e6, 5e6]),
            repetitions=scaled(8, minimum=6),
            seed=403,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ext_multihop_access_path(benchmark, record_result):
    result = benchmark.pedantic(
        multihop_access_path_study,
        kwargs=dict(
            probe_rates_bps=np.arange(1e6, 6.01e6, 0.5e6),
            repetitions=scaled(20, minimum=10),
            seed=404,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ext_transient_b_vs_n(benchmark, record_result):
    result = benchmark.pedantic(
        transient_b_vs_n,
        kwargs=dict(
            train_lengths=(2, 3, 5, 10, 20, 50, 100, 200),
            probe_rate_bps=8e6,
            cross_rate_bps=4e6,
            repetitions=scaled(300),
            seed=402,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)
