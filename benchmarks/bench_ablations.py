"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the modelling decisions the
reproduction rests on: simulator calibration against Bianchi, the
immediate-access rule as the transient's mechanism, the KS-statistic
variant, and the truncation-heuristic family of section 7.4.
"""

from repro.analysis.ablations import (
    ablation_bianchi_calibration,
    ablation_immediate_access,
    ablation_ks_methods,
    ablation_rts_cts,
    ablation_truncation_heuristics,
)

from conftest import scaled


def test_ablation_bianchi_calibration(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_bianchi_calibration,
        kwargs=dict(station_counts=(1, 2, 3, 4, 5), duration=4.0,
                    seed=301),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ablation_immediate_access(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_immediate_access,
        kwargs=dict(repetitions=scaled(250), seed=302),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ablation_ks_methods(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_ks_methods,
        kwargs=dict(repetitions=scaled(300), seed=303),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ablation_rts_cts(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_rts_cts,
        kwargs=dict(repetitions=scaled(200), seed=305),
        rounds=1, iterations=1,
    )
    record_result(result)


def test_ablation_truncation_heuristics(benchmark, record_result):
    result = benchmark.pedantic(
        ablation_truncation_heuristics,
        kwargs=dict(repetitions=scaled(150), seed=304),
        rounds=1, iterations=1,
    )
    record_result(result)
