"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the modelling decisions the
reproduction rests on: simulator calibration against Bianchi, the
immediate-access rule as the transient's mechanism, the KS-statistic
variant, and the truncation-heuristic family of section 7.4.
"""


def test_ablation_bianchi_calibration(run_experiment):
    run_experiment(
        "ablation-bianchi",
        station_counts=(1, 2, 3, 4, 5),
        duration=4.0,
        seed=301,
    )


def test_ablation_immediate_access(run_experiment):
    run_experiment("ablation-immediate-access", seed=302)


def test_ablation_ks_methods(run_experiment):
    run_experiment("ablation-ks", seed=303)


def test_ablation_rts_cts(run_experiment):
    run_experiment("ablation-rts", seed=305)


def test_ablation_truncation_heuristics(run_experiment):
    run_experiment("ablation-truncation", seed=304)
