"""Saturation-study bench: the dual-backend experiment, both ways.

The same registered experiment (`ext-saturation`) runs once per
backend; both must pass the identical Bianchi shape checks, which
makes this bench a daily-driver equivalence smoke on top of the KS
tests in ``tests/test_vector_backend.py``.  (The second run overwrites
``results/ext-saturation.txt`` — the tables only differ in the backend
meta field and Monte Carlo noise.)
"""


def test_ext_saturation_event_backend(run_experiment):
    run_experiment(
        "ext-saturation",
        minimum=20,
        station_counts=(1, 2, 3, 5, 10),
        packets_per_station=40,
        backend="event",
        seed=405,
    )


def test_ext_saturation_vector_backend(run_experiment):
    run_experiment(
        "ext-saturation",
        minimum=20,
        station_counts=(1, 2, 3, 5, 10),
        packets_per_station=40,
        backend="vector",
        seed=405,
    )
