"""Figure 8 — KS test vs. packet index + contending-queue build-up.

Paper setting: 8 Mb/s probe, 2 Mb/s contending cross-traffic.
Expected shape: the KS distance starts far above the 95% threshold and
settles within tens of packets; the contending station's mean queue
grows over the same window (from ~0.2-0.4 to ~1+ packets).
"""


def test_fig08_ks_transient(run_experiment):
    run_experiment(
        "fig8",
        probe_rate_bps=8e6,
        cross_rate_bps=2e6,
        n_packets=250,
        plot_limit=100,
        seed=108,
    )
