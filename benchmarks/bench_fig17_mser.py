"""Figure 17 — MSER-2-truncated 20-packet trains.

Expected shape: the raw 20-packet curve overestimates the steady-state
response at high rates; removing the packets MSER-2 flags as transient
pulls the curve toward the steady state without sending any extra
packets.
"""

import numpy as np

from repro.analysis.trains import fig17_mser

from conftest import scaled


def test_fig17_mser(benchmark, record_result):
    result = benchmark.pedantic(
        fig17_mser,
        kwargs=dict(
            probe_rates_bps=np.arange(1e6, 10.01e6, 1e6),
            n_packets=20,
            mser_batch=2,
            cross_rate_bps=3e6,
            repetitions=scaled(150),
            seed=117,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)
