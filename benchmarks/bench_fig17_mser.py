"""Figure 17 — MSER-2-truncated 20-packet trains.

Expected shape: the raw 20-packet curve overestimates the steady-state
response at high rates; removing the packets MSER-2 flags as transient
pulls the curve toward the steady state without sending any extra
packets.
"""

import numpy as np


def test_fig17_mser(run_experiment):
    run_experiment(
        "fig17",
        probe_rates_bps=np.arange(1e6, 10.01e6, 1e6),
        n_packets=20,
        mser_batch=2,
        cross_rate_bps=3e6,
        seed=117,
    )
