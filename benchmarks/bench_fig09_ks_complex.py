"""Figure 9 — KS profile with four heterogeneous contending stations.

Paper setting: probe at 0.5 Mb/s; contenders sending 40/576/1000/1500-
byte packets at 0.1/0.5/0.75/2 Mb/s.  Expected shape: elevated KS for
the first packets (first packet clearly accelerated), settling toward
the steady-state threshold within tens of packets.
"""


def test_fig09_ks_complex(run_experiment):
    run_experiment(
        "fig9",
        # The fig-9 acceleration is ~0.6 ms against a ~3 ms-std delay
        # distribution: it needs a few hundred repetitions to resolve,
        # so the scale floor is higher here.
        minimum=200,
        probe_rate_bps=0.5e6,
        n_packets=60,
        plot_limit=50,
        seed=109,
    )
