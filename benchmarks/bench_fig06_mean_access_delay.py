"""Figure 6 — mean access delay vs. probe packet number.

Paper setting: 5 Mb/s probe, 4 Mb/s Poisson cross-traffic (NS2, 25 000
repetitions; scaled down here).  Expected shape: the first packets see
a clearly lower mean access delay that climbs to a steady plateau
within a few tens of packets.
"""


def test_fig06_mean_access_delay(run_experiment):
    run_experiment(
        "fig6",
        probe_rate_bps=5e6,
        cross_rate_bps=4e6,
        n_packets=250,
        plot_limit=150,
        seed=106,
    )
