"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures at a scaled-down
repetition count (see EXPERIMENTS.md), prints the series the paper
plots, writes them to ``benchmarks/results/<experiment>.txt`` and
asserts the figure's qualitative shape checks.

Benches run through :mod:`repro.runtime`: the ``run_experiment``
fixture looks the experiment up in the registry, applies the bench
scale to its scalable kwargs and executes it (cache disabled — a bench
must measure the simulation, not a disk read).

Environment knobs:

``REPRO_BENCH_SCALE``
    Float repetition multiplier (default 1.0): 4 or 10 for
    publication-grade smoothness, 0.3 for a quick pass.
``REPRO_BENCH_JOBS``
    Worker processes for repetition sharding (default 1).  Results
    are identical for any value; only the wall-clock changes.
"""

import os
import pathlib

import pytest

from repro.runtime import registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    """Repetition multiplier from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_jobs() -> int:
    """Repetition-sharding job count from the environment."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def record_result():
    """Print an ExperimentResult and persist its table."""

    def _record(result):
        table = result.table()
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(table + "\n")
        assert result.all_checks_pass, (
            f"{result.experiment} shape checks failed: "
            f"{result.failed_checks}\n{table}")
        return result

    return _record


@pytest.fixture
def run_experiment(benchmark, record_result):
    """Run a registered experiment at bench scale and record it.

    ``overrides`` carry the bench's paper-setting kwargs (probe rates,
    train shapes, seeds); scalable kwargs come from the registry and
    honour ``REPRO_BENCH_SCALE`` with the given ``minimum`` clamp.
    """

    def _run(name, minimum=5, **overrides):
        experiment = registry.get(name)
        report = benchmark.pedantic(
            lambda: experiment.run(scale=bench_scale(), jobs=bench_jobs(),
                                   overrides=overrides, minimum=minimum),
            rounds=1, iterations=1)
        return record_result(report.result)

    return _run
