"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures at a scaled-down
repetition count (see EXPERIMENTS.md), prints the series the paper
plots, writes them to ``benchmarks/results/<experiment>.txt`` and
asserts the figure's qualitative shape checks.

``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies the repetition
counts: set it to 4 or 10 for publication-grade smoothness, or to 0.3
for a quick pass.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    """Repetition multiplier from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int, minimum: int = 5) -> int:
    """Scale a repetition count, clamped from below."""
    return max(minimum, int(round(base * bench_scale())))


@pytest.fixture
def record_result():
    """Print an ExperimentResult and persist its table."""

    def _record(result):
        table = result.table()
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(table + "\n")
        assert result.all_checks_pass, (
            f"{result.experiment} shape checks failed: "
            f"{result.failed_checks}\n{table}")
        return result

    return _record
