"""Figure 10 — transient duration vs. offered cross-traffic load.

Probing load fixed at 1 Erlang (offered rate = C); cross load swept in
Erlangs of C.  Expected shape: the 0.01-tolerance curve dominates the
0.1 curve everywhere; the transitory peaks around the cross flow's
fair share; at 0.1 tolerance it stays well under 150 packets.
"""

import numpy as np

from repro.analysis.transient import fig10_transient_duration

from conftest import scaled


def test_fig10_transient_duration(benchmark, record_result):
    result = benchmark.pedantic(
        fig10_transient_duration,
        kwargs=dict(
            cross_loads_erlang=np.arange(0.1, 1.01, 0.1),
            probe_load_erlang=1.0,
            tolerances=(0.1, 0.01),
            n_packets=300,
            repetitions=scaled(300),
            seed=110,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)
