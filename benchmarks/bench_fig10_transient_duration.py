"""Figure 10 — transient duration vs. offered cross-traffic load.

Probing load fixed at 1 Erlang (offered rate = C); cross load swept in
Erlangs of C.  Expected shape: the 0.01-tolerance curve dominates the
0.1 curve everywhere; the transitory peaks around the cross flow's
fair share; at 0.1 tolerance it stays well under 150 packets.
"""

import numpy as np


def test_fig10_transient_duration(run_experiment):
    run_experiment(
        "fig10",
        cross_loads_erlang=np.arange(0.1, 1.01, 0.1),
        probe_load_erlang=1.0,
        tolerances=(0.1, 0.01),
        n_packets=300,
        seed=110,
    )
