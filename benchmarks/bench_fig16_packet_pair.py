"""Figure 16 — packet-pair inference vs. the actual achievable
throughput, across contending cross-traffic rates.

Capacity is constant (~6.2 Mb/s; the paper's testbed gives 6.5).
Expected shape: with no cross-traffic the pair reports the capacity;
with contention it tracks — and overestimates — the achievable
throughput and never points back at the capacity.
"""

import numpy as np


def test_fig16_packet_pair(run_experiment):
    run_experiment(
        "fig16",
        cross_rates_bps=np.arange(0.0, 6.01e6, 0.5e6),
        seed=116,
    )
