"""Figure 13 — rate response from 3/10/50-packet trains (no FIFO
cross-traffic).

Expected shape: all curves follow the diagonal at low rates; near the
achievable throughput the short-train curves dip below the steady
curve; at high rates they overestimate it, the more so the shorter the
train (train-3 > train-10 > train-50 > steady).
"""

import numpy as np

from repro.analysis.trains import fig13_short_trains

from conftest import scaled


def test_fig13_short_trains(benchmark, record_result):
    result = benchmark.pedantic(
        fig13_short_trains,
        kwargs=dict(
            probe_rates_bps=np.arange(0.5e6, 10.01e6, 0.5e6),
            train_lengths=(3, 10, 50),
            cross_rate_bps=3e6,
            repetitions=scaled(80),
            seed=113,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)
