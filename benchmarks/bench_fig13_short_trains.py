"""Figure 13 — rate response from 3/10/50-packet trains (no FIFO
cross-traffic).

Expected shape: all curves follow the diagonal at low rates; near the
achievable throughput the short-train curves dip below the steady
curve; at high rates they overestimate it, the more so the shorter the
train (train-3 > train-10 > train-50 > steady).
"""

import numpy as np


def test_fig13_short_trains(run_experiment):
    run_experiment(
        "fig13",
        probe_rates_bps=np.arange(0.5e6, 10.01e6, 0.5e6),
        train_lengths=(3, 10, 50),
        cross_rate_bps=3e6,
        seed=113,
    )
