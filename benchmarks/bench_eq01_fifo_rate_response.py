"""Equation (1) — the wired FIFO baseline.

Validates the reference model the paper contrasts against: long trains
through the Lindley FIFO hop with Poisson cross-traffic must match
``ro = min(ri, C ri/(ri + C - A))`` within a few percent, with the knee
at the available bandwidth A (unlike the CSMA/CA link, whose knee is at
B).
"""

import numpy as np

from repro.analysis.baseline import eq1_fifo_rate_response

from conftest import scaled


def test_eq01_fifo_rate_response(benchmark, record_result):
    result = benchmark.pedantic(
        eq1_fifo_rate_response,
        kwargs=dict(
            probe_rates_bps=np.arange(1e6, 12.01e6, 1e6),
            capacity_bps=10e6,
            cross_rate_bps=4e6,
            n_packets=400,
            repetitions=scaled(40),
            seed=201,
        ),
        rounds=1, iterations=1,
    )
    record_result(result)
