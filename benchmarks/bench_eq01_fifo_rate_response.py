"""Equation (1) — the wired FIFO baseline.

Validates the reference model the paper contrasts against: long trains
through the Lindley FIFO hop with Poisson cross-traffic must match
``ro = min(ri, C ri/(ri + C - A))`` within a few percent, with the knee
at the available bandwidth A (unlike the CSMA/CA link, whose knee is at
B).
"""

import numpy as np


def test_eq01_fifo_rate_response(run_experiment):
    run_experiment(
        "eq1",
        probe_rates_bps=np.arange(1e6, 12.01e6, 1e6),
        capacity_bps=10e6,
        cross_rate_bps=4e6,
        n_packets=400,
        seed=201,
    )
