"""The probing tool.

:class:`Prober` is the user-facing measurement tool of this repository:
point it at a :class:`repro.testbed.channel.Channel`, and it performs
the measurements the paper analyzes — packet-pair capacity probes, rate
scans, achievable-throughput estimation (equation (2)), and
MSER-corrected short-train measurements (section 7.4) — through
sender/receiver clocks with realistic error models.

The prober never looks below the network layer: everything it returns
is computed from timestamps, exactly like the tools whose behaviour the
paper explains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.correction import mser_corrected_rate
from repro.core.dispersion import TrainMeasurement
from repro.core.estimators import (
    RateResponseCurve,
    packet_pair_capacity,
    rate_response_from_measurements,
    train_dispersion_rate,
)
from repro.testbed.channel import Channel, RawTrainResult
from repro.testbed.clocks import ClockModel, ntp_synced_pair
from repro.traffic.probe import PacketPair, ProbeTrain


@dataclass
class ProbeSessionConfig:
    """Measurement-session parameters.

    Attributes
    ----------
    size_bytes:
        Probe packet size L.
    repetitions:
        Trains sent per measurement point (the paper's ``m``).
    clock_seed:
        Seed for the clock error models.
    ideal_clocks:
        Disable timestamp errors entirely (simulator ground truth).
    backend:
        Repetition backend handed to
        :meth:`repro.testbed.channel.Channel.send_trains`: ``event``
        (default) shards event-engine repetitions, ``vector`` resolves
        the whole batch with the numpy kernel on channels that have
        one, ``auto`` lets the dispatcher pick the fastest backend the
        channel is eligible for.
    """

    size_bytes: int = 1500
    repetitions: int = 40
    clock_seed: int = 1234
    ideal_clocks: bool = False
    backend: str = "event"


class Prober:
    """Active bandwidth measurement over a channel."""

    def __init__(self, channel: Channel,
                 config: Optional[ProbeSessionConfig] = None) -> None:
        self.channel = channel
        self.config = config if config is not None else ProbeSessionConfig()
        self._clock_rng = np.random.default_rng(self.config.clock_seed)
        if self.config.ideal_clocks:
            self.sender_clock = ClockModel()
            self.receiver_clock = ClockModel()
        else:
            self.sender_clock, self.receiver_clock = ntp_synced_pair(
                self._clock_rng)

    # ------------------------------------------------------------------

    def _stamp(self, raw: RawTrainResult) -> TrainMeasurement:
        """Apply the clock error models to a raw channel result."""
        return TrainMeasurement(
            send_times=self.sender_clock.timestamps(raw.send_times,
                                                    self._clock_rng),
            recv_times=self.receiver_clock.timestamps(raw.recv_times,
                                                      self._clock_rng),
            size_bytes=raw.size_bytes,
        )

    def measure_train(self, n: int, rate_bps: float,
                      repetitions: Optional[int] = None,
                      seed: int = 0) -> List[TrainMeasurement]:
        """Send ``repetitions`` trains of ``n`` packets at ``rate_bps``."""
        train = ProbeTrain.at_rate(n, rate_bps, self.config.size_bytes)
        reps = repetitions if repetitions is not None else self.config.repetitions
        raws = self.channel.send_trains(train, reps, seed=seed,
                                        backend=self.config.backend)
        return [self._stamp(raw) for raw in raws]

    def measure_pairs(self, repetitions: Optional[int] = None,
                      seed: int = 0) -> List[TrainMeasurement]:
        """Send back-to-back packet pairs."""
        pair = PacketPair(self.config.size_bytes)
        reps = repetitions if repetitions is not None else self.config.repetitions
        raws = self.channel.send_trains(pair, reps, seed=seed,
                                        backend=self.config.backend)
        return [self._stamp(raw) for raw in raws]

    def measure_sequence(self, n: int, rate_bps: float, m: int,
                         mean_spacing: float = 0.2, guard: float = 0.05,
                         seed: int = 0) -> List[TrainMeasurement]:
        """Send ``m`` Poisson-spaced trains through ONE live system.

        The paper's literal measurement procedure (section 5.1.2);
        requires a channel exposing ``send_train_sequence`` (the
        simulated WLAN backend does).
        """
        from repro.traffic.probe import TrainSequence
        send = getattr(self.channel, "send_train_sequence", None)
        if send is None:
            raise TypeError(
                f"{type(self.channel).__name__} does not support "
                "train sequences")
        train = ProbeTrain.at_rate(n, rate_bps, self.config.size_bytes)
        sequence = TrainSequence(train, m=m, mean_spacing=mean_spacing,
                                 guard=guard)
        return [self._stamp(raw) for raw in send(sequence, seed)]

    def measure_chirps(self, chirp, repetitions: Optional[int] = None,
                       seed: int = 0) -> List[TrainMeasurement]:
        """Send pathChirp-style chirps (any train-shaped object works:
        the channel only needs ``n``, ``duration``, ``size_bytes`` and
        ``packets(start)``)."""
        reps = repetitions if repetitions is not None else self.config.repetitions
        raws = self.channel.send_trains(chirp, reps, seed=seed,
                                        backend=self.config.backend)
        return [self._stamp(raw) for raw in raws]

    # ------------------------------------------------------------------
    # The measurements of the paper
    # ------------------------------------------------------------------

    def packet_pair_estimate(self, repetitions: Optional[int] = None,
                             seed: int = 0) -> float:
        """Packet-pair 'capacity' estimate (figure 16's inference)."""
        return packet_pair_capacity(self.measure_pairs(repetitions, seed))

    def dispersion_rate(self, n: int, rate_bps: float,
                        repetitions: Optional[int] = None,
                        seed: int = 0) -> float:
        """``L / E[g_O]`` at one probing rate."""
        return train_dispersion_rate(
            self.measure_train(n, rate_bps, repetitions, seed))

    def rate_scan(self, rates_bps: Sequence[float], n: int,
                  repetitions: Optional[int] = None,
                  seed: int = 0) -> RateResponseCurve:
        """Measure a rate-response curve over ``rates_bps``."""
        by_rate: Dict[float, List[TrainMeasurement]] = {}
        for k, rate in enumerate(sorted(rates_bps)):
            by_rate[rate] = self.measure_train(
                n, rate, repetitions, seed=seed + 7919 * k)
        return rate_response_from_measurements(by_rate)

    def achievable_throughput(self, rates_bps: Sequence[float], n: int,
                              repetitions: Optional[int] = None,
                              tolerance: float = 0.05,
                              seed: int = 0) -> float:
        """Equation (2): B from a measured rate scan."""
        return self.rate_scan(rates_bps, n, repetitions, seed) \
            .achievable_throughput(tolerance)

    def mser_corrected_rate(self, n: int, rate_bps: float, m: int = 2,
                            repetitions: Optional[int] = None,
                            seed: int = 0) -> float:
        """MSER-m-truncated dispersion rate (the paper's correction)."""
        return mser_corrected_rate(
            self.measure_train(n, rate_bps, repetitions, seed), m=m)
