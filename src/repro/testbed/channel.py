"""Channel backends for the prober.

A :class:`Channel` accepts a probing train and returns the true send
and receive instants of its packets after crossing the network under
test.  A live implementation would craft the packets with scapy (or
MGEN, as the paper did) and capture driver timestamps; this repository
ships two simulated backends:

* :class:`SimulatedWlanChannel` — a DCF (CSMA/CA) link with contending
  cross-traffic stations and optional FIFO cross-traffic sharing the
  probe sender's queue: the paper's figure 2/3 system;
* :class:`SimulatedFifoChannel` — the wired FIFO baseline of
  equation (1).

Each :meth:`Channel.send_train` call is an independent *repetition*:
cross-traffic is redrawn, the system is warmed up, and the probing
train is injected — matching the paper's Poisson-spaced repetitions
that "assure complete interaction with the system".
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mac.params import PhyParams
from repro.mac.scenario import ScenarioResult, StationSpec, WlanScenario
from repro.queueing.fifo import FifoHop
from repro.traffic.probe import ProbeTrain, TrainSequence


@dataclass
class RawTrainResult:
    """True (error-free) timestamps of one train crossing the channel.

    ``access_delays`` (WLAN channels only) carries the per-packet
    ``mu_i``; live channels cannot observe it, but the simulator
    exposes it for validation studies.
    """

    send_times: np.ndarray
    recv_times: np.ndarray
    size_bytes: int
    access_delays: Optional[np.ndarray] = None
    scenario: Optional[ScenarioResult] = None


class Channel(abc.ABC):
    """Anything that can carry a probing train."""

    @abc.abstractmethod
    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        """Send one train through a fresh repetition of the channel."""

    def send_trains(self, train: ProbeTrain, repetitions: int,
                    seed: int = 0) -> List[RawTrainResult]:
        """Send ``repetitions`` independent trains (seeds derived).

        The per-repetition seeds are all derived up front from ``seed``
        and the repetitions fan out across the ambient worker pool (see
        :func:`repro.runtime.executor.parallel_jobs`); results come
        back in repetition order, so the output is bit-identical to a
        serial run regardless of the job count.
        """
        if repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {repetitions}")
        # Imported lazily: repro.runtime sits above the testbed layer.
        from repro.runtime.executor import derive_seeds, map_ordered
        return map_ordered(functools.partial(self._train_task, train),
                           derive_seeds(seed, repetitions))

    def _train_task(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        """One batch repetition; subclasses may slim the result.

        ``send_trains`` maps this (not ``send_train``) so that backends
        can drop bulky diagnostics the batch callers never read before
        the result crosses a worker-process boundary.
        """
        return self.send_train(train, seed)


class SimulatedWlanChannel(Channel):
    """A DCF link driven by :class:`repro.mac.scenario.WlanScenario`.

    Parameters
    ----------
    cross_stations:
        ``(name, generator)`` pairs — one contending station each.  The
        same generator object is reused across repetitions; randomness
        comes from the per-repetition seed.
    fifo_cross:
        Optional generator whose packets share the probe station's
        transmission queue (the paper's FIFO cross-traffic).
    warmup:
        Cross-traffic runs alone for this long before the train starts,
        so the train meets the system in *its* steady state (the
        transient under study is the probing flow's, not the system's).
    start_jitter:
        The train start is additionally delayed by Uniform(0, jitter)
        to avoid phase-locking with CBR cross-traffic.
    drain_rate_floor:
        Sizing hint for how long cross-traffic keeps flowing while the
        probe queue drains: the horizon covers the train duration plus
        ``n * L / drain_rate_floor``.
    """

    def __init__(self, cross_stations: Sequence[Tuple[str, object]],
                 fifo_cross: Optional[object] = None,
                 phy: Optional[PhyParams] = None,
                 warmup: float = 0.25,
                 start_jitter: float = 0.01,
                 drain_rate_floor: float = 1e6,
                 retry_limit: Optional[int] = None,
                 log_cross_queues: bool = False,
                 immediate_access: bool = True,
                 rts_threshold: Optional[int] = None) -> None:
        if warmup < 0 or start_jitter < 0:
            raise ValueError("warmup and start_jitter must be non-negative")
        if drain_rate_floor <= 0:
            raise ValueError("drain_rate_floor must be positive")
        self.cross_stations = list(cross_stations)
        self.fifo_cross = fifo_cross
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.warmup = warmup
        self.start_jitter = start_jitter
        self.drain_rate_floor = drain_rate_floor
        self.retry_limit = retry_limit
        self.log_cross_queues = log_cross_queues
        self.immediate_access = immediate_access
        self.rts_threshold = rts_threshold
        self._scenario = WlanScenario(self.phy, retry_limit=retry_limit,
                                      immediate_access=immediate_access,
                                      rts_threshold=rts_threshold)

    def horizon_for(self, train: ProbeTrain) -> float:
        """Cross-traffic horizon covering warmup, train and drain."""
        drain = train.n * train.size_bytes * 8 / self.drain_rate_floor
        return self.warmup + self.start_jitter + train.duration + drain

    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        rng = np.random.default_rng(seed)
        start = self.warmup + (rng.uniform(0, self.start_jitter)
                               if self.start_jitter > 0 else 0.0)
        horizon = self.horizon_for(train)
        probe_arrivals = train.packets(start=start)
        specs = [StationSpec("probe", generator=self.fifo_cross,
                             arrivals=probe_arrivals)]
        for name, generator in self.cross_stations:
            specs.append(StationSpec(name, generator=generator,
                                     log_queue=self.log_cross_queues))
        # Derive an independent stream for the scenario itself so the
        # start jitter draw does not shift the traffic sample paths.
        result = self._scenario.run(specs, horizon=horizon,
                                    seed=int(rng.integers(0, 2 ** 31)))
        probe = result.station("probe").completed("probe")
        if len(probe) != train.n:
            raise RuntimeError(
                f"{train.n - len(probe)} probe packets were lost")
        return RawTrainResult(
            send_times=np.array([r.arrival for r in probe]),
            recv_times=np.array([r.departure for r in probe]),
            size_bytes=train.size_bytes,
            access_delays=np.array([r.access_delay for r in probe]),
            scenario=result,
        )

    def _train_task(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        """Batch repetition: keep the scenario only when queue traces
        were requested — it dominates the payload shipped back from
        worker processes, and batch callers only read it for queue
        sampling."""
        raw = self.send_train(train, seed)
        if not self.log_cross_queues:
            raw.scenario = None
        return raw

    def send_train_sequence(self, sequence: TrainSequence,
                            seed: int) -> List[RawTrainResult]:
        """Send ``m`` Poisson-spaced trains through ONE live system.

        This is the paper's literal measurement procedure (section
        5.1.2): all trains of the sequence share a single simulation —
        the cross-traffic is *not* redrawn between trains, only the
        Poisson inter-train spacing lets the system forget the previous
        train.  Compare with :meth:`send_trains`, which runs fully
        independent repetitions (cheaper, same limiting averages).
        """
        rng = np.random.default_rng(seed)
        train = sequence.train
        starts = sequence.start_times(rng, start=self.warmup)
        probe_arrivals = []
        for train_start in starts:
            probe_arrivals.extend(train.packets(float(train_start)))
        drain = train.n * train.size_bytes * 8 / self.drain_rate_floor
        horizon = float(starts[-1]) + train.duration + drain
        specs = [StationSpec("probe", generator=self.fifo_cross,
                             arrivals=probe_arrivals)]
        for name, generator in self.cross_stations:
            specs.append(StationSpec(name, generator=generator,
                                     log_queue=self.log_cross_queues))
        result = self._scenario.run(specs, horizon=horizon,
                                    seed=int(rng.integers(0, 2 ** 31)))
        probe = result.station("probe").completed("probe")
        if len(probe) != len(probe_arrivals):
            raise RuntimeError("probe packets were lost")
        out: List[RawTrainResult] = []
        for k in range(sequence.m):
            chunk = probe[k * train.n:(k + 1) * train.n]
            out.append(RawTrainResult(
                send_times=np.array([r.arrival for r in chunk]),
                recv_times=np.array([r.departure for r in chunk]),
                size_bytes=train.size_bytes,
                access_delays=np.array([r.access_delay for r in chunk]),
            ))
        return out


class SimulatedFifoChannel(Channel):
    """The wired single-queue baseline of equation (1)."""

    def __init__(self, capacity_bps: float,
                 cross_generator: Optional[object] = None,
                 warmup: float = 0.25,
                 start_jitter: float = 0.01,
                 drain_rate_floor: float = 1e6) -> None:
        if warmup < 0 or start_jitter < 0:
            raise ValueError("warmup and start_jitter must be non-negative")
        if drain_rate_floor <= 0:
            raise ValueError("drain_rate_floor must be positive")
        self.hop = FifoHop(capacity_bps)
        self.cross_generator = cross_generator
        self.warmup = warmup
        self.start_jitter = start_jitter
        self.drain_rate_floor = drain_rate_floor

    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        rng = np.random.default_rng(seed)
        start = self.warmup + (rng.uniform(0, self.start_jitter)
                               if self.start_jitter > 0 else 0.0)
        drain = train.n * train.size_bytes * 8 / self.drain_rate_floor
        horizon = start + train.duration + drain
        arrivals = list(train.packets(start=start))
        if self.cross_generator is not None:
            arrivals.extend(self.cross_generator.generate(horizon, rng))
        result = self.hop.run(arrivals)
        probe = result.by_flow("probe")
        return RawTrainResult(
            send_times=np.array([r.arrival for r in probe]),
            recv_times=np.array([r.departure for r in probe]),
            size_bytes=train.size_bytes,
            access_delays=np.array([r.access_delay for r in probe]),
        )
