"""Channel backends for the prober.

A :class:`Channel` accepts a probing train and returns the true send
and receive instants of its packets after crossing the network under
test.  A live implementation would craft the packets with scapy (or
MGEN, as the paper did) and capture driver timestamps; this repository
ships two simulated backends:

* :class:`SimulatedWlanChannel` — a DCF (CSMA/CA) link with contending
  cross-traffic stations and optional FIFO cross-traffic sharing the
  probe sender's queue: the paper's figure 2/3 system;
* :class:`SimulatedFifoChannel` — the wired FIFO baseline of
  equation (1).

Each :meth:`Channel.send_train` call is an independent *repetition*:
cross-traffic is redrawn, the system is warmed up, and the probing
train is injected — matching the paper's Poisson-spaced repetitions
that "assure complete interaction with the system".
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import ScenarioSpec, dispatch
from repro.core.batch import chunk_bounds, resolve_rep_seeds
from repro.mac.params import PhyParams
from repro.mac.scenario import ScenarioResult, StationSpec, WlanScenario
from repro.queueing.fifo import FifoHop
from repro.queueing.lindley import lindley_batch
from repro.sim.probe_vector import (
    PoissonCrossSpec,
    ProbeBatchResult,
    classify_cross_generator,
    classify_cross_stations,
    cross_spec_from_generator,
    fifo_size_mismatch_detail,
    simulate_probe_train_batch,
)
from repro.traffic.probe import ProbeTrain, TrainSequence


@dataclass
class RawTrainResult:
    """True (error-free) timestamps of one train crossing the channel.

    ``access_delays`` (WLAN channels only) carries the per-packet
    ``mu_i``; live channels cannot observe it, but the simulator
    exposes it for validation studies.
    """

    send_times: np.ndarray
    recv_times: np.ndarray
    size_bytes: int
    access_delays: Optional[np.ndarray] = None
    scenario: Optional[ScenarioResult] = None


class Channel(abc.ABC):
    """Anything that can carry a probing train."""

    @abc.abstractmethod
    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        """Send one train through a fresh repetition of the channel."""

    def scenario_spec(self,
                      train: Optional[ProbeTrain] = None) -> ScenarioSpec:
        """Declarative description of this channel for the dispatcher.

        ``train`` sharpens the spec with workload properties only the
        probing train knows (e.g. whether FIFO cross-traffic matches
        the probe packet size).  The base class declares nothing
        (:data:`repro.backends.EVENT_ONLY`-like), so unknown channels
        only ever run the event engine; simulated channels override
        this with their actual configuration.
        """
        return ScenarioSpec(system="other", workload="train",
                            cross_traffic="other")

    def resolve_backend(self, requested: str = "auto",
                        train: Optional[ProbeTrain] = None):
        """Dispatch decision for this channel's scenario.

        Returns a :class:`repro.backends.Resolution`; forcing
        ``vector`` on an ineligible channel raises
        :class:`repro.backends.BackendUnavailableError` carrying the
        structured capability mismatches.
        """
        return dispatch.resolve(self.scenario_spec(train=train), requested)

    def send_trains(self, train: ProbeTrain, repetitions: int,
                    seed: int = 0,
                    backend: str = "event") -> List[RawTrainResult]:
        """Send ``repetitions`` independent trains (seeds derived).

        With the default ``event`` backend the per-repetition seeds
        are all derived up front from ``seed`` and the repetitions fan
        out across the ambient worker pool (see
        :func:`repro.runtime.executor.parallel_jobs`); results come
        back in repetition order, so the output is bit-identical to a
        serial run regardless of the job count.  ``backend="vector"``
        resolves the whole batch in one numpy pass instead
        (:meth:`send_trains_batch`) — statistically equivalent, no
        worker pool at all; channels without a vector kernel raise
        ``ValueError``.  ``backend="jit"`` runs the same batch path
        with the kernel's hot core compiled (bit-identical to
        ``vector``; raises
        :class:`repro.backends.BackendUnavailableError` without
        numba).  ``backend="auto"`` lets the dispatcher pick the
        fastest backend this channel is eligible for.
        """
        if repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {repetitions}")
        if backend not in dispatch.REQUESTABLE:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{dispatch.REQUESTABLE}")
        if backend == "auto":
            backend = self.resolve_backend("auto", train=train).name
        if backend in ("vector", "jit"):
            from repro.sim.jit import tier_scope, warm_kernels
            if backend == "jit":
                # Validates both capability and numba availability
                # (raises BackendUnavailableError with the reason).
                self.resolve_backend("jit", train=train)
                warm_kernels()
            with tier_scope(backend):
                batch = self._chunked_trains_batch(train, repetitions,
                                                   seed=seed)
            return [RawTrainResult(send_times=batch.send_times[r],
                                   recv_times=batch.recv_times[r],
                                   size_bytes=batch.size_bytes,
                                   access_delays=batch.access_delays[r])
                    for r in range(repetitions)]
        # Imported lazily: repro.runtime sits above the testbed layer.
        from repro.runtime.executor import derive_seeds, map_ordered
        return map_ordered(functools.partial(self._train_task, train),
                           derive_seeds(seed, repetitions))

    def send_trains_batch(self, train: ProbeTrain, repetitions: int,
                          seed: int = 0,
                          seeds: Optional[np.ndarray] = None
                          ) -> ProbeBatchResult:
        """Resolve a whole repetition batch with the vector kernel.

        Channels with a batched numpy backend override this; the
        result's row ``r`` is statistically equivalent to
        ``send_train(train, derive_seeds(seed, repetitions)[r])``.
        ``seeds`` overrides the derivation with explicit
        per-repetition values — chunked callers pass contiguous slices
        of the dense derivation, so chunk rows are bit-identical to
        the dense run's.
        """
        raise ValueError(
            f"{type(self).__name__} has no vector kernel; "
            "run with backend='event'")

    def _chunked_trains_batch(self, train: ProbeTrain, repetitions: int,
                              seed: int = 0) -> ProbeBatchResult:
        """The vector batch, honouring the ambient chunk scope.

        Under :func:`repro.runtime.executor.chunked_reps` the batch is
        resolved in contiguous chunks — each replaying the exact seed
        slice of the dense derivation — and folded back row-wise, so
        the result is bit-identical to the dense call at any chunk
        size.  Without a scope (or with one covering the whole batch)
        this is exactly :meth:`send_trains_batch`.
        """
        # Imported lazily: repro.runtime sits above the testbed layer.
        from repro.runtime.executor import active_chunk_reps
        chunk = active_chunk_reps()
        if chunk is None or chunk >= repetitions:
            return self.send_trains_batch(train, repetitions, seed=seed)
        seeds = resolve_rep_seeds(seed, repetitions)
        parts = [self.send_trains_batch(train, hi - lo, seed=seed,
                                        seeds=seeds[lo:hi])
                 for lo, hi in chunk_bounds(repetitions, chunk)]
        return type(parts[0]).concat(parts)

    def send_trains_dense(self, train: ProbeTrain, repetitions: int,
                          seed: int = 0,
                          backend: str = "event") -> ProbeBatchResult:
        """Send a repetition batch and return it in dense batch form.

        The backend-agnostic face of :meth:`send_trains`: the vector
        path returns the kernel's :class:`ProbeBatchResult` directly,
        the event path assembles the same shape from the
        per-repetition results — so runners consume one dense object
        and never branch on the backend.  The event rows are
        bit-identical to :meth:`send_trains`'s output.
        """
        if backend == "auto":
            backend = self.resolve_backend("auto", train=train).name
        if backend in ("vector", "jit"):
            from repro.sim.jit import tier_scope, warm_kernels
            if backend == "jit":
                self.resolve_backend("jit", train=train)
                warm_kernels()
            with tier_scope(backend):
                return self._chunked_trains_batch(train, repetitions,
                                                  seed=seed)
        raws = self.send_trains(train, repetitions, seed=seed,
                                backend=backend)
        if all(raw.access_delays is not None for raw in raws):
            delays = np.vstack([raw.access_delays for raw in raws])
        else:  # end-to-end channels cannot observe access delays
            delays = np.full((repetitions, train.n), np.nan)
        return ProbeBatchResult(
            send_times=np.vstack([raw.send_times for raw in raws]),
            recv_times=np.vstack([raw.recv_times for raw in raws]),
            access_delays=delays,
            size_bytes=train.size_bytes,
        )

    def _train_task(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        """One batch repetition; subclasses may slim the result.

        ``send_trains`` maps this (not ``send_train``) so that backends
        can drop bulky diagnostics the batch callers never read before
        the result crosses a worker-process boundary.
        """
        return self.send_train(train, seed)


class SimulatedWlanChannel(Channel):
    """A DCF link driven by :class:`repro.mac.scenario.WlanScenario`.

    Parameters
    ----------
    cross_stations:
        ``(name, generator)`` pairs — one contending station each.  The
        same generator object is reused across repetitions; randomness
        comes from the per-repetition seed.
    fifo_cross:
        Optional generator whose packets share the probe station's
        transmission queue (the paper's FIFO cross-traffic).
    warmup:
        Cross-traffic runs alone for this long before the train starts,
        so the train meets the system in *its* steady state (the
        transient under study is the probing flow's, not the system's).
    start_jitter:
        The train start is additionally delayed by Uniform(0, jitter)
        to avoid phase-locking with CBR cross-traffic.
    drain_rate_floor:
        Sizing hint for how long cross-traffic keeps flowing while the
        probe queue drains: the horizon covers the train duration plus
        ``n * L / drain_rate_floor``.
    """

    def __init__(self, cross_stations: Sequence[Tuple[str, object]],
                 fifo_cross: Optional[object] = None,
                 phy: Optional[PhyParams] = None,
                 warmup: float = 0.25,
                 start_jitter: float = 0.01,
                 drain_rate_floor: float = 1e6,
                 retry_limit: Optional[int] = None,
                 log_cross_queues: bool = False,
                 immediate_access: bool = True,
                 rts_threshold: Optional[int] = None) -> None:
        if warmup < 0 or start_jitter < 0:
            raise ValueError("warmup and start_jitter must be non-negative")
        if drain_rate_floor <= 0:
            raise ValueError("drain_rate_floor must be positive")
        self.cross_stations = list(cross_stations)
        self.fifo_cross = fifo_cross
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.warmup = warmup
        self.start_jitter = start_jitter
        self.drain_rate_floor = drain_rate_floor
        self.retry_limit = retry_limit
        self.log_cross_queues = log_cross_queues
        self.immediate_access = immediate_access
        self.rts_threshold = rts_threshold
        self._scenario = WlanScenario(self.phy, retry_limit=retry_limit,
                                      immediate_access=immediate_access,
                                      rts_threshold=rts_threshold)

    def horizon_for(self, train: ProbeTrain) -> float:
        """Cross-traffic horizon covering warmup, train and drain."""
        drain = train.n * train.size_bytes * 8 / self.drain_rate_floor
        return self.warmup + self.start_jitter + train.duration + drain

    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        rng = np.random.default_rng(seed)
        start = self.warmup + (rng.uniform(0, self.start_jitter)
                               if self.start_jitter > 0 else 0.0)
        horizon = self.horizon_for(train)
        probe_arrivals = train.packets(start=start)
        specs = [StationSpec("probe", generator=self.fifo_cross,
                             arrivals=probe_arrivals)]
        for name, generator in self.cross_stations:
            specs.append(StationSpec(name, generator=generator,
                                     log_queue=self.log_cross_queues))
        # Derive an independent stream for the scenario itself so the
        # start jitter draw does not shift the traffic sample paths.
        result = self._scenario.run(specs, horizon=horizon,
                                    seed=int(rng.integers(0, 2 ** 31)))
        probe = result.station("probe").completed("probe")
        if len(probe) != train.n:
            raise RuntimeError(
                f"{train.n - len(probe)} probe packets were lost")
        return RawTrainResult(
            send_times=np.array([r.arrival for r in probe]),
            recv_times=np.array([r.departure for r in probe]),
            size_bytes=train.size_bytes,
            access_delays=np.array([r.access_delay for r in probe]),
            scenario=result,
        )

    def _train_task(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        """Batch repetition: keep the scenario only when queue traces
        were requested — it dominates the payload shipped back from
        worker processes, and batch callers only read it for queue
        sampling."""
        raw = self.send_train(train, seed)
        if not self.log_cross_queues:
            raw.scenario = None
        return raw

    def scenario_spec(self,
                      train: Optional[ProbeTrain] = None) -> ScenarioSpec:
        """Compile this channel's configuration into a ScenarioSpec.

        The batched kernel covers the paper's probe-train setting —
        Poisson/CBR/on-off cross-traffic (mixed across stations),
        RTS/CTS, retry limits, queue traces, FIFO cross-traffic at the
        probe packet size; the spec states exactly which properties
        this instance (and, when given, the ``train`` it is about to
        carry) has, and the dispatcher turns any unsupported one — a
        trace-replay generator, a FIFO size mismatch — into a
        structured capability mismatch.
        """
        cross_kind, cross_detail = classify_cross_stations(
            self.cross_stations)
        fifo_kind, fifo_detail = "none", ""
        if self.fifo_cross is not None:
            try:
                fifo_kind, spec = classify_cross_generator(self.fifo_cross)
                if train is not None and spec.size_bytes != train.size_bytes:
                    fifo_kind = "other"
                    fifo_detail = fifo_size_mismatch_detail(
                        train.size_bytes, spec.size_bytes)
            except ValueError as exc:
                fifo_kind = "other"
                fifo_detail = f"FIFO cross-traffic: {exc}"
        return ScenarioSpec(
            system="wlan",
            workload="train",
            cross_traffic=cross_kind,
            fifo_cross=fifo_kind,
            rts_cts=self.rts_threshold is not None,
            retry_limit=self.retry_limit is not None,
            queue_traces=self.log_cross_queues,
            cross_detail=cross_detail,
            fifo_detail=fifo_detail,
        )

    def vector_unsupported_reason(self) -> Optional[str]:
        """Why this channel cannot run the vector kernel (or ``None``).

        A convenience view over the dispatcher: the returned sentence
        is the first structured
        :class:`~repro.backends.CapabilityMismatch` of the probe-train
        kernel for :meth:`scenario_spec`.
        """
        return dispatch.vector_mismatch_reason(self.scenario_spec())

    def send_trains_batch(self, train: ProbeTrain, repetitions: int,
                          seed: int = 0,
                          seeds: Optional[np.ndarray] = None
                          ) -> ProbeBatchResult:
        """One vectorized pass over the whole repetition batch.

        Statistically equivalent to mapping :meth:`send_train` over
        the derived per-repetition seeds (the KS tests in
        ``tests/test_probe_vector_backend.py`` pin the two); the
        per-repetition seed mapping is the executor's, so repetition
        ``r`` refers to the same random universe on either backend.
        ``seeds`` overrides the derivation (the chunked hook, see
        :meth:`Channel.send_trains_batch`).

        An ineligible channel raises
        :class:`repro.backends.BackendUnavailableError` (a
        ``ValueError``) carrying the structured capability mismatches,
        before any kernel state is built.
        """
        self.resolve_backend("vector", train=train)
        cross = [cross_spec_from_generator(generator)
                 for _, generator in self.cross_stations]
        fifo = (cross_spec_from_generator(self.fifo_cross)
                if self.fifo_cross is not None else None)
        return simulate_probe_train_batch(
            train.n, train.gap, repetitions,
            size_bytes=train.size_bytes,
            cross=cross,
            fifo_cross=fifo,
            horizon=self.horizon_for(train),
            phy=self.phy,
            warmup=self.warmup,
            start_jitter=self.start_jitter,
            seed=seed,
            seeds=seeds,
            immediate_access=self.immediate_access,
            rts_threshold=self.rts_threshold,
            retry_limit=self.retry_limit,
            track_queues=self.log_cross_queues,
        )

    def send_train_sequence(self, sequence: TrainSequence,
                            seed: int) -> List[RawTrainResult]:
        """Send ``m`` Poisson-spaced trains through ONE live system.

        This is the paper's literal measurement procedure (section
        5.1.2): all trains of the sequence share a single simulation —
        the cross-traffic is *not* redrawn between trains, only the
        Poisson inter-train spacing lets the system forget the previous
        train.  Compare with :meth:`send_trains`, which runs fully
        independent repetitions (cheaper, same limiting averages).
        """
        rng = np.random.default_rng(seed)
        train = sequence.train
        starts = sequence.start_times(rng, start=self.warmup)
        probe_arrivals = []
        for train_start in starts:
            probe_arrivals.extend(train.packets(float(train_start)))
        drain = train.n * train.size_bytes * 8 / self.drain_rate_floor
        horizon = float(starts[-1]) + train.duration + drain
        specs = [StationSpec("probe", generator=self.fifo_cross,
                             arrivals=probe_arrivals)]
        for name, generator in self.cross_stations:
            specs.append(StationSpec(name, generator=generator,
                                     log_queue=self.log_cross_queues))
        result = self._scenario.run(specs, horizon=horizon,
                                    seed=int(rng.integers(0, 2 ** 31)))
        probe = result.station("probe").completed("probe")
        if len(probe) != len(probe_arrivals):
            raise RuntimeError("probe packets were lost")
        out: List[RawTrainResult] = []
        for k in range(sequence.m):
            chunk = probe[k * train.n:(k + 1) * train.n]
            out.append(RawTrainResult(
                send_times=np.array([r.arrival for r in chunk]),
                recv_times=np.array([r.departure for r in chunk]),
                size_bytes=train.size_bytes,
                access_delays=np.array([r.access_delay for r in chunk]),
            ))
        return out


class SimulatedFifoChannel(Channel):
    """The wired single-queue baseline of equation (1)."""

    def __init__(self, capacity_bps: float,
                 cross_generator: Optional[object] = None,
                 warmup: float = 0.25,
                 start_jitter: float = 0.01,
                 drain_rate_floor: float = 1e6) -> None:
        if warmup < 0 or start_jitter < 0:
            raise ValueError("warmup and start_jitter must be non-negative")
        if drain_rate_floor <= 0:
            raise ValueError("drain_rate_floor must be positive")
        self.hop = FifoHop(capacity_bps)
        self.cross_generator = cross_generator
        self.warmup = warmup
        self.start_jitter = start_jitter
        self.drain_rate_floor = drain_rate_floor

    def scenario_spec(self,
                      train: Optional[ProbeTrain] = None) -> ScenarioSpec:
        """A wired FIFO hop; the batched Lindley kernel replays any
        cross-traffic model's exact sample path, so neither the
        traffic model nor the train shape disqualifies it."""
        kind = "none"
        if self.cross_generator is not None:
            try:
                PoissonCrossSpec.from_generator(self.cross_generator)
                kind = "poisson"
            except ValueError:
                kind = "other"
        return ScenarioSpec(system="fifo", workload="train",
                            cross_traffic=kind)

    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        rng = np.random.default_rng(seed)
        start = self.warmup + (rng.uniform(0, self.start_jitter)
                               if self.start_jitter > 0 else 0.0)
        drain = train.n * train.size_bytes * 8 / self.drain_rate_floor
        horizon = start + train.duration + drain
        arrivals = list(train.packets(start=start))
        if self.cross_generator is not None:
            arrivals.extend(self.cross_generator.generate(horizon, rng))
        result = self.hop.run(arrivals)
        probe = result.by_flow("probe")
        return RawTrainResult(
            send_times=np.array([r.arrival for r in probe]),
            recv_times=np.array([r.departure for r in probe]),
            size_bytes=train.size_bytes,
            access_delays=np.array([r.access_delay for r in probe]),
        )

    def send_trains_batch(self, train: ProbeTrain, repetitions: int,
                          seed: int = 0,
                          seeds: Optional[np.ndarray] = None
                          ) -> ProbeBatchResult:
        """All repetitions through one batched Lindley recursion.

        Each repetition replays :meth:`send_train`'s exact sample path
        (same per-repetition generator, same draw order, same stable
        merge of probe and cross arrivals), so the departures agree
        with the event path to float rounding — the per-packet Python
        loop of :class:`repro.queueing.fifo.FifoHop` is simply replaced
        by one ``(repetitions, n)`` cumulative-max pass.  ``seeds``
        overrides the per-repetition seed derivation (the chunked
        hook, see :meth:`Channel.send_trains_batch`).
        """
        if repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {repetitions}")
        if seeds is None:
            seeds = resolve_rep_seeds(seed, repetitions)
        elif len(seeds) != repetitions:
            raise ValueError(
                f"got {len(seeds)} seeds for {repetitions} repetitions")
        n = train.n
        probe_services = np.full(
            n, (train.size_bytes + self.hop.overhead_bytes) * 8
            / self.hop.capacity_bps)
        rep_times: List[np.ndarray] = []
        rep_services: List[np.ndarray] = []
        rep_probe_pos: List[np.ndarray] = []
        send = np.zeros((repetitions, n))
        for r, rep_seed in enumerate(seeds):
            rng = np.random.default_rng(int(rep_seed))
            start = self.warmup + (rng.uniform(0, self.start_jitter)
                                   if self.start_jitter > 0 else 0.0)
            drain = n * train.size_bytes * 8 / self.drain_rate_floor
            horizon = start + train.duration + drain
            probe_times = train.arrival_times(start=start)
            times = probe_times
            services = probe_services
            if self.cross_generator is not None:
                schedule = self.cross_generator.generate(horizon, rng)
                cross_times = schedule.times
                cross_bytes = np.fromiter(
                    (p.size_bytes for _, p in schedule), dtype=np.int64,
                    count=len(schedule))
                cross_services = ((cross_bytes + self.hop.overhead_bytes)
                                  * 8 / self.hop.capacity_bps)
                times = np.concatenate([probe_times, cross_times])
                services = np.concatenate([probe_services, cross_services])
            # Stable sort keeps probe packets ahead of simultaneous
            # cross arrivals, matching FifoHop.run's tie rule.
            order = np.argsort(times, kind="stable")
            inverse = np.empty(len(order), dtype=np.int64)
            inverse[order] = np.arange(len(order))
            rep_times.append(times[order])
            rep_services.append(services[order])
            rep_probe_pos.append(inverse[:n])
            send[r] = probe_times
        width = max(len(t) for t in rep_times)
        arrivals = np.full((repetitions, width), np.inf)
        services = np.zeros((repetitions, width))
        probe_pos = np.zeros((repetitions, n), dtype=np.int64)
        for r in range(repetitions):
            arrivals[r, :len(rep_times[r])] = rep_times[r]
            services[r, :len(rep_services[r])] = rep_services[r]
            probe_pos[r] = rep_probe_pos[r]
        starts, departures = lindley_batch(arrivals, services)
        recv = np.take_along_axis(departures, probe_pos, axis=1)
        hol = np.take_along_axis(starts, probe_pos, axis=1)
        return ProbeBatchResult(
            send_times=send,
            recv_times=recv,
            access_delays=recv - hol,
            size_bytes=train.size_bytes,
        )
