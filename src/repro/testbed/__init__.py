"""Emulated testbed.

The paper's measurements ran on the EXTREME testbed: MGEN traffic,
driver-level timestamping, and NTP synchronization over a parallel
wired interface giving delay accuracies of about ten microseconds.
This package reproduces the *measurement tool* side of that setup:

* :mod:`repro.testbed.clocks` — clock error models (offset, drift,
  timestamping jitter) applied to sender/receiver timestamps;
* :mod:`repro.testbed.channel` — the channel abstraction a live prober
  would bind to scapy/raw sockets; here
  :class:`SimulatedWlanChannel` drives the DCF simulator instead (the
  substitution called out in DESIGN.md), and
  :class:`SimulatedFifoChannel` drives the wired FIFO hop baseline;
* :mod:`repro.testbed.prober` — the probing tool itself: rate scans,
  packet pairs, train measurements, MSER-corrected measurements — all
  expressed over the channel interface so the code path is identical
  for simulated and live channels.
"""

from repro.testbed.clocks import ClockModel, ntp_synced_pair
from repro.testbed.channel import (
    Channel,
    SimulatedFifoChannel,
    SimulatedWlanChannel,
)
from repro.testbed.prober import Prober, ProbeSessionConfig

__all__ = [
    "Channel",
    "ClockModel",
    "ProbeSessionConfig",
    "Prober",
    "SimulatedFifoChannel",
    "SimulatedWlanChannel",
    "ntp_synced_pair",
]
