"""Clock and timestamping error models.

A measurement host never sees true event times: its timestamps include
a clock offset relative to true time, a slow drift, and per-timestamp
jitter from the capture path.  The paper's testbed bounds the combined
error to roughly ten microseconds by NTP-syncing over a wired side
channel and timestamping in the driver; :func:`ntp_synced_pair` builds
a sender/receiver clock pair with exactly that error budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ClockModel:
    """An affine-plus-noise clock.

    ``timestamp(t) = t + offset + drift_ppm * 1e-6 * t + jitter`` where
    jitter is zero-mean Gaussian with standard deviation
    ``jitter_std``.

    Attributes
    ----------
    offset:
        Constant offset from true time (seconds).
    drift_ppm:
        Frequency error in parts per million.
    jitter_std:
        Standard deviation of per-timestamp noise (seconds).
    """

    offset: float = 0.0
    drift_ppm: float = 0.0
    jitter_std: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter_std < 0:
            raise ValueError(
                f"jitter_std must be non-negative, got {self.jitter_std}")

    def timestamps(self, true_times: np.ndarray,
                   rng: np.random.Generator) -> np.ndarray:
        """Timestamp an array of true event times.

        Jitter can reorder timestamps of events closer together than a
        few ``jitter_std``; like a real capture pipeline, the result is
        re-sorted (packets are delivered in order, their timestamps are
        monotonized by the capture path).
        """
        true_times = np.asarray(true_times, dtype=float)
        stamped = (true_times + self.offset
                   + self.drift_ppm * 1e-6 * true_times)
        if self.jitter_std > 0:
            stamped = stamped + rng.normal(0.0, self.jitter_std,
                                           size=true_times.shape)
            stamped = np.maximum.accumulate(stamped)
        return stamped

    def timestamp(self, true_time: float, rng: np.random.Generator) -> float:
        """Timestamp a single event."""
        return float(self.timestamps(np.array([true_time]), rng)[0])


def ntp_synced_pair(rng: np.random.Generator,
                    sync_error_std: float = 10e-6,
                    jitter_std: float = 5e-6,
                    drift_ppm: float = 0.5) -> Tuple[ClockModel, ClockModel]:
    """Build a (sender, receiver) clock pair like the paper's testbed.

    The sender clock is the time reference; the receiver clock gets a
    random offset of standard deviation ``sync_error_std`` (the NTP
    residual, ~10 us in the paper), a small drift, and both clocks get
    driver-level timestamping jitter ``jitter_std``.
    """
    if sync_error_std < 0:
        raise ValueError("sync_error_std must be non-negative")
    sender = ClockModel(offset=0.0, drift_ppm=0.0, jitter_std=jitter_std)
    receiver = ClockModel(
        offset=float(rng.normal(0.0, sync_error_std)),
        drift_ppm=float(rng.normal(0.0, drift_ppm)),
        jitter_std=jitter_std,
    )
    return sender, receiver
