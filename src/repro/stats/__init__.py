"""Statistical substrate.

* :mod:`repro.stats.ks` — two-sample Kolmogorov-Smirnov machinery,
  including the paper's trick of linearly interpolating one empirical
  distribution when comparing two discrete samples (footnote 2);
* :mod:`repro.stats.descriptive` — means, confidence intervals,
  histogramming helpers used by the figure reproductions;
* :mod:`repro.stats.warmup` — warm-up (initial-transient) truncation
  heuristics: the MSER-m family used in section 7.4, plus classical
  alternatives for the ablation benches.
"""

from repro.stats.ks import (
    KSResult,
    empirical_cdf,
    interpolated_cdf,
    ks_2samp_interpolated,
    ks_distance,
    ks_threshold,
)
from repro.stats.descriptive import (
    SummaryStats,
    bootstrap_ci,
    histogram,
    mean_confidence_interval,
    summarize,
)
from repro.stats.warmup import (
    TruncationResult,
    batch_means,
    crossing_mean_rule,
    fixed_truncation,
    geweke_statistic,
    geweke_truncation,
    mser,
    mser_m,
)

__all__ = [
    "KSResult",
    "SummaryStats",
    "TruncationResult",
    "batch_means",
    "bootstrap_ci",
    "crossing_mean_rule",
    "empirical_cdf",
    "fixed_truncation",
    "geweke_statistic",
    "geweke_truncation",
    "histogram",
    "interpolated_cdf",
    "ks_2samp_interpolated",
    "ks_distance",
    "ks_threshold",
    "mean_confidence_interval",
    "mser",
    "mser_m",
    "summarize",
]
