"""Two-sample Kolmogorov-Smirnov machinery.

The paper (section 4, footnote 2) compares the access-delay sample of
each probing-packet index against the pooled steady-state sample using
the KS statistic, converting one of the two empirical *discrete*
distributions to a continuous one by linear interpolation.  This module
implements that exact procedure, the plain two-sample KS distance, and
the 95% (or arbitrary-level) acceptance threshold
``c(alpha) * sqrt((n + m) / (n * m))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np


def empirical_cdf(sample: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Right-continuous empirical CDF of ``sample``."""
    sorted_sample = np.sort(np.asarray(sample, dtype=float))
    n = len(sorted_sample)
    if n == 0:
        raise ValueError("empty sample")

    def cdf(x: np.ndarray) -> np.ndarray:
        return np.searchsorted(sorted_sample, np.asarray(x, dtype=float),
                               side="right") / n

    return cdf


def interpolated_cdf(sample: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Continuous (piecewise-linear) CDF built from a discrete sample.

    This is the paper's interpolation trick: the step CDF is replaced
    by the linear interpolant through the points
    ``(x_(k), k / n)`` so that two discrete samples can be compared as
    if one of them came from a continuous distribution.
    """
    sorted_sample = np.sort(np.asarray(sample, dtype=float))
    n = len(sorted_sample)
    if n == 0:
        raise ValueError("empty sample")
    probabilities = np.arange(1, n + 1) / n

    def cdf(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.interp(x, sorted_sample, probabilities, left=0.0, right=1.0)

    return cdf


def ks_distance(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Plain two-sample KS statistic sup_x |F_a(x) - F_b(x)|."""
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    if len(a) == 0 or len(b) == 0:
        raise ValueError("empty sample")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_threshold(n: int, m: int, alpha: float = 0.05) -> float:
    """Rejection threshold for the two-sample KS test.

    ``D > c(alpha) * sqrt((n + m)/(n m))`` rejects equality at level
    ``alpha``, with ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` (the paper's
    "Threshold 95% CI" line uses ``alpha = 0.05``).
    """
    if n <= 0 or m <= 0:
        raise ValueError("sample sizes must be positive")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    c_alpha = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c_alpha * math.sqrt((n + m) / (n * m))


@dataclass
class KSResult:
    """Outcome of a two-sample KS comparison."""

    statistic: float
    threshold: float
    n: int
    m: int
    alpha: float

    @property
    def same_distribution(self) -> bool:
        """Whether equality is *not* rejected at level alpha."""
        return self.statistic <= self.threshold


def ks_2samp_interpolated(sample: np.ndarray, reference: np.ndarray,
                          alpha: float = 0.05) -> KSResult:
    """KS test of ``sample`` against an interpolated ``reference``.

    ``reference`` (typically the pooled steady-state access delays of
    the last 500 probing packets) is converted to a continuous CDF by
    linear interpolation; the statistic is the maximum deviation of the
    sample's empirical CDF from it, evaluated at the sample points
    (both one-sided deviations around each step are checked).
    """
    sample = np.sort(np.asarray(sample, dtype=float))
    reference = np.asarray(reference, dtype=float)
    n, m = len(sample), len(reference)
    if n == 0 or m == 0:
        raise ValueError("empty sample")
    continuous = interpolated_cdf(reference)
    ref_at_sample = continuous(sample)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    statistic = float(np.max(np.maximum(np.abs(upper - ref_at_sample),
                                        np.abs(lower - ref_at_sample))))
    return KSResult(statistic=statistic, threshold=ks_threshold(n, m, alpha),
                    n=n, m=m, alpha=alpha)
