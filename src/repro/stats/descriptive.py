"""Descriptive statistics used by the figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats as sps


@dataclass
class SummaryStats:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n < 2:
            return float("nan")
        return self.std / np.sqrt(self.n)


def summarize(sample: np.ndarray) -> SummaryStats:
    """Compute a :class:`SummaryStats` for ``sample``."""
    sample = np.asarray(sample, dtype=float)
    if len(sample) == 0:
        raise ValueError("empty sample")
    return SummaryStats(
        n=len(sample),
        mean=float(np.mean(sample)),
        std=float(np.std(sample, ddof=1)) if len(sample) > 1 else 0.0,
        minimum=float(np.min(sample)),
        median=float(np.median(sample)),
        maximum=float(np.max(sample)),
    )


def mean_confidence_interval(sample: np.ndarray,
                             confidence: float = 0.95) -> Tuple[float, float, float]:
    """Mean and Student-t confidence interval ``(mean, lo, hi)``."""
    sample = np.asarray(sample, dtype=float)
    n = len(sample)
    if n < 2:
        raise ValueError("need at least two observations")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(np.mean(sample))
    sem = float(np.std(sample, ddof=1) / np.sqrt(n))
    half = float(sps.t.ppf((1 + confidence) / 2, n - 1)) * sem
    return mean, mean - half, mean + half


def bootstrap_ci(sample: np.ndarray, statistic=np.mean,
                 confidence: float = 0.95, n_boot: int = 1000,
                 seed: int = 0) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval ``(point, lo, hi)``."""
    sample = np.asarray(sample, dtype=float)
    if len(sample) == 0:
        raise ValueError("empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    point = float(statistic(sample))
    replicates = np.empty(n_boot)
    for k in range(n_boot):
        replicates[k] = statistic(rng.choice(sample, size=len(sample)))
    lo, hi = np.percentile(replicates,
                           [(1 - confidence) / 2 * 100,
                            (1 + confidence) / 2 * 100])
    return point, float(lo), float(hi)


def histogram(sample: np.ndarray, bins: int = 50,
              range_: Tuple[float, float] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Counts histogram ``(counts, bin_edges)`` (figure 7 style)."""
    sample = np.asarray(sample, dtype=float)
    if len(sample) == 0:
        raise ValueError("empty sample")
    counts, edges = np.histogram(sample, bins=bins, range=range_)
    return counts, edges
