"""Warm-up (initial transient) truncation heuristics.

Section 7.4 of the paper recasts short-train bandwidth measurement as a
*simulation warm-up* problem and applies the MSER-m heuristic to the
inter-arrival (dispersion) samples of a probing train, discarding the
samples MSER flags as transient.  This module implements:

* :func:`mser` / :func:`mser_m` — the Marginal Standard Error Rule with
  optional batching (MSER-2 is what figure 17 uses);
* :func:`fixed_truncation` and :func:`crossing_mean_rule` — classical
  alternatives used by the ablation benches;
* :func:`batch_means` — utility batching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TruncationResult:
    """Outcome of a warm-up truncation heuristic.

    ``truncate_before`` is the index (in the *original* sample) of the
    first observation considered to be in steady state; ``truncated``
    is the retained tail.
    """

    truncate_before: int
    truncated: np.ndarray
    scores: np.ndarray

    @property
    def retained_fraction(self) -> float:
        """Fraction of the sample kept after truncation."""
        total = self.truncate_before + len(self.truncated)
        return len(self.truncated) / total if total else 0.0


def batch_means(sample: np.ndarray, m: int) -> np.ndarray:
    """Non-overlapping batch means of size ``m`` (tail dropped)."""
    sample = np.asarray(sample, dtype=float)
    if m < 1:
        raise ValueError(f"batch size must be >= 1, got {m}")
    n_batches = len(sample) // m
    if n_batches == 0:
        return np.array([])
    return sample[:n_batches * m].reshape(n_batches, m).mean(axis=1)


def mser(sample: np.ndarray, max_cut_fraction: float = 0.75) -> TruncationResult:
    """Marginal Standard Error Rule (MSER) truncation.

    For each candidate truncation point ``d`` the MSER statistic is::

        MSER(d) = Var(X_{d+1..n}) / (n - d)

    (up to a constant, the squared standard error of the truncated
    mean); the selected ``d`` minimizes it.  Following standard
    practice the search is restricted to the first
    ``max_cut_fraction`` of the sample so the statistic is not
    minimized by a spuriously tiny tail.
    """
    sample = np.asarray(sample, dtype=float)
    n = len(sample)
    if n < 2:
        raise ValueError("need at least two observations")
    if not 0 < max_cut_fraction <= 1:
        raise ValueError(
            f"max_cut_fraction must be in (0, 1], got {max_cut_fraction}")
    max_cut = max(1, int(np.floor(n * max_cut_fraction)))
    # Suffix sums score every candidate cutoff in one vectorized pass:
    # kept counts, truncated means and variances for all d at once.
    suffix_sum = np.cumsum(sample[::-1])[::-1]
    suffix_sq = np.cumsum((sample ** 2)[::-1])[::-1]
    kept = n - np.arange(n)
    mean = suffix_sum / kept
    var = suffix_sq / kept - mean ** 2
    scores = np.where((np.arange(n) < max_cut) & (kept >= 2),
                      np.maximum(var, 0.0) / kept, np.inf)
    best = int(np.argmin(scores[:max_cut]))
    return TruncationResult(truncate_before=best, truncated=sample[best:],
                            scores=scores)


def mser_m(sample: np.ndarray, m: int = 2,
           max_cut_fraction: float = 0.75) -> TruncationResult:
    """MSER applied to batch means of size ``m`` (MSER-m).

    The paper's figure 17 uses MSER-2 on the inter-arrival times of a
    20-packet train.  The returned ``truncate_before`` is expressed in
    *original-sample* units (batch index times ``m``).
    """
    sample = np.asarray(sample, dtype=float)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    batched = batch_means(sample, m)
    if len(batched) < 2:
        raise ValueError(
            f"sample of {len(sample)} too short for MSER-{m}")
    batch_result = mser(batched, max_cut_fraction=max_cut_fraction)
    cut = batch_result.truncate_before * m
    return TruncationResult(truncate_before=cut, truncated=sample[cut:],
                            scores=batch_result.scores)


def fixed_truncation(sample: np.ndarray, cut: int) -> TruncationResult:
    """Discard the first ``cut`` observations unconditionally."""
    sample = np.asarray(sample, dtype=float)
    if cut < 0 or cut >= len(sample):
        raise ValueError(
            f"cut must be in [0, {len(sample) - 1}], got {cut}")
    return TruncationResult(truncate_before=cut, truncated=sample[cut:],
                            scores=np.array([]))


def geweke_statistic(sample: np.ndarray, first_fraction: float = 0.1,
                     last_fraction: float = 0.5) -> float:
    """Geweke's convergence diagnostic (z-score of early vs. late mean).

    Compares the mean of the first ``first_fraction`` of the sequence
    with the mean of the last ``last_fraction``; under stationarity the
    statistic is approximately standard normal, so |z| > 2 flags an
    initial transient.  Variances are estimated per segment (the
    independent-replications use case of this package; for a single
    autocorrelated path, batch the sample first).
    """
    sample = np.asarray(sample, dtype=float)
    if len(sample) < 10:
        raise ValueError("need at least 10 observations")
    if not 0 < first_fraction < 1 or not 0 < last_fraction < 1:
        raise ValueError("fractions must be in (0, 1)")
    if first_fraction + last_fraction > 1:
        raise ValueError("segments must not overlap")
    n = len(sample)
    head = sample[:max(2, int(n * first_fraction))]
    tail = sample[n - max(2, int(n * last_fraction)):]
    var = np.var(head, ddof=1) / len(head) + np.var(tail, ddof=1) / len(tail)
    if var <= 0:
        return 0.0
    return float((head.mean() - tail.mean()) / np.sqrt(var))


def geweke_truncation(sample: np.ndarray, z_threshold: float = 2.0,
                      step_fraction: float = 0.05) -> TruncationResult:
    """Truncate until the Geweke statistic passes.

    Repeatedly drops a ``step_fraction`` slice off the front until
    ``|z| <= z_threshold`` (or at most half the sample is gone) — the
    classical iterative use of the diagnostic.
    """
    sample = np.asarray(sample, dtype=float)
    if len(sample) < 20:
        raise ValueError("need at least 20 observations")
    if z_threshold <= 0:
        raise ValueError("z_threshold must be positive")
    if not 0 < step_fraction < 0.5:
        raise ValueError("step_fraction must be in (0, 0.5)")
    step = max(1, int(len(sample) * step_fraction))
    cut = 0
    scores = []
    while cut <= len(sample) // 2:
        z = geweke_statistic(sample[cut:])
        scores.append(z)
        if abs(z) <= z_threshold:
            break
        cut += step
    cut = min(cut, len(sample) // 2)
    return TruncationResult(truncate_before=cut, truncated=sample[cut:],
                            scores=np.array(scores))


def crossing_mean_rule(sample: np.ndarray,
                       crossings_required: int = 1) -> TruncationResult:
    """Welch-style crossing-of-the-mean rule.

    Truncates at the first index where the running sequence has crossed
    the grand mean ``crossings_required`` times — a cheap classical
    heuristic included for the truncation ablation bench.
    """
    sample = np.asarray(sample, dtype=float)
    if len(sample) < 2:
        raise ValueError("need at least two observations")
    if crossings_required < 1:
        raise ValueError(
            f"crossings_required must be >= 1, got {crossings_required}")
    grand_mean = sample.mean()
    above = sample[0] > grand_mean
    crossings = 0
    cut = 0
    for i in range(1, len(sample)):
        now_above = sample[i] > grand_mean
        if now_above != above:
            crossings += 1
            above = now_above
            if crossings >= crossings_required:
                cut = i
                break
    else:
        cut = 0  # never crossed enough: keep everything
    return TruncationResult(truncate_before=cut, truncated=sample[cut:],
                            scores=np.array([]))
