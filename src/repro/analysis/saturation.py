"""Saturated-BSS study — the dual-backend experiment.

``ext-saturation`` sweeps the number of saturated stations and
compares the measured total throughput, mean access delay and
collision fraction against Bianchi's model.  It is the first
experiment registered with *two* repetition backends:

* ``event`` — every repetition runs the saturated station specs
  through the event engine (:class:`repro.mac.scenario.WlanScenario`),
  sharded across worker processes like every other experiment;
* ``vector`` — the whole repetition batch is resolved in one
  numpy pass by :func:`repro.sim.vector.simulate_saturated_batch`.

Both paths return the same :class:`repro.sim.vector.VectorBatchResult`
shape, so the analysis below is backend-agnostic; the KS-equivalence
tests in ``tests/test_vector_backend.py`` pin the two backends to the
same distributions.
"""

from __future__ import annotations

import functools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.results import ExperimentResult, monotone_nondecreasing
from repro.analytic.bianchi import BianchiModel
from repro.mac.params import PhyParams
from repro.mac.scenario import WlanScenario, saturated_station_specs
from repro.sim.vector import VectorBatchResult, simulate_saturated_batch


def _event_repetition(n_stations: int, packets_per_station: int,
                      size_bytes: int, phy: Optional[PhyParams],
                      rts_threshold: Optional[int],
                      seed: int) -> Tuple[np.ndarray, float, int, int]:
    """One saturated repetition through the event engine."""
    scenario = WlanScenario(phy, rts_threshold=rts_threshold)
    specs = saturated_station_specs(n_stations, packets_per_station,
                                    size_bytes)
    result = scenario.run(specs, horizon=1.0, seed=seed)
    delays = np.stack([result.station(spec.name).access_delays()
                       for spec in specs])
    return delays, result.duration, result.successes, result.collisions


def simulate_saturated(n_stations: int, packets_per_station: int,
                       repetitions: int, *,
                       size_bytes: int = 1500,
                       phy: Optional[PhyParams] = None,
                       seed: int = 0,
                       rts_threshold: Optional[int] = None,
                       backend: str = "event") -> VectorBatchResult:
    """Run a saturated batch on the selected backend.

    The event path maps per-repetition seeds over worker processes
    (honouring the ambient ``--jobs`` scope); the vector path hands
    the whole batch to the numpy kernel.  Either way the returned
    :class:`~repro.sim.vector.VectorBatchResult` has identical shape
    and statistically equivalent content.  ``rts_threshold`` protects
    frames with the RTS/CTS handshake on both backends (and is
    declared in the dispatch spec, so the capability match reflects
    it).
    """
    # Imported lazily: repro.runtime sits above the analysis layer.
    from repro.backends import ScenarioSpec, dispatch
    from repro.runtime.executor import run_batch
    spec = ScenarioSpec(system="wlan", workload="saturated",
                        rts_cts=rts_threshold is not None)
    backend = dispatch.resolve(spec, backend).name
    event_task = functools.partial(_event_repetition, n_stations,
                                   packets_per_station, size_bytes, phy,
                                   rts_threshold)
    vector_batch = functools.partial(
        simulate_saturated_batch, n_stations, packets_per_station,
        repetitions, size_bytes=size_bytes, phy=phy,
        rts_threshold=rts_threshold)
    out = run_batch(event_task, repetitions, seed, backend=backend,
                    vector_batch=lambda s: vector_batch(seed=s), spec=spec)
    if backend == "vector":
        return out
    delays, durations, successes, collisions = zip(*out)
    return VectorBatchResult(
        access_delays=np.stack(delays),
        durations=np.array(durations, dtype=float),
        successes=np.array(successes, dtype=np.int64),
        collisions=np.array(collisions, dtype=np.int64),
        n_stations=n_stations,
        packets_per_station=packets_per_station,
        size_bytes=size_bytes,
    )


def dcf_saturation_study(
        station_counts: Sequence[int] = (1, 2, 3, 5, 10),
        packets_per_station: int = 40,
        repetitions: int = 100,
        size_bytes: int = 1500,
        phy: Optional[PhyParams] = None,
        seed: int = 0,
        backend: str = "event") -> ExperimentResult:
    """Saturation throughput/delay/collisions vs. Bianchi, any backend.

    For each station count the whole batch of repetitions runs on the
    selected backend; the measured curves must track the Bianchi fixed
    point (the drain tail — stations leaving contention as their
    queues empty — biases the mean access delay slightly low, which
    the tolerance absorbs).
    """
    counts = [int(n) for n in station_counts]
    if any(n < 1 for n in counts):
        raise ValueError(f"station counts must be >= 1, got {counts}")
    bianchi = BianchiModel(phy, size_bytes)
    throughput = np.zeros(len(counts))
    delay = np.zeros(len(counts))
    collision_fraction = np.zeros(len(counts))
    bianchi_tput = np.zeros(len(counts))
    bianchi_delay = np.zeros(len(counts))
    for k, n in enumerate(counts):
        batch = simulate_saturated(
            n, packets_per_station, repetitions, size_bytes=size_bytes,
            phy=phy, seed=seed + 101 * k, backend=backend)
        throughput[k] = batch.throughput_bps().mean()
        delay[k] = batch.pooled_access_delays().mean()
        acquisitions = batch.successes.sum() + batch.collisions.sum()
        collision_fraction[k] = batch.collisions.sum() / acquisitions
        solution = bianchi.solve(n)
        bianchi_tput[k] = solution.total_throughput_bps
        bianchi_delay[k] = solution.mean_access_delay
    result = ExperimentResult(
        experiment="ext-saturation",
        title="Saturated DCF vs. Bianchi (backend-routed batch)",
        x_label="n_stations",
        x=np.array(counts, dtype=float),
        series={
            "throughput_bps": throughput,
            "bianchi_bps": bianchi_tput,
            "mean_access_delay_s": delay,
            "collision_fraction": collision_fraction,
        },
        meta={
            "backend": backend,
            "repetitions": repetitions,
            "packets_per_station": packets_per_station,
            "size_bytes": size_bytes,
        },
    )
    result.add_check(
        "throughput-tracks-bianchi",
        bool(np.all(np.abs(throughput - bianchi_tput) <= 0.08 * bianchi_tput)))
    result.add_check(
        "delay-tracks-bianchi",
        bool(np.all(np.abs(delay - bianchi_delay) <= 0.25 * bianchi_delay)))
    result.add_check(
        "delay-grows-with-contention",
        monotone_nondecreasing(delay))
    result.add_check(
        "collisions-grow-with-contention",
        monotone_nondecreasing(collision_fraction, slack=0.01))
    return result
