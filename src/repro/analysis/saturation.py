"""Saturated-BSS study — the dual-backend experiment.

``ext-saturation`` sweeps the number of saturated stations and
compares the measured total throughput, mean access delay and
collision fraction against Bianchi's model.  It is the first
experiment registered with *two* repetition backends:

* ``event`` — every repetition runs the saturated station specs
  through the event engine (:class:`repro.mac.scenario.WlanScenario`),
  sharded across worker processes like every other experiment;
* ``vector`` — the whole repetition batch is resolved in one
  numpy pass by :func:`repro.sim.vector.simulate_saturated_batch`.

Both paths return the same :class:`repro.sim.vector.VectorBatchResult`
shape, so the analysis below is backend-agnostic; the KS-equivalence
tests in ``tests/test_vector_backend.py`` pin the two backends to the
same distributions.
"""

from __future__ import annotations

import functools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.results import ExperimentResult, monotone_nondecreasing
from repro.analytic.bianchi import BianchiModel
from repro.mac.params import PhyParams
from repro.mac.scenario import WlanScenario, saturated_station_specs
from repro.sim.delay_model import retry_drop_probability
from repro.sim.vector import VectorBatchResult, simulate_saturated_batch


def _event_repetition(n_stations: int, packets_per_station: int,
                      size_bytes: int, phy: Optional[PhyParams],
                      rts_threshold: Optional[int],
                      retry_limit: Optional[int],
                      seed: int
                      ) -> Tuple[np.ndarray, float, int, int, np.ndarray]:
    """One saturated repetition through the event engine.

    Delays come back NaN-padded per station so retry-limited runs —
    where a dropped packet has no access delay — keep the batch shape.
    """
    scenario = WlanScenario(phy, rts_threshold=rts_threshold,
                            retry_limit=retry_limit)
    specs = saturated_station_specs(n_stations, packets_per_station,
                                    size_bytes)
    result = scenario.run(specs, horizon=1.0, seed=seed)
    delays = np.full((n_stations, packets_per_station), np.nan)
    drops = np.zeros(n_stations, dtype=np.int64)
    for k, spec in enumerate(specs):
        records = result.station(spec.name).records
        for j, record in enumerate(records):
            if record.dropped:
                drops[k] += 1
            elif record.access_delay is not None:
                delays[k, j] = record.access_delay
    return delays, result.duration, result.successes, result.collisions, \
        drops


def simulate_saturated(n_stations: int, packets_per_station: int,
                       repetitions: int, *,
                       size_bytes: int = 1500,
                       phy: Optional[PhyParams] = None,
                       seed: int = 0,
                       rts_threshold: Optional[int] = None,
                       retry_limit: Optional[int] = None,
                       backend: str = "event") -> VectorBatchResult:
    """Run a saturated batch on the selected backend.

    The event path maps per-repetition seeds over worker processes
    (honouring the ambient ``--jobs`` scope); the vector path hands
    the whole batch to the numpy kernel.  Either way the returned
    :class:`~repro.sim.vector.VectorBatchResult` has identical shape
    and statistically equivalent content.  ``rts_threshold`` protects
    frames with the RTS/CTS handshake and ``retry_limit`` caps
    per-packet transmission attempts on both backends (both are
    declared in the dispatch spec, so the capability match reflects
    them).
    """
    # Imported lazily: repro.runtime sits above the analysis layer.
    from repro.backends import BatchRequest, ScenarioSpec, dispatch
    from repro.runtime.executor import run_batch
    spec = ScenarioSpec(system="wlan", workload="saturated",
                        rts_cts=rts_threshold is not None,
                        retry_limit=retry_limit is not None)
    backend = dispatch.resolve(spec, backend).name
    event_task = functools.partial(_event_repetition, n_stations,
                                   packets_per_station, size_bytes, phy,
                                   rts_threshold, retry_limit)

    def batch_task(seeds) -> VectorBatchResult:
        """The kernel over one (possibly chunked) seed slice."""
        return simulate_saturated_batch(
            n_stations, packets_per_station, len(seeds),
            size_bytes=size_bytes, phy=phy, seeds=seeds,
            rts_threshold=rts_threshold, retry_limit=retry_limit)

    out = run_batch(BatchRequest(repetitions=repetitions, seed=seed,
                                 event_task=event_task,
                                 batch_task=batch_task, spec=spec),
                    backend=backend)
    if backend != "event":
        return out
    delays, durations, successes, collisions, drops = zip(*out)
    return VectorBatchResult(
        access_delays=np.stack(delays),
        durations=np.array(durations, dtype=float),
        successes=np.array(successes, dtype=np.int64),
        collisions=np.array(collisions, dtype=np.int64),
        n_stations=n_stations,
        packets_per_station=packets_per_station,
        size_bytes=size_bytes,
        drops=np.stack(drops) if retry_limit is not None else None,
    )


def retry_limit_study(
        retry_limits: Sequence[int] = (0, 1, 2, 4, 6),
        n_stations: int = 5,
        packets_per_station: int = 40,
        repetitions: int = 100,
        size_bytes: int = 1500,
        phy: Optional[PhyParams] = None,
        seed: int = 0,
        backend: str = "event") -> ExperimentResult:
    """Retry-capped saturated DCF: drop rates vs. the geometric model.

    A packet is abandoned once its attempt count exceeds the retry
    limit ``m``; with per-attempt collision probability ``p`` the drop
    probability is ``p^(m+1)``
    (:func:`repro.sim.delay_model.retry_drop_probability`).  The
    measured drop rate must track that geometric prediction with
    Bianchi's fixed-point ``p`` — the tolerance widens at small ``m``,
    where the cap resets stations to CW0 and makes them more
    aggressive than Bianchi's uncapped chain assumes.  Dropping
    hopeless packets early truncates the longest access delays, so the
    mean access delay of *delivered* packets grows back toward the
    uncapped value as the limit rises.
    """
    limits = [int(m) for m in retry_limits]
    if any(m < 0 for m in limits):
        raise ValueError(f"retry limits must be >= 0, got {limits}")
    bianchi = BianchiModel(phy, size_bytes)
    p_collision = bianchi.solve(n_stations).collision_probability
    drop_rate = np.zeros(len(limits))
    predicted = np.zeros(len(limits))
    throughput = np.zeros(len(limits))
    delay = np.zeros(len(limits))
    for k, m in enumerate(limits):
        batch = simulate_saturated(
            n_stations, packets_per_station, repetitions,
            size_bytes=size_bytes, phy=phy, seed=seed + 131 * k,
            retry_limit=m, backend=backend)
        drop_rate[k] = batch.drop_rate().mean()
        predicted[k] = retry_drop_probability(p_collision, m)
        throughput[k] = batch.throughput_bps().mean()
        delay[k] = batch.pooled_access_delays().mean()
    uncapped = simulate_saturated(
        n_stations, packets_per_station, repetitions,
        size_bytes=size_bytes, phy=phy, seed=seed + 977,
        backend=backend)
    uncapped_tput = uncapped.throughput_bps().mean()
    result = ExperimentResult(
        experiment="ext-retry-limit",
        title="Retry-capped saturated DCF vs. the geometric drop model",
        x_label="retry_limit",
        x=np.array(limits, dtype=float),
        series={
            "drop_rate": drop_rate,
            "predicted_drop_rate": predicted,
            "throughput_bps": throughput,
            "mean_access_delay_s": delay,
        },
        meta={
            "backend": backend,
            "n_stations": n_stations,
            "repetitions": repetitions,
            "packets_per_station": packets_per_station,
            "size_bytes": size_bytes,
            "collision_probability": float(p_collision),
            "uncapped_throughput_bps": float(uncapped_tput),
        },
    )
    result.add_check(
        "drops-shrink-with-limit",
        monotone_nondecreasing(drop_rate[::-1], slack=0.005))
    result.add_check(
        "drops-track-geometric-model",
        bool(np.all((drop_rate <= 1.7 * predicted + 0.01)
                    & (drop_rate >= 0.4 * predicted - 0.01))))
    result.add_check(
        "delay-recovers-with-limit",
        monotone_nondecreasing(delay, slack=0.05 * delay.max()))
    result.add_check(
        "throughput-near-uncapped",
        bool(np.all(np.abs(throughput - uncapped_tput)
                    <= 0.06 * uncapped_tput)))
    return result


def dcf_saturation_study(
        station_counts: Sequence[int] = (1, 2, 3, 5, 10),
        packets_per_station: int = 40,
        repetitions: int = 100,
        size_bytes: int = 1500,
        phy: Optional[PhyParams] = None,
        seed: int = 0,
        backend: str = "event") -> ExperimentResult:
    """Saturation throughput/delay/collisions vs. Bianchi, any backend.

    For each station count the whole batch of repetitions runs on the
    selected backend; the measured curves must track the Bianchi fixed
    point (the drain tail — stations leaving contention as their
    queues empty — biases the mean access delay slightly low, which
    the tolerance absorbs).
    """
    counts = [int(n) for n in station_counts]
    if any(n < 1 for n in counts):
        raise ValueError(f"station counts must be >= 1, got {counts}")
    bianchi = BianchiModel(phy, size_bytes)
    throughput = np.zeros(len(counts))
    delay = np.zeros(len(counts))
    collision_fraction = np.zeros(len(counts))
    bianchi_tput = np.zeros(len(counts))
    bianchi_delay = np.zeros(len(counts))
    for k, n in enumerate(counts):
        batch = simulate_saturated(
            n, packets_per_station, repetitions, size_bytes=size_bytes,
            phy=phy, seed=seed + 101 * k, backend=backend)
        throughput[k] = batch.throughput_bps().mean()
        delay[k] = batch.pooled_access_delays().mean()
        acquisitions = batch.successes.sum() + batch.collisions.sum()
        collision_fraction[k] = batch.collisions.sum() / acquisitions
        solution = bianchi.solve(n)
        bianchi_tput[k] = solution.total_throughput_bps
        bianchi_delay[k] = solution.mean_access_delay
    result = ExperimentResult(
        experiment="ext-saturation",
        title="Saturated DCF vs. Bianchi (backend-routed batch)",
        x_label="n_stations",
        x=np.array(counts, dtype=float),
        series={
            "throughput_bps": throughput,
            "bianchi_bps": bianchi_tput,
            "mean_access_delay_s": delay,
            "collision_fraction": collision_fraction,
        },
        meta={
            "backend": backend,
            "repetitions": repetitions,
            "packets_per_station": packets_per_station,
            "size_bytes": size_bytes,
        },
    )
    result.add_check(
        "throughput-tracks-bianchi",
        bool(np.all(np.abs(throughput - bianchi_tput) <= 0.08 * bianchi_tput)))
    result.add_check(
        "delay-tracks-bianchi",
        bool(np.all(np.abs(delay - bianchi_delay) <= 0.25 * bianchi_delay)))
    result.add_check(
        "delay-grows-with-contention",
        monotone_nondecreasing(delay))
    result.add_check(
        "collisions-grow-with-contention",
        monotone_nondecreasing(collision_fraction, slack=0.01))
    return result
