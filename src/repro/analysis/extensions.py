"""Extension experiments from the paper's discussion sections.

These are not numbered figures but claims the paper makes in prose:

* :func:`tool_convergence_study` — section 7.2: available-bandwidth
  tools (here a pathload-style iterative prober) follow the
  *achievable throughput* across cross-traffic loads, not the
  available bandwidth (the programmatic version of [25]'s figure 4);
* :func:`transient_b_vs_n` — section 6.2.1, equation (31): the
  achievable throughput of an ``n``-packet train,
  ``L/B(n) = mean(E[mu_1..n])``, decreases with ``n`` toward the
  steady-state value — short probes genuinely move data faster;
* :func:`onoff_cross_study` — section 7.3's caveat about
  non-stationary cross-traffic: against two-state on-off contenders a
  single short train samples *one* burst phase, so per-train access
  delays spread far beyond the Poisson case even at the same mean
  load.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.analytic.bianchi import BianchiModel
from repro.analytic.bounds import transient_achievable_throughput
from repro.analytic.metrics import fluid_achievable_throughput
from repro.core.tools import IterativeProbeTool
from repro.mac.params import PhyParams
from repro.testbed.channel import SimulatedWlanChannel
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import OnOffGenerator, PoissonGenerator
from repro.traffic.probe import ProbeTrain


def tool_convergence_study(cross_rates_bps: Optional[Sequence[float]] = None,
                           size_bytes: int = 1500,
                           n_packets: int = 50,
                           repetitions: int = 10,
                           phy: Optional[PhyParams] = None,
                           seed: int = 0,
                           backend: str = "event") -> ExperimentResult:
    """Where does a pathload-style tool converge on a CSMA/CA link?

    For each contending cross-traffic rate, run the iterative
    turning-point search and compare its estimate with the achievable
    throughput (fluid response) and the available bandwidth.  The
    estimate must track B and sit far from A once the two separate —
    every probing train the search sends rides the selected backend.
    """
    if cross_rates_bps is None:
        cross_rates_bps = np.arange(1e6, 5.01e6, 1e6)
    cross_rates = np.asarray(sorted(cross_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    estimates = np.zeros(len(cross_rates))
    actual_b = np.zeros(len(cross_rates))
    available = np.zeros(len(cross_rates))
    for k, cross_rate in enumerate(cross_rates):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(cross_rate, size_bytes))], phy=phy)
        prober = Prober(channel, ProbeSessionConfig(
            size_bytes=size_bytes, repetitions=repetitions,
            ideal_clocks=True, backend=backend))
        tool = IterativeProbeTool(prober, n=n_packets,
                                  repetitions=repetitions)
        result = tool.search(0.5e6, capacity * 1.3, seed=seed + 11 * k)
        estimates[k] = result.estimate_bps
        actual_b[k] = fluid_achievable_throughput(capacity, cross_rate,
                                                  fair_share)
        available[k] = max(0.0, capacity - cross_rate)
    result = ExperimentResult(
        experiment="ext-tool-convergence",
        title="Pathload-style tool vs. B and A on a CSMA/CA link",
        x_label="cross_bps",
        x=cross_rates,
        series={"tool_estimate_bps": estimates,
                "achievable_B_bps": actual_b,
                "available_A_bps": available},
        meta={
            "capacity_bps": round(capacity),
            "fair_share_bps": round(fair_share),
            "n_packets": n_packets,
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    rel_to_b = np.abs(estimates - actual_b) / actual_b
    result.add_check("tracks-achievable-throughput",
                     bool(np.all(rel_to_b <= 0.25)))
    separated = actual_b > 1.3 * available
    if np.any(separated):
        result.add_check(
            "ignores-available-bandwidth",
            bool(np.all(estimates[separated]
                        > 1.15 * available[separated])))
    return result


def topp_on_wlan_study(cross_rates_bps: Optional[Sequence[float]] = None,
                       size_bytes: int = 1500,
                       n_packets: int = 300,
                       repetitions: int = 8,
                       phy: Optional[PhyParams] = None,
                       seed: int = 0,
                       backend: str = "event") -> ExperimentResult:
    """TOPP's 'capacity' on a CSMA/CA link is the fair share.

    On a FIFO path TOPP's regression slope returns the capacity C; on a
    DCF link equation (4) makes the slope ``1/Bf``, so the tool reports
    the *fair share* as capacity — it cannot see C at all.  The
    estimate additionally inherits the short-train transient bias of
    section 6 (it sits a few percent *above* Bf, shrinking with the
    train length), so the check allows a one-sided margin.
    """
    from repro.core.topp import topp_from_prober

    if cross_rates_bps is None:
        cross_rates_bps = np.array([2e6, 3e6, 4e6, 5e6])
    cross_rates = np.asarray(sorted(cross_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    topp_capacity = np.zeros(len(cross_rates))
    topp_available = np.zeros(len(cross_rates))
    achievable = np.zeros(len(cross_rates))
    for k, cross_rate in enumerate(cross_rates):
        achievable[k] = fluid_achievable_throughput(capacity, cross_rate,
                                                    fair_share)
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(cross_rate, size_bytes))], phy=phy)
        prober = Prober(channel, ProbeSessionConfig(
            size_bytes=size_bytes, repetitions=repetitions,
            ideal_clocks=True, backend=backend))
        scan_rates = np.arange(0.6 * achievable[k], 2.6 * achievable[k],
                               0.2 * achievable[k])
        estimate = topp_from_prober(prober, scan_rates, n=n_packets,
                                    seed=seed + 13 * k)
        topp_capacity[k] = estimate.capacity_bps
        topp_available[k] = estimate.available_bps
    result = ExperimentResult(
        experiment="ext-topp",
        title="TOPP on a CSMA/CA link: 'capacity' = achievable throughput",
        x_label="cross_bps",
        x=cross_rates,
        series={
            "topp_capacity_bps": topp_capacity,
            "topp_available_bps": topp_available,
            "achievable_B_bps": achievable,
            "actual_capacity_bps": np.full(len(cross_rates), capacity),
        },
        meta={
            "capacity_bps": round(capacity),
            "fair_share_bps": round(fair_share),
            "n_packets": n_packets,
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    # One-sided margin: the transient bias only pushes the estimate up.
    result.add_check(
        "capacity-estimate-is-achievable-throughput",
        bool(np.all((topp_capacity >= 0.85 * achievable)
                    & (topp_capacity <= 1.25 * achievable))))
    saturated = cross_rates >= fair_share
    if np.any(saturated):
        result.add_check(
            "never-sees-actual-capacity",
            bool(np.all(topp_capacity[saturated] < 0.75 * capacity)))
    return result


def multihop_access_path_study(probe_rates_bps: Optional[Sequence[float]] = None,
                               backbone_bps: float = 100e6,
                               neighbour_rate_bps: float = 4e6,
                               size_bytes: int = 1500,
                               n_packets: int = 50,
                               repetitions: int = 20,
                               phy: Optional[PhyParams] = None,
                               seed: int = 0,
                               backend: str = "event") -> ExperimentResult:
    """End-to-end probing of a wired-backbone + WLAN-last-mile path.

    The broadband-access setting of the paper's reference [3]: a fast
    wired hop followed by a contended DCF hop.  The end-to-end rate
    response must show the *wireless hop's* signature — knee at its
    achievable throughput — and the end-to-end packet pair must report
    neither hop's capacity.  The ``vector`` backend chains the hops'
    batched kernels (each hop's departure matrix feeds the next hop).
    """
    from repro.core.estimators import packet_pair_capacity
    from repro.path import (NetworkPath, SimulatedPathChannel, WiredHop,
                            WlanHop)

    if probe_rates_bps is None:
        probe_rates_bps = np.arange(1e6, 6.01e6, 0.5e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    path = NetworkPath([
        WiredHop(backbone_bps, prop_delay=1e-3),
        WlanHop([("neighbour",
                  PoissonGenerator(neighbour_rate_bps, size_bytes))],
                phy=phy),
    ])
    prober = Prober(SimulatedPathChannel(path),
                    ProbeSessionConfig(size_bytes=size_bytes,
                                       repetitions=repetitions,
                                       ideal_clocks=True,
                                       backend=backend))
    curve = prober.rate_scan(rates, n=n_packets, seed=seed)
    pair_estimate = packet_pair_capacity(
        prober.measure_pairs(repetitions=max(repetitions * 5, 100),
                             seed=seed + 1))
    result = ExperimentResult(
        experiment="ext-multihop",
        title="End-to-end rate response, wired backbone + WLAN last mile",
        x_label="ri_bps",
        x=rates,
        series={
            "path_L_over_Ego_bps": curve.output_rates,
            "wlan_B_line_bps": np.full(len(rates), fair_share),
        },
        meta={
            "backbone_bps": backbone_bps,
            "neighbour_rate_bps": neighbour_rate_bps,
            "wlan_capacity_bps": round(capacity),
            "fair_share_bps": round(fair_share),
            "pair_estimate_bps": round(pair_estimate),
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    low = rates <= 0.7 * fair_share
    if np.any(low):
        result.add_check(
            "diagonal-at-low-rates",
            bool(np.all(np.abs(curve.output_rates[low] - rates[low])
                        <= 0.1 * rates[low] + 5e4)))
    knee = curve.knee_rate(tolerance=0.08)
    result.add_check("knee-near-wireless-B",
                     0.5 * fair_share <= knee <= 1.6 * fair_share)
    result.add_check("pair-far-below-backbone",
                     pair_estimate < 0.2 * backbone_bps)
    result.add_check("pair-below-wlan-capacity",
                     pair_estimate < 0.97 * capacity)
    return result


def transient_b_vs_n(train_lengths: Optional[Sequence[int]] = None,
                     probe_rate_bps: float = 8e6,
                     cross_rate_bps: float = 4e6,
                     repetitions: int = 300,
                     size_bytes: int = 1500,
                     phy: Optional[PhyParams] = None,
                     seed: int = 0,
                     backend: str = "event") -> ExperimentResult:
    """Equation (31): achievable throughput of an n-packet train.

    One delay matrix at a high probing rate yields every B(n):
    ``L/B(n) = (1/n) sum_{i<=n} E[mu_i]``.  B(n) decreases with n and
    approaches the steady-state value of equation (32).
    """
    if train_lengths is None:
        train_lengths = (2, 3, 5, 10, 20, 50, 100, 200)
    lengths = sorted(set(int(n) for n in train_lengths))
    if lengths[0] < 2:
        raise ValueError("train lengths must be >= 2")
    n_max = lengths[-1]
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))], phy=phy)
    train = ProbeTrain.at_rate(n_max, probe_rate_bps, size_bytes)
    batch = channel.send_trains_dense(train, repetitions, seed=seed,
                                      backend=backend)
    mu_means = batch.access_delays.mean(axis=0)
    b_of_n = np.array([
        transient_achievable_throughput(size_bytes, mu_means[:n])
        for n in lengths
    ])
    steady_mu = float(mu_means[n_max // 2:].mean())
    steady_b = size_bytes * 8 / steady_mu
    result = ExperimentResult(
        experiment="ext-b-vs-n",
        title="Achievable throughput of an n-packet train (eq. 31)",
        x_label="n_packets",
        x=np.array(lengths, dtype=float),
        series={"B_n_bps": b_of_n,
                "steady_B_bps": np.full(len(lengths), steady_b)},
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "steady_mu_s": steady_mu,
            "backend": backend,
        },
    )
    result.add_check("decreasing-in-n",
                     bool(np.all(np.diff(b_of_n) <= b_of_n[:-1] * 0.02)))
    result.add_check("short-trains-exceed-steady",
                     b_of_n[0] > 1.1 * steady_b)
    result.add_check(
        "converges-to-steady",
        abs(b_of_n[-1] - steady_b) <= 0.1 * steady_b)
    return result


def onoff_cross_study(burst_scales: Optional[Sequence[float]] = None,
                      probe_rate_bps: float = 4e6,
                      peak_rate_bps: float = 6e6,
                      duty_cycle: float = 0.5,
                      n_probe: int = 20,
                      repetitions: int = 150,
                      size_bytes: int = 1500,
                      phy: Optional[PhyParams] = None,
                      seed: int = 0,
                      backend: str = "event") -> ExperimentResult:
    """Probe trains against two-state on-off cross-traffic.

    Every point offers the *same* mean cross load
    (``duty_cycle * peak_rate_bps``); only the burst time scale
    changes (``mean_on = mean_off = scale`` at duty cycle one half).
    A short train rides inside a single burst phase — an OFF train
    flies nearly unimpeded while an ON train contends against the
    full peak rate — so the per-train mean access delay spreads far
    beyond the Poisson reference at the same mean rate, and the
    spread grows with the burst length.  This is the regime where a
    single-train estimate misleads and only the distribution over
    repetitions is meaningful (the reason the equivalence tests for
    this scenario compare per-repetition statistics, not pooled
    samples).
    """
    if burst_scales is None:
        burst_scales = (0.0125, 0.025, 0.05, 0.1)
    scales = np.asarray(sorted(float(s) for s in burst_scales))
    if np.any(scales <= 0):
        raise ValueError(f"burst scales must be positive, got {scales}")
    if not 0 < duty_cycle < 1:
        raise ValueError(f"duty cycle must be in (0, 1), got {duty_cycle}")
    mean_rate = duty_cycle * peak_rate_bps
    train = ProbeTrain.at_rate(n_probe, probe_rate_bps, size_bytes)

    reference = SimulatedWlanChannel(
        [("cross", PoissonGenerator(mean_rate, size_bytes))], phy=phy,
        warmup=0.1)
    ref_batch = reference.send_trains_dense(train, repetitions, seed=seed,
                                            backend=backend)
    ref_means = ref_batch.access_delays.mean(axis=1)

    mean_delay = np.zeros(len(scales))
    rep_spread = np.zeros(len(scales))
    rep_q90 = np.zeros(len(scales))
    for k, scale in enumerate(scales):
        mean_off = scale * (1 - duty_cycle) / duty_cycle
        generator = OnOffGenerator(peak_rate_bps, mean_on=scale,
                                   mean_off=mean_off,
                                   size_bytes=size_bytes)
        channel = SimulatedWlanChannel([("cross", generator)], phy=phy,
                                       warmup=0.1)
        batch = channel.send_trains_dense(train, repetitions,
                                          seed=seed + 173 * k,
                                          backend=backend)
        means = batch.access_delays.mean(axis=1)
        mean_delay[k] = means.mean()
        rep_spread[k] = means.std()
        rep_q90[k] = np.quantile(means, 0.9)
    result = ExperimentResult(
        experiment="ext-onoff",
        title="Probe trains vs. on-off cross-traffic burst time scale",
        x_label="burst_scale_s",
        x=scales,
        series={
            "mean_access_delay_s": mean_delay,
            "rep_mean_std_s": rep_spread,
            "rep_mean_q90_s": rep_q90,
            "poisson_mean_s": np.full(len(scales), ref_means.mean()),
            "poisson_rep_std_s": np.full(len(scales), ref_means.std()),
        },
        meta={
            "backend": backend,
            "repetitions": repetitions,
            "peak_rate_bps": peak_rate_bps,
            "mean_rate_bps": mean_rate,
            "duty_cycle": duty_cycle,
            "probe_rate_bps": probe_rate_bps,
            "n_probe": n_probe,
            "size_bytes": size_bytes,
        },
    )
    result.add_check(
        "burstiness-inflates-train-spread",
        bool(np.all(np.diff(rep_spread) >= -0.25 * rep_spread.max())))
    result.add_check(
        "bursty-spread-exceeds-poisson",
        bool(rep_spread.max() >= 1.1 * ref_means.std()
             and rep_spread.mean() >= ref_means.std()))
    result.add_check(
        "mean-load-comparable-to-poisson",
        bool(np.all(np.abs(mean_delay - ref_means.mean())
                    <= 0.4 * ref_means.mean())))
    return result
