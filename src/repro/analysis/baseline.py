"""Baseline and framework-validation experiments.

* :func:`eq1_fifo_rate_response` — reproduces the wired FIFO
  rate-response model (equation (1)) on the Lindley-based hop, the
  reference against which the paper contrasts the CSMA/CA behaviour;
* :func:`bounds_consistency` — exercises the analytical framework of
  sections 5-6 on simulated sample paths: equation (18) must
  reconstruct the measured output gap exactly, and the measured
  ``E[g_O]`` must fall inside the bounds of equations (29)-(30).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.analytic.bounds import output_gap_bounds_strict
from repro.analytic.rate_response import fifo_rate_response
from repro.core.dispersion import output_gaps_batch
from repro.mac.params import PhyParams
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain


def eq1_fifo_rate_response(probe_rates_bps: Optional[Sequence[float]] = None,
                           capacity_bps: float = 10e6,
                           cross_rate_bps: float = 4e6,
                           n_packets: int = 400,
                           size_bytes: int = 1500,
                           repetitions: int = 30,
                           seed: int = 0,
                           backend: str = "event") -> ExperimentResult:
    """Equation (1) on a wired FIFO hop with Poisson cross-traffic.

    Long trains through the Lindley hop must match
    ``ro = min(ri, C ri / (ri + C - A))`` with ``A = C - cross``.  The
    ``vector`` backend replays the same sample paths through the
    batched Lindley kernel instead of the per-packet hop loop.
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.arange(1e6, 12.01e6, 1e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    available = capacity_bps - cross_rate_bps
    channel = SimulatedFifoChannel(
        capacity_bps,
        cross_generator=PoissonGenerator(cross_rate_bps, size_bytes),
        drain_rate_floor=min(2e6, capacity_bps / 4))
    measured = np.zeros(len(rates))
    for k, rate in enumerate(rates):
        train = ProbeTrain.at_rate(n_packets, rate, size_bytes)
        batch = channel.send_trains_dense(train, repetitions,
                                          seed=seed + 13 * k,
                                          backend=backend)
        measured[k] = size_bytes * 8 / float(np.mean(batch.output_gaps))
    model = fifo_rate_response(rates, capacity_bps, available)
    result = ExperimentResult(
        experiment="eq1",
        title="FIFO rate response (wired baseline, equation (1))",
        x_label="ri_bps",
        x=rates,
        series={"model_eq1_bps": model, "measured_bps": measured},
        meta={
            "capacity_bps": capacity_bps,
            "available_bps": available,
            "n_packets": n_packets,
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    rel_err = np.abs(measured - model) / model
    result.add_check("matches-eq1-within-10pct",
                     bool(np.all(rel_err <= 0.10)))
    result.add_check(
        "knee-at-available-bandwidth",
        bool(np.all(np.abs(measured[rates <= 0.9 * available]
                           - rates[rates <= 0.9 * available])
                    <= 0.05 * rates[rates <= 0.9 * available] + 1e4)))
    return result


def bounds_consistency(probe_rates_bps: Optional[Sequence[float]] = None,
                       cross_rate_bps: float = 3e6,
                       n_packets: int = 10,
                       size_bytes: int = 1500,
                       repetitions: int = 200,
                       phy: Optional[PhyParams] = None,
                       slack_fraction: float = 0.05,
                       seed: int = 0,
                       backend: str = "event") -> ExperimentResult:
    """Check E[g_O] against the transient bounds (eqs. 29-30).

    For each probing rate: measure the per-index mean access delays
    E[mu_i] and the mean output gap on the DCF simulator, evaluate the
    bounds from the measured E[mu_i] profile, and verify the measured
    gap lies between them (with a small statistical slack).  The
    ``vector`` backend reads both statistics off the kernel's dense
    batch arrays.
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.array([1e6, 2e6, 3e6, 4e6, 6e6, 8e6])
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))], phy=phy)
    lower = np.zeros(len(rates))
    upper = np.zeros(len(rates))
    measured = np.zeros(len(rates))
    for k, rate in enumerate(rates):
        train = ProbeTrain.at_rate(n_packets, rate, size_bytes)
        batch = channel.send_trains_dense(train, repetitions,
                                          seed=seed + 37 * k,
                                          backend=backend)
        mu_means = batch.access_delays.mean(axis=0)
        measured[k] = float(output_gaps_batch(batch.recv_times).mean())
        bounds = output_gap_bounds_strict(train.gap, mu_means)
        lower[k] = bounds.lower
        upper[k] = bounds.upper
    result = ExperimentResult(
        experiment="bounds",
        title="Measured E[gO] vs. strict transient bounds (eqs. 21+23)",
        x_label="ri_bps",
        x=rates,
        series={"lower_s": lower, "measured_s": measured, "upper_s": upper},
        meta={
            "cross_rate_bps": cross_rate_bps,
            "n_packets": n_packets,
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    slack = slack_fraction * measured
    result.add_check(
        "within-bounds",
        bool(np.all((measured >= lower - slack)
                    & (measured <= upper + slack))))
    result.add_check("bounds-ordered", bool(np.all(lower <= upper + 1e-12)))
    return result
