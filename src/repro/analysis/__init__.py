"""Experiment runners — one per figure of the paper.

Every runner returns an :class:`repro.analysis.results.ExperimentResult`
carrying the x-axis, the named series the paper plots, shape checks and
metadata; the benchmark harness prints the table and asserts the
checks.  Parameters default to scaled-down-but-faithful values (the
paper used 25k–70k repetitions on a cluster; see EXPERIMENTS.md).

=====  ============================================================
Fig.   Runner
=====  ============================================================
1      :func:`repro.analysis.steady_state.fig1_rate_response`
4      :func:`repro.analysis.steady_state.fig4_complete_picture`
6      :func:`repro.analysis.transient.fig6_mean_access_delay`
7      :func:`repro.analysis.transient.fig7_delay_histograms`
8      :func:`repro.analysis.transient.fig8_ks_and_queue`
9      :func:`repro.analysis.transient.fig9_ks_complex`
10     :func:`repro.analysis.transient.fig10_transient_duration`
13     :func:`repro.analysis.trains.fig13_short_trains`
15     :func:`repro.analysis.trains.fig15_short_trains_fifo`
16     :func:`repro.analysis.trains.fig16_packet_pair`
17     :func:`repro.analysis.trains.fig17_mser`
eq(1)  :func:`repro.analysis.baseline.eq1_fifo_rate_response`
=====  ============================================================

The bounds framework is validated by
:func:`repro.analysis.baseline.bounds_consistency`.  Design-choice
ablations live in :mod:`repro.analysis.ablations` (Bianchi calibration,
immediate-access rule, KS variants, RTS/CTS, truncation heuristics);
the paper's prose claims (section 7.2 tool convergence, equation (31)
B(n), the multi-hop access-path setting) are made measurable in
:mod:`repro.analysis.extensions`; :mod:`repro.analysis.saturation`
holds the dual-backend (event/vector) saturated-BSS study.

Runners are plain functions; scheduling concerns (repetition scaling,
worker-process sharding, result caching) live one layer up in
:mod:`repro.runtime`, whose registry is how the CLI and the benchmark
harness invoke everything here.
"""

from repro.analysis.results import ExperimentResult
from repro.analysis.steady_state import (
    fig1_rate_response,
    fig4_complete_picture,
    steady_state_throughputs,
)
from repro.analysis.transient import (
    collect_delay_matrix,
    fig6_mean_access_delay,
    fig7_delay_histograms,
    fig8_ks_and_queue,
    fig9_ks_complex,
    fig10_transient_duration,
)
from repro.analysis.trains import (
    fig13_short_trains,
    fig15_short_trains_fifo,
    fig16_packet_pair,
    fig17_mser,
)
from repro.analysis.baseline import (
    bounds_consistency,
    eq1_fifo_rate_response,
)
from repro.analysis.ablations import (
    ablation_bianchi_calibration,
    ablation_immediate_access,
    ablation_ks_methods,
    ablation_rts_cts,
    ablation_truncation_heuristics,
)
from repro.analysis.extensions import (
    multihop_access_path_study,
    onoff_cross_study,
    tool_convergence_study,
    topp_on_wlan_study,
    transient_b_vs_n,
)
from repro.analysis.saturation import (
    dcf_saturation_study,
    retry_limit_study,
    simulate_saturated,
)

__all__ = [
    "ExperimentResult",
    "ablation_bianchi_calibration",
    "ablation_immediate_access",
    "ablation_ks_methods",
    "ablation_rts_cts",
    "ablation_truncation_heuristics",
    "multihop_access_path_study",
    "onoff_cross_study",
    "retry_limit_study",
    "tool_convergence_study",
    "topp_on_wlan_study",
    "transient_b_vs_n",
    "bounds_consistency",
    "collect_delay_matrix",
    "dcf_saturation_study",
    "eq1_fifo_rate_response",
    "fig10_transient_duration",
    "fig13_short_trains",
    "fig15_short_trains_fifo",
    "fig16_packet_pair",
    "fig17_mser",
    "fig1_rate_response",
    "fig4_complete_picture",
    "fig6_mean_access_delay",
    "fig7_delay_histograms",
    "fig8_ks_and_queue",
    "fig9_ks_complex",
    "simulate_saturated",
    "steady_state_throughputs",
]
