"""Transient-state experiments (figures 6-10).

All runners share :func:`collect_delay_matrix`: repeat a probing train
over independent repetitions of the channel and collect the per-packet
access delays into a :class:`repro.core.transient.DelayMatrix` (plus,
optionally, the contending stations' queue sizes sampled at the probe
arrival instants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.analytic.bianchi import BianchiModel
from repro.core.transient import (
    DelayMatrix,
    ks_profile,
    transient_duration,
)
from repro.mac.params import PhyParams
from repro.stats.descriptive import histogram
from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain


@dataclass
class DelayCollection:
    """Delay matrix plus companion traces from repeated probing."""

    matrix: DelayMatrix
    queue_sizes: Dict[str, np.ndarray]  # station -> (reps, n) backlogs

    def mean_queue_profile(self, station: str) -> np.ndarray:
        """Mean contending-queue size per probe packet index."""
        return self.queue_sizes[station].mean(axis=0)


def collect_delay_matrix(
        probe_rate_bps: float,
        cross_stations: Sequence[Tuple[str, object]],
        n_packets: int = 200,
        repetitions: int = 200,
        size_bytes: int = 1500,
        phy: Optional[PhyParams] = None,
        warmup: float = 0.25,
        drain_rate_floor: float = 1.5e6,
        seed: int = 0,
        track_queues: bool = False,
        backend: str = "event") -> DelayCollection:
    """Probe repeatedly and collect per-index access delays.

    Each repetition redraws the cross-traffic, warms the system up for
    ``warmup`` seconds and then injects one ``n_packets`` train at
    ``probe_rate_bps``; the access delay of the i-th packet across
    repetitions estimates the paper's per-index distribution.

    The repetition batch is routed through
    :meth:`repro.testbed.channel.Channel.send_trains_dense`, so the
    delay matrix comes back in the same dense shape on every backend
    (``vector`` resolves it in one :mod:`repro.sim.probe_vector` pass,
    ``auto`` lets the dispatcher choose).  Queue tracking works on
    both backends: the event path samples the scenario traces, the
    vector path counts the kernel's arrival/departure sample paths
    (:class:`repro.sim.probe_vector.QueueTraceBatch`) — statistically
    equivalent backlog-at-send-time matrices either way.
    """
    channel = SimulatedWlanChannel(
        cross_stations, phy=phy, warmup=warmup,
        drain_rate_floor=drain_rate_floor,
        log_cross_queues=track_queues)
    train = ProbeTrain.at_rate(n_packets, probe_rate_bps, size_bytes)
    if track_queues:
        resolved = backend
        if backend == "auto":
            resolved = channel.resolve_backend("auto", train=train).name
        if resolved in ("vector", "jit"):
            from repro.sim.jit import tier_scope, warm_kernels
            if resolved == "jit":
                channel.resolve_backend("jit", train=train)
                warm_kernels()
            with tier_scope(resolved):
                batch = channel.send_trains_batch(train, repetitions,
                                                  seed=seed)
            queue_sizes = {
                name: batch.queue_traces[k].size_at(batch.send_times)
                for k, (name, _) in enumerate(cross_stations)}
            return DelayCollection(matrix=DelayMatrix(batch.delay_matrix()),
                                   queue_sizes=queue_sizes)
        raws = channel.send_trains(train, repetitions, seed=seed,
                                   backend=resolved)
        delays = np.vstack([raw.access_delays for raw in raws])
        queue_sizes: Dict[str, np.ndarray] = {}
        for name, _ in cross_stations:
            per_rep = [raw.scenario.station(name).queue_size_at(raw.send_times)
                       for raw in raws]
            queue_sizes[name] = np.vstack(per_rep)
        return DelayCollection(matrix=DelayMatrix(delays),
                               queue_sizes=queue_sizes)
    batch = channel.send_trains_dense(train, repetitions, seed=seed,
                                      backend=backend)
    return DelayCollection(matrix=DelayMatrix(batch.delay_matrix()),
                           queue_sizes={})


# ----------------------------------------------------------------------
# Figure 6 — mean access delay vs. probe packet index
# ----------------------------------------------------------------------

def fig6_mean_access_delay(probe_rate_bps: float = 5e6,
                           cross_rate_bps: float = 4e6,
                           n_packets: int = 250,
                           repetitions: int = 300,
                           plot_limit: int = 150,
                           size_bytes: int = 1500,
                           phy: Optional[PhyParams] = None,
                           seed: int = 0,
                           backend: str = "event") -> ExperimentResult:
    """Figure 6: the first packets see a lower mean access delay.

    Paper setting: 5 Mb/s probe train, 4 Mb/s Poisson contending
    cross-traffic; the mean access delay climbs from the first packet's
    value to a steady plateau within a few tens of packets.
    """
    collection = collect_delay_matrix(
        probe_rate_bps,
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))],
        n_packets=n_packets, repetitions=repetitions,
        size_bytes=size_bytes, phy=phy, seed=seed, backend=backend)
    matrix = collection.matrix
    profile = matrix.mean_profile()
    limit = min(plot_limit, n_packets)
    steady = matrix.steady_state_mean()
    result = ExperimentResult(
        experiment="fig6",
        title="Mean access delay vs. probe packet number",
        x_label="packet_idx",
        x=np.arange(1, limit + 1),
        series={"mean_access_delay_s": profile[:limit]},
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "n_packets": n_packets,
            "steady_state_mean_s": float(steady),
            "backend": backend,
        },
    )
    result.add_check("first-packet-accelerated", profile[0] < 0.9 * steady)
    result.add_check(
        "early-mean-below-steady", profile[:5].mean() < 0.95 * steady)
    tail = profile[limit // 2: limit]
    result.add_check(
        "settles-near-steady",
        abs(tail.mean() - steady) <= 0.1 * steady)
    return result


# ----------------------------------------------------------------------
# Figure 7 — access-delay histograms, first vs. steady-state packet
# ----------------------------------------------------------------------

def fig7_delay_histograms(probe_rate_bps: float = 5e6,
                          cross_rate_bps: float = 4e6,
                          n_packets: int = 250,
                          repetitions: int = 400,
                          steady_index: Optional[int] = None,
                          bins: int = 40,
                          size_bytes: int = 1500,
                          phy: Optional[PhyParams] = None,
                          seed: int = 0,
                          backend: str = "event") -> ExperimentResult:
    """Figure 7: delay distribution of the 1st vs. a steady-state packet.

    The paper contrasts the 1st and the 500th packet of 1000-packet
    trains; here the steady packet defaults to the last train index.
    The first packet's distribution is concentrated at small delays,
    the steady one is shifted right with a heavier tail.
    """
    collection = collect_delay_matrix(
        probe_rate_bps,
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))],
        n_packets=n_packets, repetitions=repetitions,
        size_bytes=size_bytes, phy=phy, seed=seed, backend=backend)
    matrix = collection.matrix
    if steady_index is None:
        steady_index = n_packets - 1
    first = matrix.index_sample(0)
    steady = matrix.index_sample(steady_index)
    lo = float(min(first.min(), steady.min()))
    hi = float(max(first.max(), steady.max()))
    first_counts, edges = histogram(first, bins=bins, range_=(lo, hi))
    steady_counts, _ = histogram(steady, bins=bins, range_=(lo, hi))
    centers = (edges[:-1] + edges[1:]) / 2
    result = ExperimentResult(
        experiment="fig7",
        title="Access-delay histograms: 1st vs. steady-state packet",
        x_label="delay_s",
        x=centers,
        series={"count_first": first_counts.astype(float),
                "count_steady": steady_counts.astype(float)},
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "steady_index": steady_index + 1,
            "mean_first_s": float(first.mean()),
            "mean_steady_s": float(steady.mean()),
            "backend": backend,
        },
    )
    result.add_check("first-mean-smaller", first.mean() < steady.mean())
    result.add_check(
        "distributions-differ",
        abs(first.mean() - steady.mean()) > 0.05 * steady.mean())
    return result


# ----------------------------------------------------------------------
# Figure 8 — KS profile and contending-queue build-up
# ----------------------------------------------------------------------

def fig8_ks_and_queue(probe_rate_bps: float = 8e6,
                      cross_rate_bps: float = 2e6,
                      n_packets: int = 250,
                      repetitions: int = 300,
                      plot_limit: int = 100,
                      size_bytes: int = 1500,
                      phy: Optional[PhyParams] = None,
                      alpha: float = 0.05,
                      seed: int = 0,
                      backend: str = "event") -> ExperimentResult:
    """Figure 8: KS-vs-steady-state and the contending queue's growth.

    Paper setting: 8 Mb/s probe, 2 Mb/s contending cross-traffic.  The
    KS distance starts far above the 95% threshold and settles within
    tens of packets, tracking the time the contending station's queue
    needs to reach its (new) stationary size.  Both the delay matrix
    and the queue trace come back from either backend (the kernel
    emits queue traces since it learned ``track_queues``).
    """
    collection = collect_delay_matrix(
        probe_rate_bps,
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))],
        n_packets=n_packets, repetitions=repetitions,
        size_bytes=size_bytes, phy=phy, seed=seed, track_queues=True,
        backend=backend)
    matrix = collection.matrix
    profile = ks_profile(matrix, alpha=alpha, max_index=plot_limit)
    queue_profile = collection.mean_queue_profile("cross")[:plot_limit]
    limit = len(profile.ks_values)
    result = ExperimentResult(
        experiment="fig8",
        title="KS test vs. packet index + contending queue size",
        x_label="packet_idx",
        x=np.arange(1, limit + 1),
        series={
            "ks_value": profile.ks_values,
            "ks_threshold": np.full(limit, profile.threshold),
            "mean_queue_pkts": queue_profile[:limit],
        },
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "alpha": alpha,
            "settled_index": profile.settled_index + 1,
            "backend": backend,
        },
    )
    result.add_check(
        "initial-ks-above-threshold",
        profile.ks_values[0] > profile.threshold)
    result.add_check("ks-settles", profile.settled_index < limit)
    result.add_check(
        "queue-grows",
        queue_profile[-10:].mean() > queue_profile[0] * 1.1 + 0.05)
    return result


# ----------------------------------------------------------------------
# Figure 9 — KS profile in a complex multi-station scenario
# ----------------------------------------------------------------------

def fig9_ks_complex(probe_rate_bps: float = 0.5e6,
                    n_packets: int = 60,
                    repetitions: int = 400,
                    plot_limit: int = 50,
                    size_bytes: int = 1500,
                    phy: Optional[PhyParams] = None,
                    alpha: float = 0.05,
                    seed: int = 0,
                    backend: str = "event") -> ExperimentResult:
    """Figure 9: four heterogeneous contending stations.

    Paper setting: probe at 0.5 Mb/s against stations sending 40, 576,
    1000 and 1500-byte packets at 0.1, 0.5, 0.75 and 2 Mb/s.  The KS
    profile again shows a transitory of tens of packets.
    """
    cross = [
        ("cross-40B", PoissonGenerator(0.1e6, 40)),
        ("cross-576B", PoissonGenerator(0.5e6, 576)),
        ("cross-1000B", PoissonGenerator(0.75e6, 1000)),
        ("cross-1500B", PoissonGenerator(2.0e6, 1500)),
    ]
    collection = collect_delay_matrix(
        probe_rate_bps, cross, n_packets=n_packets,
        repetitions=repetitions, size_bytes=size_bytes, phy=phy,
        seed=seed, drain_rate_floor=0.4e6, backend=backend)
    matrix = collection.matrix
    profile = ks_profile(matrix, alpha=alpha, max_index=plot_limit)
    delay_profile = matrix.mean_profile()
    steady = matrix.steady_state_mean()
    limit = len(profile.ks_values)
    result = ExperimentResult(
        experiment="fig9",
        title="KS test vs. packet index, 4 heterogeneous contenders",
        x_label="packet_idx",
        x=np.arange(1, limit + 1),
        series={
            "ks_value": profile.ks_values,
            "ks_threshold": np.full(limit, profile.threshold),
        },
        meta={
            "probe_rate_bps": probe_rate_bps,
            "repetitions": repetitions,
            "alpha": alpha,
            "settled_index": profile.settled_index + 1,
            "first_packet_mean_s": float(delay_profile[0]),
            "steady_state_mean_s": float(steady),
            "backend": backend,
        },
    )
    # The transitory is milder than figure 8's (the probe offers only
    # 0.5 Mb/s), so the checks compare against the profile's own tail
    # rather than the absolute threshold, which depends on sample size.
    result.add_check(
        "first-packet-accelerated", delay_profile[0] < 0.95 * steady)
    tail_ks = float(np.median(profile.ks_values[limit // 2:]))
    result.add_check(
        "ks-elevated-early",
        float(np.max(profile.ks_values[:5])) > 1.15 * tail_ks)
    result.add_check(
        "ks-settles",
        float(np.mean(profile.ks_values[-10:])) <= 1.5 * profile.threshold)
    return result


# ----------------------------------------------------------------------
# Figure 10 — transient duration vs. offered cross-traffic load
# ----------------------------------------------------------------------

def fig10_transient_duration(cross_loads_erlang: Optional[Sequence[float]] = None,
                             probe_load_erlang: float = 1.0,
                             tolerances: Tuple[float, float] = (0.1, 0.01),
                             n_packets: int = 300,
                             repetitions: int = 300,
                             size_bytes: int = 1500,
                             phy: Optional[PhyParams] = None,
                             seed: int = 0,
                             backend: str = "event") -> ExperimentResult:
    """Figure 10: transient length across offered cross-traffic loads.

    Loads are expressed in Erlangs of the single-station capacity C
    (offered rate / C).  The probe offers ``probe_load_erlang`` (the
    paper fixes 1 Erlang); for each cross load the transient length is
    the first packet whose mean access delay falls within each
    tolerance of the steady-state mean (the paper's first-hit rule).
    The transitory peaks when the cross-traffic load crosses its fair
    share, and the 0.01-tolerance curve dominates the 0.1 one.
    """
    bianchi = BianchiModel(phy, size_bytes)
    capacity = bianchi.capacity()
    if cross_loads_erlang is None:
        cross_loads_erlang = np.arange(0.1, 1.01, 0.1)
    loads = np.asarray(sorted(cross_loads_erlang), dtype=float)
    if np.any(loads <= 0) or np.any(loads > 1.5):
        raise ValueError("cross loads should be in (0, 1.5] Erlang")
    probe_rate = probe_load_erlang * capacity
    durations = {tol: np.zeros(len(loads)) for tol in tolerances}
    for k, load in enumerate(loads):
        collection = collect_delay_matrix(
            probe_rate,
            [("cross", PoissonGenerator(load * capacity, size_bytes))],
            n_packets=n_packets, repetitions=repetitions,
            size_bytes=size_bytes, phy=phy, seed=seed + 17 * k,
            backend=backend)
        profile = collection.matrix.mean_profile()
        steady = collection.matrix.steady_state_mean()
        for tol in tolerances:
            durations[tol][k] = transient_duration(
                profile, tolerance=tol, steady_mean=steady,
                sustained=False).n_packets
    series = {f"transient_tol_{tol}": durations[tol] for tol in tolerances}
    result = ExperimentResult(
        experiment="fig10",
        title="Transient duration vs. offered cross-traffic load",
        x_label="cross_erlang",
        x=loads,
        series=series,
        meta={
            "probe_load_erlang": probe_load_erlang,
            "capacity_bps": round(capacity),
            "n_packets": n_packets,
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    tight, loose = min(tolerances), max(tolerances)
    result.add_check(
        "tighter-tolerance-longer",
        bool(np.all(durations[tight] >= durations[loose])))
    result.add_check(
        "bounded-by-150-at-0.1",
        bool(np.all(durations[max(tolerances)] <= 150)))
    return result
