"""Short-train experiments (figures 13, 15, 16 and 17).

These reproduce the measurement-bias results: rate-response curves
inferred from trains of 3/10/50 packets deviate from the steady-state
curve (below it near the achievable throughput, above it at high
probing rates); packet pairs overestimate the achievable throughput;
MSER-2 truncation pulls short-train curves back toward steady state.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.analytic.bianchi import BianchiModel
from repro.analytic.metrics import fluid_achievable_throughput
from repro.analytic.rate_response import complete_rate_response
from repro.core.correction import mser_corrected_rate
from repro.core.estimators import packet_pair_capacity, train_dispersion_rate
from repro.mac.params import PhyParams
from repro.testbed.channel import SimulatedWlanChannel
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import PoissonGenerator


def _wlan_prober(cross_rate_bps: float, size_bytes: int,
                 phy: Optional[PhyParams],
                 fifo_rate_bps: float = 0.0,
                 repetitions: int = 60,
                 drain_rate_floor: float = 1.5e6,
                 backend: str = "event") -> Prober:
    cross = [("cross", PoissonGenerator(cross_rate_bps, size_bytes))] \
        if cross_rate_bps > 0 else []
    fifo = (PoissonGenerator(fifo_rate_bps, size_bytes, flow="fifo")
            if fifo_rate_bps > 0 else None)
    channel = SimulatedWlanChannel(cross, fifo_cross=fifo, phy=phy,
                                   drain_rate_floor=drain_rate_floor)
    return Prober(channel, ProbeSessionConfig(size_bytes=size_bytes,
                                              repetitions=repetitions,
                                              ideal_clocks=True,
                                              backend=backend))


def _steady_series(rates: np.ndarray, fair_share: float,
                   u_fifo: float) -> np.ndarray:
    return complete_rate_response(rates, fair_share, u_fifo)


def _short_train_curves(rates: np.ndarray,
                        train_lengths: Sequence[int],
                        cross_rate_bps: float,
                        fifo_rate_bps: float,
                        size_bytes: int,
                        repetitions: int,
                        phy: Optional[PhyParams],
                        seed: int,
                        backend: str = "event") -> Dict[int, np.ndarray]:
    prober = _wlan_prober(cross_rate_bps, size_bytes, phy,
                          fifo_rate_bps=fifo_rate_bps,
                          repetitions=repetitions,
                          backend=backend)
    curves: Dict[int, np.ndarray] = {}
    for n in train_lengths:
        outputs = np.zeros(len(rates))
        for k, rate in enumerate(rates):
            outputs[k] = prober.dispersion_rate(
                n, rate, seed=seed + 101 * n + k)
        curves[n] = outputs
    return curves


def fig13_short_trains(probe_rates_bps: Optional[Sequence[float]] = None,
                       train_lengths: Sequence[int] = (3, 10, 50),
                       cross_rate_bps: float = 3e6,
                       size_bytes: int = 1500,
                       repetitions: int = 60,
                       phy: Optional[PhyParams] = None,
                       seed: int = 0,
                       backend: str = "event") -> ExperimentResult:
    """Figure 13: transient rate-response curves, no FIFO cross-traffic.

    Short trains follow the steady-state curve at low rates, then: (a)
    they dip *below* it before the achievable throughput (the knee
    moves right), and (b) at high probing rates L/E[g_O] *exceeds* the
    steady-state plateau, the more so the shorter the train.
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.arange(1e6, 10.01e6, 1e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    fair_share = bianchi.fair_share(2)
    curves = _short_train_curves(rates, train_lengths, cross_rate_bps,
                                 0.0, size_bytes, repetitions, phy, seed,
                                 backend=backend)
    steady = _steady_series(rates, fair_share, 0.0)
    series = {"steady_state_bps": steady}
    for n in train_lengths:
        series[f"train_{n}_bps"] = curves[n]
    result = ExperimentResult(
        experiment="fig13",
        title="Rate response from short trains (no FIFO cross-traffic)",
        x_label="ri_bps",
        x=rates,
        series=series,
        meta={
            "cross_rate_bps": cross_rate_bps,
            "fair_share_bps": round(fair_share),
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    high = rates >= 1.5 * fair_share
    shortest, longest = min(train_lengths), max(train_lengths)
    if np.any(high):
        result.add_check(
            "short-trains-overestimate-at-high-rate",
            bool(np.all(curves[shortest][high] > steady[high] * 1.02)))
        result.add_check(
            "longer-trains-closer-to-steady",
            float(np.mean(np.abs(curves[longest][high] - steady[high])))
            < float(np.mean(np.abs(curves[shortest][high] - steady[high]))))
    low = rates <= 0.5 * fair_share
    if np.any(low):
        result.add_check(
            "follows-diagonal-at-low-rate",
            bool(np.all(np.abs(curves[longest][low] - rates[low])
                        <= 0.1 * rates[low] + 1e5)))
    return result


def fig15_short_trains_fifo(probe_rates_bps: Optional[Sequence[float]] = None,
                            train_lengths: Sequence[int] = (3, 10, 50),
                            cross_rate_bps: float = 3e6,
                            fifo_rate_bps: float = 1e6,
                            size_bytes: int = 1500,
                            repetitions: int = 60,
                            phy: Optional[PhyParams] = None,
                            seed: int = 0,
                            backend: str = "event") -> ExperimentResult:
    """Figure 15: the same study with FIFO cross-traffic re-introduced.

    Bursty FIFO cross-traffic loosens the bounds (larger deviations
    below the achievable throughput) but the high-rate overestimation
    survives regardless of the FIFO traffic (equation (30), region 3).
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.arange(1e6, 10.01e6, 1e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    fair_share = bianchi.fair_share(2)
    u_fifo = min(0.95, fifo_rate_bps / fair_share)
    curves = _short_train_curves(rates, train_lengths, cross_rate_bps,
                                 fifo_rate_bps, size_bytes, repetitions,
                                 phy, seed, backend=backend)
    steady = _steady_series(rates, fair_share, u_fifo)
    series = {"steady_state_bps": steady}
    for n in train_lengths:
        series[f"train_{n}_bps"] = curves[n]
    result = ExperimentResult(
        experiment="fig15",
        title="Rate response from short trains (complete system)",
        x_label="ri_bps",
        x=rates,
        series=series,
        meta={
            "cross_rate_bps": cross_rate_bps,
            "fifo_rate_bps": fifo_rate_bps,
            "fair_share_bps": round(fair_share),
            "u_fifo": round(u_fifo, 3),
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    high = rates >= 1.5 * fair_share
    shortest = min(train_lengths)
    if np.any(high):
        result.add_check(
            "overestimates-despite-fifo",
            bool(np.all(curves[shortest][high] > steady[high] * 1.02)))
    b_complete = fair_share * (1 - u_fifo)
    low = rates <= 0.5 * b_complete
    if np.any(low):
        longest = max(train_lengths)
        result.add_check(
            "follows-diagonal-at-low-rate",
            bool(np.all(np.abs(curves[longest][low] - rates[low])
                        <= 0.15 * rates[low] + 1e5)))
    return result


def fig16_packet_pair(cross_rates_bps: Optional[Sequence[float]] = None,
                      size_bytes: int = 1500,
                      pair_repetitions: int = 300,
                      fluid_repetitions: int = 40,
                      rate_grid_bps: Optional[Sequence[float]] = None,
                      phy: Optional[PhyParams] = None,
                      seed: int = 0,
                      backend: str = "event") -> ExperimentResult:
    """Figure 16: packet-pair inference vs. the actual fluid response.

    For each contending cross-traffic rate the runner measures (a) the
    packet-pair bandwidth estimate and (b) the actual achievable
    throughput (fluid response).  With no contention the two coincide
    at the capacity; with contention the pair overestimates B and never
    reports C.
    """
    if cross_rates_bps is None:
        cross_rates_bps = np.arange(0.0, 6.01e6, 1e6)
    cross_rates = np.asarray(sorted(cross_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    pair_estimates = np.zeros(len(cross_rates))
    fluid_actual = np.zeros(len(cross_rates))
    for k, cross_rate in enumerate(cross_rates):
        prober = _wlan_prober(cross_rate, size_bytes, phy,
                              repetitions=pair_repetitions,
                              backend=backend)
        pairs = prober.measure_pairs(seed=seed + 31 * k)
        pair_estimates[k] = packet_pair_capacity(pairs)
        fluid_actual[k] = fluid_achievable_throughput(
            capacity, cross_rate, fair_share)
    result = ExperimentResult(
        experiment="fig16",
        title="Packet-pair inference vs. actual achievable throughput",
        x_label="cross_bps",
        x=cross_rates,
        series={"fluid_actual_bps": fluid_actual,
                "packet_pair_bps": pair_estimates},
        meta={
            "capacity_bps": round(capacity),
            "fair_share_bps": round(fair_share),
            "pair_repetitions": pair_repetitions,
            "backend": backend,
        },
    )
    result.add_check(
        "matches-capacity-without-contention",
        abs(pair_estimates[0] - capacity) <= 0.1 * capacity)
    contended = cross_rates >= 0.3 * capacity
    if np.any(contended):
        # Noise at finite repetitions can push isolated points under
        # the fluid line; the claim is about the systematic bias, so
        # check the mean uplift and the large majority of points.
        above = pair_estimates[contended] > fluid_actual[contended]
        mean_uplift = float(np.mean(pair_estimates[contended]
                                    - fluid_actual[contended]))
        result.add_check(
            "overestimates-B-under-contention",
            bool(np.mean(above) >= 0.75 and mean_uplift > 0))
        result.add_check(
            "never-reports-capacity-under-contention",
            bool(np.all(pair_estimates[contended] < 0.97 * capacity)))
    return result


def fig17_mser(probe_rates_bps: Optional[Sequence[float]] = None,
               n_packets: int = 20,
               mser_batch: int = 2,
               cross_rate_bps: float = 3e6,
               size_bytes: int = 1500,
               repetitions: int = 80,
               phy: Optional[PhyParams] = None,
               seed: int = 0,
               backend: str = "event") -> ExperimentResult:
    """Figure 17: MSER-2 truncation of 20-packet trains.

    Removing the packets MSER-2 flags as transient pulls the inferred
    curve toward the steady-state response without sending any extra
    packets.
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.arange(1e6, 10.01e6, 1e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    fair_share = bianchi.fair_share(2)
    prober = _wlan_prober(cross_rate_bps, size_bytes, phy,
                          repetitions=repetitions, backend=backend)
    raw = np.zeros(len(rates))
    corrected = np.zeros(len(rates))
    for k, rate in enumerate(rates):
        measurements = prober.measure_train(n_packets, rate,
                                            seed=seed + 53 * k)
        raw[k] = train_dispersion_rate(measurements)
        corrected[k] = mser_corrected_rate(measurements, m=mser_batch)
    steady = _steady_series(rates, fair_share, 0.0)
    result = ExperimentResult(
        experiment="fig17",
        title=f"MSER-{mser_batch} corrected {n_packets}-packet trains",
        x_label="ri_bps",
        x=rates,
        series={"steady_state_bps": steady,
                f"train_{n_packets}_bps": raw,
                f"mser{mser_batch}_bps": corrected},
        meta={
            "cross_rate_bps": cross_rate_bps,
            "fair_share_bps": round(fair_share),
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    high = rates >= 1.5 * fair_share
    if np.any(high):
        raw_err = float(np.mean(np.abs(raw[high] - steady[high])))
        mser_err = float(np.mean(np.abs(corrected[high] - steady[high])))
        result.add_check("mser-closer-to-steady", mser_err < raw_err)
        result.add_check("raw-overestimates",
                         bool(np.all(raw[high] > steady[high])))
    return result
