"""Steady-state rate-response experiments (figures 1 and 4).

Both figures probe the link with effectively infinite trains (the paper
uses >10000 packets and evaluates in steady state), so the runners here
drive the probing flow as a long CBR flow and measure throughputs over
a window that skips the warm-up, which is equivalent and cheaper.

Each measurement point is a repetition batch routed through
:func:`repro.runtime.executor.run_batch`: the ``event`` backend maps
:func:`steady_state_throughputs` over the derived per-repetition seeds
(sharded across the ambient worker pool), the ``vector`` backend hands
the whole batch to
:func:`repro.sim.probe_vector.simulate_steady_state_batch`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.analytic.bianchi import BianchiModel
from repro.analytic.rate_response import complete_rate_response
from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.sim.probe_vector import (
    PoissonCrossSpec,
    SteadyBatchResult,
    simulate_steady_state_batch,
)
from repro.traffic.generators import CBRGenerator, PoissonGenerator


def _probe_cbr(rate_bps: float, size_bytes: int) -> CBRGenerator:
    generator = CBRGenerator(rate_bps, size_bytes, flow="probe")
    return generator


def steady_state_throughputs(probe_rate_bps: float,
                             cross_rate_bps: float,
                             fifo_rate_bps: float = 0.0,
                             phy: Optional[PhyParams] = None,
                             size_bytes: int = 1500,
                             duration: float = 4.0,
                             warmup: float = 0.5,
                             seed: int = 0) -> Dict[str, float]:
    """Throughputs of probe / contending / FIFO flows in steady state.

    The probe flow is CBR at ``probe_rate_bps`` from the probe station;
    ``fifo_rate_bps`` of Poisson cross-traffic shares that station's
    queue; ``cross_rate_bps`` of Poisson traffic contends from a second
    station.  Throughputs are measured over ``(warmup, duration]``.
    """
    if duration <= warmup:
        raise ValueError("duration must exceed warmup")
    # FIFO cross-traffic shares the probe station's transmission queue:
    # the probe flow goes in as explicit arrivals, the FIFO flow as the
    # same station's generator.
    probe_arrivals = list(_probe_cbr(probe_rate_bps, size_bytes)
                          .generate(duration, np.random.default_rng(seed)))
    fifo_generator = (PoissonGenerator(fifo_rate_bps, size_bytes, flow="fifo")
                      if fifo_rate_bps > 0 else None)
    specs = [StationSpec("probe", generator=fifo_generator,
                         arrivals=probe_arrivals)]
    if cross_rate_bps > 0:
        specs.append(StationSpec(
            "cross", generator=PoissonGenerator(cross_rate_bps, size_bytes,
                                                flow="cross")))
    scenario = WlanScenario(phy)
    result = scenario.run(specs, horizon=duration, seed=seed,
                          until=duration)
    probe_station = result.station("probe")
    out = {
        "probe": probe_station.throughput_bps(warmup, duration, flow="probe"),
        "fifo": (probe_station.throughput_bps(warmup, duration, flow="fifo")
                 if fifo_rate_bps > 0 else 0.0),
        "cross": (result.station("cross").throughput_bps(warmup, duration)
                  if cross_rate_bps > 0 else 0.0),
    }
    return out


def steady_state_samples(probe_rate_bps: float,
                         cross_rate_bps: float,
                         fifo_rate_bps: float = 0.0,
                         phy: Optional[PhyParams] = None,
                         size_bytes: int = 1500,
                         duration: float = 4.0,
                         warmup: float = 0.5,
                         repetitions: int = 3,
                         seed: int = 0,
                         backend: str = "event") -> Dict[str, np.ndarray]:
    """Per-repetition steady-state throughput samples, any backend.

    One measurement point of figures 1/4 as a repetition batch:
    returns ``flow -> (repetitions,)`` arrays for the probe, FIFO and
    contending flows.  The event path maps
    :func:`steady_state_throughputs` over the canonical per-repetition
    seeds (honouring the ambient ``--jobs`` scope); the vector path
    resolves the whole batch in the steady-state mode of the
    probe-train kernel; ``backend="auto"`` lets the dispatcher decide
    from this measurement's own scenario spec.  The backends are
    statistically equivalent —
    ``tests/test_auto_backend_equivalence.py`` pins the per-flow
    throughput distributions with KS tests.
    """
    # Imported lazily: repro.runtime sits above the analysis layer.
    from repro.backends import BatchRequest, ScenarioSpec, dispatch
    from repro.runtime.executor import run_batch

    spec = ScenarioSpec(
        system="wlan", workload="steady-cbr",
        cross_traffic="poisson" if cross_rate_bps > 0 else "none",
        fifo_cross="poisson" if fifo_rate_bps > 0 else "none")
    backend = dispatch.resolve(spec, backend).name

    def event_task(rep_seed: int) -> Dict[str, float]:
        return steady_state_throughputs(
            probe_rate_bps, cross_rate_bps, fifo_rate_bps, phy,
            size_bytes, duration, warmup, seed=rep_seed)

    def batch_task(seeds) -> SteadyBatchResult:
        """The steady-state kernel over one (possibly chunked) slice.

        Returns the protocol-conformant :class:`SteadyBatchResult`
        (not a dict) so chunked execution can fold slices with
        ``concat``; the throughput dict is read off afterwards.
        """
        return simulate_steady_state_batch(
            probe_rate_bps, len(seeds), size_bytes=size_bytes,
            cross=[PoissonCrossSpec(cross_rate_bps / (size_bytes * 8),
                                    size_bytes)]
            if cross_rate_bps > 0 else [],
            fifo_cross=PoissonCrossSpec(fifo_rate_bps / (size_bytes * 8),
                                        size_bytes)
            if fifo_rate_bps > 0 else None,
            duration=duration, warmup=warmup, phy=phy, seeds=seeds)

    out = run_batch(BatchRequest(repetitions=repetitions, seed=seed,
                                 event_task=event_task,
                                 batch_task=batch_task, spec=spec),
                    backend=backend)
    if isinstance(out, SteadyBatchResult):
        return {"probe": out.probe_throughput_bps(),
                "fifo": out.fifo_throughput_bps(),
                "cross": out.cross_throughput_bps()}
    return {flow: np.array([sample[flow] for sample in out])
            for flow in ("probe", "fifo", "cross")}


def fig1_rate_response(probe_rates_bps: Optional[Sequence[float]] = None,
                       cross_rate_bps: float = 4.5e6,
                       size_bytes: int = 1500,
                       duration: float = 4.0,
                       warmup: float = 0.5,
                       repetitions: int = 3,
                       phy: Optional[PhyParams] = None,
                       seed: int = 0,
                       backend: str = "event") -> ExperimentResult:
    """Figure 1: steady-state rate response with contending cross-traffic.

    The paper's setting has C ~ 6.5 Mb/s, one contending flow leaving
    A ~ 2 Mb/s available, and a fair share B ~ 3.4 Mb/s.  The probe
    curve must track the diagonal until ~B and then flatten at B — with
    *no* deviation at A — while the cross flow's throughput starts
    dropping once the probe rate passes A.
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.arange(0.5e6, 10.01e6, 0.5e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    probe_out = np.zeros(len(rates))
    cross_out = np.zeros(len(rates))
    for k, rate in enumerate(rates):
        samples = steady_state_samples(
            rate, cross_rate_bps, 0.0, phy, size_bytes, duration,
            warmup, repetitions=repetitions, seed=seed + k,
            backend=backend)
        probe_out[k] = float(samples["probe"].mean())
        cross_out[k] = float(samples["cross"].mean())

    available = max(0.0, capacity - cross_rate_bps)
    result = ExperimentResult(
        experiment="fig1",
        title="Steady-state rate response vs. contending cross-traffic",
        x_label="ri_bps",
        x=rates,
        series={"probe_bps": probe_out, "cross_bps": cross_out},
        meta={
            "cross_rate_bps": cross_rate_bps,
            "capacity_bps": round(capacity),
            "available_bps": round(available),
            "fair_share_bps": round(fair_share),
            "repetitions": repetitions,
            "duration_s": duration,
            "backend": backend,
        },
    )
    # Shape checks (DESIGN.md, figure 1).
    low = rates <= 0.85 * fair_share
    result.add_check(
        "diagonal-below-B",
        bool(np.all(np.abs(probe_out[low] - rates[low])
                    <= 0.1 * rates[low] + 5e4)))
    high = rates >= 1.3 * fair_share
    if np.any(high):
        plateau = probe_out[high]
        result.add_check(
            "flattens-at-B",
            bool(np.all(np.abs(plateau - fair_share) <= 0.2 * fair_share)))
        result.add_check(
            "plateau-below-capacity",
            bool(np.all(plateau < 0.9 * capacity)))
    near_a = (rates >= 0.8 * available) & (rates <= 1.2 * available)
    if np.any(near_a):
        result.add_check(
            "no-deviation-at-A",
            bool(np.all(np.abs(probe_out[near_a] - rates[near_a])
                        <= 0.1 * rates[near_a] + 5e4)))
    result.add_check("cross-decreases",
                     cross_out[-1] < cross_out[0] - 0.1 * cross_out[0])
    return result


def fig4_complete_picture(probe_rates_bps: Optional[Sequence[float]] = None,
                          cross_rate_bps: float = 3.0e6,
                          fifo_rate_bps: float = 1.5e6,
                          size_bytes: int = 1500,
                          duration: float = 4.0,
                          warmup: float = 0.5,
                          repetitions: int = 3,
                          phy: Optional[PhyParams] = None,
                          seed: int = 0,
                          backend: str = "event") -> ExperimentResult:
    """Figure 4: the complete picture with FIFO + contending cross-traffic.

    The probe curve deviates when probe + FIFO aggregate reaches the
    station's fair share, then keeps growing toward Bf as the probe
    crowds the FIFO cross-traffic out of the shared queue (whose
    throughput decays correspondingly).
    """
    if probe_rates_bps is None:
        probe_rates_bps = np.arange(0.5e6, 10.01e6, 0.5e6)
    rates = np.asarray(sorted(probe_rates_bps), dtype=float)
    bianchi = BianchiModel(phy, size_bytes)
    fair_share = bianchi.fair_share(2)
    probe_out = np.zeros(len(rates))
    cross_out = np.zeros(len(rates))
    fifo_out = np.zeros(len(rates))
    for k, rate in enumerate(rates):
        samples = steady_state_samples(
            rate, cross_rate_bps, fifo_rate_bps, phy, size_bytes,
            duration, warmup, repetitions=repetitions, seed=seed + k,
            backend=backend)
        probe_out[k] = float(samples["probe"].mean())
        cross_out[k] = float(samples["cross"].mean())
        fifo_out[k] = float(samples["fifo"].mean())

    u_fifo = min(0.95, fifo_rate_bps / fair_share)
    model = complete_rate_response(rates, fair_share, u_fifo)
    result = ExperimentResult(
        experiment="fig4",
        title="Complete rate response (FIFO + contending cross-traffic)",
        x_label="ri_bps",
        x=rates,
        series={"probe_bps": probe_out, "cross_bps": cross_out,
                "fifo_bps": fifo_out, "model_eq4_bps": model},
        meta={
            "cross_rate_bps": cross_rate_bps,
            "fifo_rate_bps": fifo_rate_bps,
            "fair_share_bps": round(fair_share),
            "u_fifo": round(u_fifo, 3),
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    b_complete = fair_share * (1 - u_fifo)
    low = rates <= 0.8 * b_complete
    if np.any(low):
        result.add_check(
            "diagonal-below-B",
            bool(np.all(np.abs(probe_out[low] - rates[low])
                        <= 0.1 * rates[low] + 5e4)))
    result.add_check(
        "fifo-decays", fifo_out[-1] < 0.75 * max(fifo_out[0], 1.0))
    result.add_check(
        "probe-keeps-growing-past-B",
        probe_out[-1] > b_complete * 1.05)
    result.add_check(
        "probe-below-fair-share", probe_out[-1] <= fair_share * 1.15)
    result.add_check(
        "matches-eq4-at-high-rate",
        abs(probe_out[-1] - model[-1]) <= 0.2 * model[-1])
    return result
