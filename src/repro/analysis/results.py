"""Structured experiment results.

An :class:`ExperimentResult` holds everything a figure reproduction
produces: the x-axis, the named y-series the paper plots, a dictionary
of *shape checks* (the qualitative assertions DESIGN.md lists for the
figure — who wins, where the knee falls), and free-form metadata
(parameters, repetition counts).  The benchmark harness prints
``result.table()`` and asserts ``result.all_checks_pass``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class ExperimentResult:
    """Outcome of one figure reproduction."""

    experiment: str
    title: str
    x_label: str
    x: np.ndarray
    series: "Dict[str, np.ndarray]"
    meta: Dict[str, object] = field(default_factory=dict)
    checks: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        for name, values in list(self.series.items()):
            values = np.asarray(values, dtype=float)
            if values.shape != self.x.shape:
                raise ValueError(
                    f"series {name!r} has shape {values.shape}, "
                    f"x has {self.x.shape}")
            self.series[name] = values

    # ------------------------------------------------------------------

    def add_check(self, name: str, passed: bool) -> None:
        """Record a qualitative shape check."""
        self.checks[name] = bool(passed)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every recorded shape check holds."""
        return all(self.checks.values())

    @property
    def failed_checks(self) -> List[str]:
        """Names of failing checks."""
        return [name for name, ok in self.checks.items() if not ok]

    # ------------------------------------------------------------------

    def table(self, float_format: str = "{:>14.5g}") -> str:
        """Render the series as an aligned text table (bench output)."""
        names = list(self.series)
        header = float_format.replace("14.5g", "14") \
            if "14.5g" in float_format else "{:>14}"
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.meta:
            rendered = ", ".join(f"{k}={v}" for k, v in self.meta.items())
            lines.append(f"   [{rendered}]")
        lines.append("  ".join([header.format(self.x_label[:14])]
                               + [header.format(n[:14]) for n in names]))
        for i in range(len(self.x)):
            row = [float_format.format(self.x[i])]
            row += [float_format.format(self.series[n][i]) for n in names]
            lines.append("  ".join(row))
        if self.checks:
            lines.append("  checks: " + ", ".join(
                f"{name}={'PASS' if ok else 'FAIL'}"
                for name, ok in self.checks.items()))
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line status string."""
        status = "PASS" if self.all_checks_pass else (
            "FAIL: " + ", ".join(self.failed_checks))
        return f"{self.experiment}: {self.title} [{status}]"

    # ------------------------------------------------------------------
    # JSON round-trip (the runtime result cache stores these payloads)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable payload; inverse of :meth:`from_dict`.

        The round trip is lossless for :meth:`table` output: arrays go
        through ``tolist()`` (exact for float64) and meta values are
        reduced to plain Python scalars that render identically.
        """
        return {
            "experiment": self.experiment,
            "title": self.title,
            "x_label": self.x_label,
            "x": self.x.tolist(),
            "series": {name: values.tolist()
                       for name, values in self.series.items()},
            "meta": {key: jsonable(value)
                     for key, value in self.meta.items()},
            "checks": dict(self.checks),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from a :meth:`to_dict` payload."""
        result = cls(
            experiment=str(payload["experiment"]),
            title=str(payload["title"]),
            x_label=str(payload["x_label"]),
            x=np.asarray(payload["x"], dtype=float),
            series={str(name): np.asarray(values, dtype=float)
                    for name, values in dict(payload["series"]).items()},
            meta=dict(payload.get("meta", {})),
        )
        for name, ok in dict(payload.get("checks", {})).items():
            result.add_check(str(name), bool(ok))
        return result


def jsonable(value: object) -> object:
    """Recursively reduce a value to JSON-serialisable Python types.

    numpy scalars become their Python equivalents, arrays and tuples
    become lists, and containers are normalised element-wise — so any
    meta/kwargs structure a runner produces can be stored as JSON.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return value


def monotone_nonincreasing(values: np.ndarray, slack: float = 0.0) -> bool:
    """Shape-check helper: the series never rises by more than ``slack``."""
    values = np.asarray(values, dtype=float)
    return bool(np.all(np.diff(values) <= slack))


def monotone_nondecreasing(values: np.ndarray, slack: float = 0.0) -> bool:
    """Shape-check helper: the series never drops by more than ``slack``."""
    values = np.asarray(values, dtype=float)
    return bool(np.all(np.diff(values) >= -slack))
