"""Ablation experiments for the design choices called out in DESIGN.md.

* :func:`ablation_bianchi_calibration` — the event simulator's
  saturation throughput vs. Bianchi's prediction across station counts
  (validates the slot-jump DCF scheduling);
* :func:`ablation_immediate_access` — the access-delay transient with
  the 802.11 immediate-access rule on vs. off (the rule is the
  mechanism that accelerates the first packets);
* :func:`ablation_ks_methods` — plain vs. interpolated KS profiles on
  the same delay matrix (quantifies the atomic-distribution floor of
  the paper's footnote-2 procedure);
* :func:`ablation_rts_cts` — the access-delay transient with basic
  access vs. RTS/CTS protection (the transient mechanism is orthogonal
  to the handshake);
* :func:`ablation_truncation_heuristics` — MSER-2 vs. MSER-1 vs. fixed
  truncation for the bias-correction method of section 7.4.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.analytic.bianchi import BianchiModel
from repro.analytic.rate_response import complete_rate_response
from repro.core.correction import mser_corrected_rate
from repro.core.estimators import train_dispersion_rate
from repro.core.transient import DelayMatrix, ks_profile
from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.stats.warmup import fixed_truncation
from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import CBRGenerator, PoissonGenerator
from repro.traffic.probe import ProbeTrain


def ablation_bianchi_calibration(station_counts: Sequence[int] = (1, 2, 3, 4, 5),
                                 size_bytes: int = 1500,
                                 duration: float = 4.0,
                                 warmup: float = 0.5,
                                 repetitions: int = 3,
                                 phy: Optional[PhyParams] = None,
                                 seed: int = 0,
                                 backend: str = "event") -> ExperimentResult:
    """Saturation throughput: simulator vs. Bianchi model, any backend.

    Every station offers well above its share (9 Mb/s CBR each) so the
    network is saturated; the simulator's aggregate throughput —
    averaged over ``repetitions`` independent runs per station count —
    must track the analytical prediction within a few percent for
    every n.  The ``vector`` arm resolves each station count's whole
    repetition batch through the probe-train kernel's steady-state
    mode with batched CBR cross-traffic — station 0 carries the CBR
    flow as the "probe", the remaining n-1 stations contend with
    identical CBR sample paths, exactly the event scenario's symmetric
    configuration.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    # Resolve auto against this study's own scenario, like the
    # steady-state runners do.
    from repro.backends import ScenarioSpec, dispatch
    spec = ScenarioSpec(system="wlan", workload="steady-cbr",
                        cross_traffic="cbr")
    backend = dispatch.resolve(spec, backend).name

    counts = list(station_counts)
    bianchi = BianchiModel(phy, size_bytes)
    simulated = np.zeros(len(counts))
    predicted = np.zeros(len(counts))
    offered_bps = 9e6
    if backend != "event":
        from repro.sim.jit import tier_scope, warm_kernels
        from repro.sim.probe_vector import (
            CbrCrossSpec,
            simulate_steady_state_batch,
        )
        if backend == "jit":
            warm_kernels()
        pps = offered_bps / (size_bytes * 8)
        with tier_scope(backend):
            for k, n in enumerate(counts):
                batch = simulate_steady_state_batch(
                    offered_bps, repetitions, size_bytes=size_bytes,
                    cross=[CbrCrossSpec(pps, size_bytes)] * (n - 1),
                    duration=duration, warmup=warmup, phy=phy,
                    seed=seed + k)
                simulated[k] = float(np.mean(batch.probe_throughput_bps()
                                             + batch.cross_throughput_bps()))
                predicted[k] = bianchi.solve(n).total_throughput_bps
    else:
        scenario = WlanScenario(phy)
        for k, n in enumerate(counts):
            # Same per-repetition seed scheme as the kernel's batch
            # (repro.runtime.executor.derive_seeds).
            rep_seeds = np.random.SeedSequence(seed + k).generate_state(
                repetitions)
            totals = np.zeros(repetitions)
            for j, rep_seed in enumerate(rep_seeds):
                specs = [StationSpec(f"s{i}",
                                     generator=CBRGenerator(offered_bps,
                                                            size_bytes))
                         for i in range(n)]
                result = scenario.run(specs, horizon=duration,
                                      seed=int(rep_seed), until=duration)
                totals[j] = sum(
                    result.station(f"s{i}").throughput_bps(warmup, duration)
                    for i in range(n))
            simulated[k] = float(totals.mean())
            predicted[k] = bianchi.solve(n).total_throughput_bps
    result = ExperimentResult(
        experiment="ablation-bianchi",
        title="DCF simulator vs. Bianchi saturation throughput",
        x_label="n_stations",
        x=np.array(counts, dtype=float),
        series={"simulated_bps": simulated, "bianchi_bps": predicted},
        meta={"duration_s": duration, "size_bytes": size_bytes,
              "repetitions": repetitions, "backend": backend},
    )
    rel_err = np.abs(simulated - predicted) / predicted
    result.add_check("within-5pct", bool(np.all(rel_err <= 0.05)))
    return result


def ablation_immediate_access(probe_rate_bps: float = 5e6,
                              cross_rate_bps: float = 4e6,
                              n_packets: int = 120,
                              repetitions: int = 200,
                              size_bytes: int = 1500,
                              phy: Optional[PhyParams] = None,
                              seed: int = 0,
                              backend: str = "event") -> ExperimentResult:
    """The transient with the immediate-access rule on vs. off.

    With the rule enabled (802.11 behaviour) the first packet's mean
    access delay sits far below the steady state; with every access
    forced through a backoff, the first-packet acceleration largely
    disappears — demonstrating the mechanism behind section 4.  Both
    arms run on the selected backend (the probe-train kernel models
    the immediate-access switch too).
    """
    profiles = {}
    steady = {}
    for label, immediate in (("dcf", True), ("no_immediate", False)):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(cross_rate_bps, size_bytes))],
            phy=phy, immediate_access=immediate)
        train = ProbeTrain.at_rate(n_packets, probe_rate_bps, size_bytes)
        batch = channel.send_trains_dense(train, repetitions, seed=seed,
                                          backend=backend)
        matrix = DelayMatrix(batch.delay_matrix())
        profiles[label] = matrix.mean_profile()
        steady[label] = matrix.steady_state_mean()
    limit = min(60, n_packets)
    result = ExperimentResult(
        experiment="ablation-immediate-access",
        title="Access-delay transient with/without immediate access",
        x_label="packet_idx",
        x=np.arange(1, limit + 1),
        series={
            "dcf_mean_delay_s": profiles["dcf"][:limit],
            "no_immediate_mean_delay_s": profiles["no_immediate"][:limit],
        },
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "steady_dcf_s": float(steady["dcf"]),
            "steady_no_immediate_s": float(steady["no_immediate"]),
            "backend": backend,
        },
    )
    dip_dcf = profiles["dcf"][0] / steady["dcf"]
    dip_off = profiles["no_immediate"][0] / steady["no_immediate"]
    result.add_check("rule-creates-acceleration", dip_dcf < dip_off)
    result.add_check("dcf-first-packet-fast", dip_dcf < 0.85)
    return result


def ablation_ks_methods(probe_rate_bps: float = 2e6,
                        cross_rate_bps: float = 2e6,
                        n_packets: int = 80,
                        repetitions: int = 300,
                        size_bytes: int = 1500,
                        phy: Optional[PhyParams] = None,
                        seed: int = 0,
                        backend: str = "event") -> ExperimentResult:
    """Plain vs. interpolated KS on an atom-bearing delay matrix.

    At moderate probing rates a sizable fraction of probe packets gets
    immediate access, putting a deterministic atom (the bare frame
    airtime) in the delay distribution.  The interpolated statistic
    then has a floor of about half the atom mass even deep in the
    steady state; the plain statistic settles properly.
    """
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))], phy=phy)
    train = ProbeTrain.at_rate(n_packets, probe_rate_bps, size_bytes)
    batch = channel.send_trains_dense(train, repetitions, seed=seed,
                                      backend=backend)
    matrix = DelayMatrix(batch.delay_matrix())
    plain = ks_profile(matrix, method="plain")
    interp = ks_profile(matrix, method="interpolated")
    limit = len(plain.ks_values)
    result = ExperimentResult(
        experiment="ablation-ks-method",
        title="Plain vs. interpolated KS profile (atomic delays)",
        x_label="packet_idx",
        x=np.arange(1, limit + 1),
        series={
            "ks_plain": plain.ks_values,
            "ks_interpolated": interp.ks_values,
            "threshold": np.full(limit, plain.threshold),
        },
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "backend": backend,
        },
    )
    tail = slice(limit // 2, limit)
    result.add_check(
        "interpolated-has-floor",
        float(np.median(interp.ks_values[tail]))
        > 1.5 * float(np.median(plain.ks_values[tail])))
    result.add_check(
        "plain-settles",
        float(np.median(plain.ks_values[tail])) <= 1.5 * plain.threshold)
    return result


def ablation_rts_cts(probe_rate_bps: float = 5e6,
                     cross_rate_bps: float = 4e6,
                     n_packets: int = 120,
                     repetitions: int = 200,
                     size_bytes: int = 1500,
                     phy: Optional[PhyParams] = None,
                     seed: int = 0,
                     backend: str = "event") -> ExperimentResult:
    """Does RTS/CTS change the access-delay transient?

    RTS/CTS cuts the collision cost but adds a fixed per-frame
    handshake.  The transient mechanism (immediate access + contending
    queue adaptation) is orthogonal to it, so the *relative*
    first-packet acceleration must survive with RTS enabled — evidence
    that the paper's findings carry over to RTS-protected networks.
    Both arms run on the selected backend (the probe-train kernel
    applies the same RTS airtime arithmetic as the event medium).
    """
    profiles = {}
    steady = {}
    for label, threshold in (("basic", None), ("rts", 0)):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(cross_rate_bps, size_bytes))],
            phy=phy, rts_threshold=threshold)
        train = ProbeTrain.at_rate(n_packets, probe_rate_bps, size_bytes)
        batch = channel.send_trains_dense(train, repetitions, seed=seed,
                                          backend=backend)
        matrix = DelayMatrix(batch.delay_matrix())
        profiles[label] = matrix.mean_profile()
        steady[label] = matrix.steady_state_mean()
    limit = min(60, n_packets)
    result = ExperimentResult(
        experiment="ablation-rts",
        title="Access-delay transient: basic access vs. RTS/CTS",
        x_label="packet_idx",
        x=np.arange(1, limit + 1),
        series={
            "basic_mean_delay_s": profiles["basic"][:limit],
            "rts_mean_delay_s": profiles["rts"][:limit],
        },
        meta={
            "probe_rate_bps": probe_rate_bps,
            "cross_rate_bps": cross_rate_bps,
            "repetitions": repetitions,
            "steady_basic_s": float(steady["basic"]),
            "steady_rts_s": float(steady["rts"]),
            "backend": backend,
        },
    )
    result.add_check(
        "rts-adds-overhead", steady["rts"] > steady["basic"])
    result.add_check(
        "transient-survives-rts",
        profiles["rts"][0] < 0.9 * steady["rts"])
    result.add_check(
        "transient-present-basic",
        profiles["basic"][0] < 0.9 * steady["basic"])
    return result


def ablation_truncation_heuristics(probe_rate_bps: float = 8e6,
                                   cross_rate_bps: float = 3e6,
                                   n_packets: int = 20,
                                   repetitions: int = 120,
                                   size_bytes: int = 1500,
                                   phy: Optional[PhyParams] = None,
                                   fixed_cut: int = 6,
                                   seed: int = 0,
                                   backend: str = "event") -> ExperimentResult:
    """MSER-2 vs. MSER-1 vs. fixed truncation at a high probing rate.

    All heuristics must move the short-train estimate toward the steady
    state; MSER-2 (the paper's choice) should be at least as good as
    the raw measurement and comparable to an oracle-ish fixed cut.
    """
    bianchi = BianchiModel(phy, size_bytes)
    fair_share = bianchi.fair_share(2)
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate_bps, size_bytes))], phy=phy)
    train = ProbeTrain.at_rate(n_packets, probe_rate_bps, size_bytes)
    batch = channel.send_trains_dense(train, repetitions, seed=seed,
                                      backend=backend)
    from repro.core.dispersion import TrainMeasurement
    measurements = [TrainMeasurement(batch.send_times[r],
                                     batch.recv_times[r],
                                     batch.size_bytes)
                    for r in range(batch.repetitions)]
    raw_rate = train_dispersion_rate(measurements)
    mser2 = mser_corrected_rate(measurements, m=2)
    mser1 = mser_corrected_rate(measurements, m=1)
    gaps = np.vstack([m.output_gaps for m in measurements])
    fixed_gap = float(np.mean(
        fixed_truncation(gaps.mean(axis=0), fixed_cut).truncated))
    fixed_rate = size_bytes * 8 / fixed_gap
    steady = float(complete_rate_response(
        np.array([probe_rate_bps]), fair_share, 0.0)[0])
    labels = ["raw", "mser2", "mser1", "fixed"]
    rates = np.array([raw_rate, mser2, mser1, fixed_rate])
    result = ExperimentResult(
        experiment="ablation-truncation",
        title="Truncation heuristics for short-train correction",
        x_label="method_idx",
        x=np.arange(len(labels), dtype=float),
        series={"rate_bps": rates,
                "steady_bps": np.full(len(labels), steady)},
        meta={
            "methods": ",".join(labels),
            "probe_rate_bps": probe_rate_bps,
            "repetitions": repetitions,
            "fair_share_bps": round(fair_share),
            "backend": backend,
        },
    )
    errors = np.abs(rates - steady)
    result.add_check("mser2-not-worse-than-raw", errors[1] <= errors[0])
    result.add_check("raw-overestimates", raw_rate > steady)
    return result
