"""Bias correction of short-train measurements (section 7.4).

The paper treats the access-delay transient as a *simulation warm-up*
problem and removes, from each train's dispersion samples, the packets
that the MSER-m heuristic flags as transient, without sending any extra
packets.  Figure 17 applies MSER-2 to the inter-arrival times of
20-packet trains and recovers a curve close to the steady-state rate
response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.dispersion import TrainMeasurement
from repro.stats.warmup import mser_m


@dataclass
class CorrectedMeasurement:
    """One train's dispersion estimate before and after truncation."""

    raw_gap: float
    corrected_gap: float
    truncated_packets: int
    n: int

    @property
    def changed(self) -> bool:
        """Whether the heuristic removed anything."""
        return self.truncated_packets > 0


def mser_corrected_gap(measurement: TrainMeasurement,
                       m: int = 2) -> CorrectedMeasurement:
    """Apply MSER-m to one train's inter-arrival (dispersion) samples.

    The per-packet output gaps ``d_{i+1} - d_i`` form the observation
    sequence; MSER-m picks a truncation point ``k``; the corrected
    output gap is the mean of the retained gaps (equivalent to
    measuring the dispersion of the truncated train).
    """
    gaps = measurement.output_gaps
    result = mser_m(gaps, m=m)
    retained = result.truncated
    if len(retained) == 0:  # pragma: no cover - mser keeps >= 1 batch
        retained = gaps
    return CorrectedMeasurement(
        raw_gap=measurement.output_gap,
        corrected_gap=float(np.mean(retained)),
        truncated_packets=int(result.truncate_before),
        n=measurement.n,
    )


def mser_truncation_index(measurements: Sequence[TrainMeasurement],
                          m: int = 2) -> int:
    """MSER-m truncation point of the *mean* per-index gap profile.

    The paper applies MSER-2 to "the inter-arrival time of the packets
    of a 20 packet train sequence": with ``m`` repetitions available,
    the robust reading is to truncate the per-index mean dispersion
    profile (averaged over the repetitions) rather than each noisy
    train individually.  Returns the number of leading gaps to drop.
    """
    if len(measurements) == 0:
        raise ValueError("need at least one measurement")
    gaps = np.vstack([meas.output_gaps for meas in measurements])
    profile = gaps.mean(axis=0)
    return int(mser_m(profile, m=m).truncate_before)


def mser_corrected_rate(measurements: Sequence[TrainMeasurement],
                        m: int = 2, per_train: bool = False) -> float:
    """``L / E[g_O]`` with MSER-m truncation (figure 17).

    By default the truncation point is chosen once, on the per-index
    mean gap profile across all repetitions (see
    :func:`mser_truncation_index`), and applied to every train.  With
    ``per_train=True`` each train is truncated independently — noisier,
    but usable when only one train is available.
    """
    if len(measurements) == 0:
        raise ValueError("need at least one measurement")
    sizes = {meas.size_bytes for meas in measurements}
    if len(sizes) != 1:
        raise ValueError(f"mixed probe sizes {sorted(sizes)}")
    if per_train:
        corrected = [mser_corrected_gap(meas, m=m).corrected_gap
                     for meas in measurements]
        mean_gap = float(np.mean(corrected))
    else:
        cut = mser_truncation_index(measurements, m=m)
        gaps = np.vstack([meas.output_gaps for meas in measurements])
        retained = gaps[:, cut:] if cut < gaps.shape[1] else gaps
        mean_gap = float(np.mean(retained))
    if mean_gap <= 0:
        raise ValueError("mean corrected gap must be positive")
    return measurements[0].size_bytes * 8 / mean_gap


def truncation_profile(measurements: Sequence[TrainMeasurement],
                       m: int = 2) -> np.ndarray:
    """Distribution of MSER-m truncation points across trains.

    Returns the array of per-train truncation indices — useful to
    compare the heuristic's choices against the measured transient
    duration (the ablation bench does exactly that).
    """
    if len(measurements) == 0:
        raise ValueError("need at least one measurement")
    return np.array([mser_corrected_gap(meas, m=m).truncated_packets
                     for meas in measurements])
