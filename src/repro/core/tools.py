"""Higher-level measurement tools from the literature.

The paper's section 7.2 argues that available-bandwidth tools designed
for FIFO links (pathload-style iterative probing, SLoPS) actually
converge to the *achievable throughput* when run over CSMA/CA links.
This module implements such a tool so the claim is machine-checkable:

* :class:`IterativeProbeTool` — binary search for the largest rate at
  which the probing flow is undisturbed (``L/E[g_O] ~ r_i``), the core
  decision logic of pathload-like tools;
* :func:`slops_trend` — the one-way-delay trend detector (pairwise
  comparison + deviation tests) that pathload uses to classify a
  single train as "above" or "below" the turning point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

import numpy as np

from repro.core.dispersion import TrainMeasurement
from repro.core.estimators import train_dispersion_rate

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import
    from repro.testbed.prober import Prober


def slops_trend(measurement: TrainMeasurement,
                pct_threshold: float = 0.55,
                pdt_threshold: float = 0.4) -> str:
    """Classify a train's one-way-delay trend (SLoPS).

    Implements pathload's two trend statistics over the relative
    one-way delays ``D_i = d_i - a_i``:

    * PCT (pairwise comparison test): fraction of consecutive pairs
      with ``D_{i+1} > D_i`` — near 1 for an increasing trend, near 0.5
      for noise;
    * PDT (pairwise difference test): ``(D_n - D_1) / sum |D_{i+1} -
      D_i|`` — near 1 for increasing, near 0 for noise.

    Returns ``"increasing"`` (probing above the turning point),
    ``"no-trend"``, or ``"ambiguous"`` when the two tests disagree.
    """
    delays = measurement.one_way_delays
    diffs = np.diff(delays)
    if len(diffs) == 0:
        raise ValueError("need at least two packets")
    denominator = float(np.sum(np.abs(diffs)))
    pct = float(np.mean(diffs > 0))
    pdt = (float(delays[-1] - delays[0]) / denominator
           if denominator > 0 else 0.0)
    pct_up = pct > pct_threshold
    pdt_up = pdt > pdt_threshold
    if pct_up and pdt_up:
        return "increasing"
    if not pct_up and not pdt_up:
        return "no-trend"
    return "ambiguous"


@dataclass
class IterativeProbeResult:
    """Outcome of an iterative (pathload-style) rate search."""

    estimate_bps: float
    low_bps: float
    high_bps: float
    iterations: int
    history: List[dict] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Whether the search narrowed below its resolution target."""
        return self.high_bps - self.low_bps <= 0.0 or self.iterations > 0


class IterativeProbeTool:
    """Binary search for the turning-point rate of a path.

    On a FIFO path this converges to the available bandwidth A; on a
    CSMA/CA path it converges to the achievable throughput B — which is
    precisely the paper's point about reusing wired tools unchanged.

    Parameters
    ----------
    prober:
        A configured :class:`repro.testbed.prober.Prober`.
    n:
        Train length per iteration.
    repetitions:
        Trains per rate decision.
    disturbance_tolerance:
        A rate is "disturbed" when ``L/E[g_O] < (1 - tol) * r_i``.
    """

    def __init__(self, prober: "Prober", n: int = 50, repetitions: int = 10,
                 disturbance_tolerance: float = 0.08) -> None:
        if n < 2 or repetitions < 1:
            raise ValueError("need n >= 2 and repetitions >= 1")
        if not 0 < disturbance_tolerance < 1:
            raise ValueError("tolerance must be in (0, 1)")
        self.prober = prober
        self.n = n
        self.repetitions = repetitions
        self.disturbance_tolerance = disturbance_tolerance

    def rate_is_disturbed(self, rate_bps: float, seed: int) -> bool:
        """Probe once and decide whether ``rate_bps`` exceeds the knee."""
        measurements = self.prober.measure_train(
            self.n, rate_bps, repetitions=self.repetitions, seed=seed)
        output = train_dispersion_rate(measurements)
        return output < (1 - self.disturbance_tolerance) * rate_bps

    def search(self, low_bps: float, high_bps: float,
               resolution_bps: float = 0.25e6,
               max_iterations: int = 12,
               seed: int = 0) -> IterativeProbeResult:
        """Binary-search the turning point within ``[low, high]``.

        ``low`` must be an undisturbed rate and ``high`` a disturbed
        one (both are verified first and the bracket is widened upward
        if needed).
        """
        if low_bps <= 0 or high_bps <= low_bps:
            raise ValueError("need 0 < low < high")
        if resolution_bps <= 0:
            raise ValueError("resolution must be positive")
        history: List[dict] = []
        iterations = 0
        if self.rate_is_disturbed(low_bps, seed):
            # The knee is below the bracket; report the floor.
            return IterativeProbeResult(
                estimate_bps=low_bps, low_bps=0.0, high_bps=low_bps,
                iterations=0, history=history)
        while not self.rate_is_disturbed(high_bps, seed + 1):
            history.append({"rate": high_bps, "disturbed": False})
            high_bps *= 1.5
            iterations += 1
            if iterations >= max_iterations:
                return IterativeProbeResult(
                    estimate_bps=high_bps, low_bps=high_bps,
                    high_bps=float("inf"), iterations=iterations,
                    history=history)
        while (high_bps - low_bps > resolution_bps
               and iterations < max_iterations):
            mid = (low_bps + high_bps) / 2
            disturbed = self.rate_is_disturbed(mid, seed + 2 + iterations)
            history.append({"rate": mid, "disturbed": disturbed})
            if disturbed:
                high_bps = mid
            else:
                low_bps = mid
            iterations += 1
        return IterativeProbeResult(
            estimate_bps=(low_bps + high_bps) / 2,
            low_bps=low_bps, high_bps=high_bps,
            iterations=iterations, history=history)
