"""Transient-state analysis of the access delay (section 4).

The experimental object is a :class:`DelayMatrix`: repetitions x train
length samples of the per-packet access delay ``mu_i`` (or, in a pure
network-layer setting, of receiver-minus-HOL proxies).  From it the
module computes:

* the per-index mean profile (figure 6);
* per-index histograms (figure 7);
* the KS-versus-steady-state profile with its 95% threshold
  (figures 8 and 9);
* tolerance-based transient durations (figure 10) and the paper's
  practical bound (at 0.1 tolerance the transient never exceeded ~150
  packets in the paper's sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.ks import (
    KSResult,
    ks_2samp_interpolated,
    ks_distance,
    ks_threshold,
)


@dataclass
class DelayMatrix:
    """Access-delay samples arranged as (repetitions, packets).

    ``delays[r, i]`` is the access delay of the ``i``-th probing packet
    in repetition ``r``.
    """

    delays: np.ndarray

    def __post_init__(self) -> None:
        self.delays = np.asarray(self.delays, dtype=float)
        if self.delays.ndim != 2:
            raise ValueError("expected a 2-D (repetitions, packets) array")
        if self.delays.shape[0] < 1 or self.delays.shape[1] < 2:
            raise ValueError("need >= 1 repetition and >= 2 packets")
        if np.any(self.delays <= 0):
            raise ValueError("access delays must be positive")

    @property
    def repetitions(self) -> int:
        """Number of repetitions (rows)."""
        return self.delays.shape[0]

    @property
    def n_packets(self) -> int:
        """Train length (columns)."""
        return self.delays.shape[1]

    def mean_profile(self) -> np.ndarray:
        """E[mu_i] per packet index (figure 6's curve)."""
        return self.delays.mean(axis=0)

    def index_sample(self, index: int) -> np.ndarray:
        """All repetitions of packet ``index`` (0-based)."""
        return self.delays[:, index]

    def steady_state_sample(self, tail_start: Optional[int] = None) -> np.ndarray:
        """Pooled access delays of the trailing packets.

        The paper pools the last 500 packets of 1000-packet trains;
        by default the last half of the train is pooled.
        """
        if tail_start is None:
            tail_start = self.n_packets // 2
        if not 0 < tail_start < self.n_packets:
            raise ValueError(
                f"tail_start must be in (0, {self.n_packets}), got {tail_start}")
        return self.delays[:, tail_start:].ravel()

    def steady_state_mean(self, tail_start: Optional[int] = None) -> float:
        """Mean of the pooled steady-state sample."""
        return float(np.mean(self.steady_state_sample(tail_start)))


@dataclass
class KSProfile:
    """KS statistic of each packet index against the steady state."""

    ks_values: np.ndarray
    threshold: float
    alpha: float
    tail_start: int

    @property
    def settled_index(self) -> int:
        """First index from which the KS value stays below threshold.

        Returns ``len(ks_values)`` if the profile never settles.
        """
        below = self.ks_values <= self.threshold
        for start in range(len(below)):
            if below[start:].all():
                return start
        return len(self.ks_values)


def ks_profile(matrix: DelayMatrix, tail_start: Optional[int] = None,
               alpha: float = 0.05,
               max_index: Optional[int] = None,
               method: str = "plain") -> KSProfile:
    """Compare each packet index's delay distribution to steady state.

    For every index ``i`` (up to ``max_index``), the sample
    ``delays[:, i]`` is KS-tested against the pooled tail distribution.
    The reported threshold is the 95% (``alpha = 0.05``) two-sample
    acceptance line.

    ``method`` selects the statistic: ``"plain"`` (default) is the
    ordinary two-sample KS distance between the two empirical CDFs;
    ``"interpolated"`` is the paper's footnote-2 procedure (linearly
    interpolate the reference).  The interpolated variant has a floor
    of half the atom mass when the access-delay distribution contains a
    deterministic atom (immediate channel access at low probing rates),
    so the plain statistic is the safer default.
    """
    if tail_start is None:
        tail_start = matrix.n_packets // 2
    if method not in ("plain", "interpolated"):
        raise ValueError(f"unknown method {method!r}")
    reference = matrix.steady_state_sample(tail_start)
    limit = max_index if max_index is not None else tail_start
    limit = min(limit, matrix.n_packets)
    values = np.empty(limit)
    for i in range(limit):
        if method == "plain":
            values[i] = ks_distance(matrix.index_sample(i), reference)
        else:
            result: KSResult = ks_2samp_interpolated(
                matrix.index_sample(i), reference, alpha=alpha)
            values[i] = result.statistic
    threshold = ks_threshold(matrix.repetitions, len(reference), alpha)
    return KSProfile(ks_values=values, threshold=threshold, alpha=alpha,
                     tail_start=tail_start)


@dataclass
class TransientDuration:
    """Tolerance-based transient length (figure 10's estimator)."""

    n_packets: int
    tolerance: float
    steady_mean: float
    settled: bool

    def __str__(self) -> str:  # pragma: no cover - display helper
        state = "settled" if self.settled else "not settled"
        return (f"transient of {self.n_packets} packets "
                f"(tolerance {self.tolerance}, {state})")


def transient_duration(mean_profile: Sequence[float], tolerance: float = 0.1,
                       steady_mean: Optional[float] = None,
                       sustained: bool = True) -> TransientDuration:
    """First packet whose mean access delay is within ``tolerance``.

    Implements the estimator of section 4.1: the transient length is
    the (1-based) index of the first packet whose average access delay
    lies within ``tolerance`` (relative) of the steady-state average.

    Parameters
    ----------
    mean_profile:
        Per-index mean access delays E[mu_i].
    steady_mean:
        Steady-state mean; pooled second half of the profile if omitted.
    sustained:
        When true (default) the index must *stay* within tolerance for
        the rest of the profile, which is robust to noisy profiles from
        few repetitions; when false the paper's literal first-hit rule
        is used.
    """
    profile = np.asarray(mean_profile, dtype=float)
    if len(profile) < 4:
        raise ValueError("profile too short")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if steady_mean is None:
        steady_mean = float(np.mean(profile[len(profile) // 2:]))
    if steady_mean <= 0:
        raise ValueError("steady-state mean must be positive")
    within = np.abs(profile - steady_mean) <= tolerance * steady_mean
    if sustained:
        for start in range(len(within)):
            if within[start:].all():
                return TransientDuration(n_packets=start + 1,
                                         tolerance=tolerance,
                                         steady_mean=steady_mean,
                                         settled=True)
        return TransientDuration(n_packets=len(profile), tolerance=tolerance,
                                 steady_mean=steady_mean, settled=False)
    hits = np.where(within)[0]
    if len(hits) == 0:
        return TransientDuration(n_packets=len(profile), tolerance=tolerance,
                                 steady_mean=steady_mean, settled=False)
    return TransientDuration(n_packets=int(hits[0]) + 1, tolerance=tolerance,
                             steady_mean=steady_mean, settled=True)
