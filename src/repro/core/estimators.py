"""Dispersion-based bandwidth estimators.

These are the measurement tools whose behaviour on CSMA/CA links the
paper analyzes:

* :func:`packet_pair_capacity` — the classic packet-pair capacity
  estimator [Dovrolis et al.]: ``C_hat = L / E[dispersion]`` over many
  pairs.  Section 7.3 shows it targets (and overestimates) the
  *achievable throughput*, not the capacity, on WLAN links;
* :func:`train_dispersion_rate` — ``L / E[g_O]`` over many trains at a
  fixed input rate (one point of a rate-response curve);
* :func:`rate_response_from_measurements` — a full measured
  rate-response curve;
* :func:`achievable_throughput` — equation (2) applied to a measured
  curve.

Every estimator consumes :class:`repro.core.dispersion.TrainMeasurement`
objects — pure timestamp data — so the same code path runs on the DCF
simulator, on the emulated testbed, or on timestamps captured by a real
prober.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.dispersion import TrainBatch, TrainMeasurement
from repro.analytic.metrics import achievable_throughput_from_curve

#: Either form of a repetition batch: a list of per-train
#: measurements, or one dense 2-D :class:`TrainBatch`.
Measurements = Union[Sequence[TrainMeasurement], TrainBatch]


def _check_measurements(measurements: Measurements) -> None:
    if isinstance(measurements, TrainBatch):
        return
    if len(measurements) == 0:
        raise ValueError("need at least one measurement")
    sizes = {m.size_bytes for m in measurements}
    if len(sizes) != 1:
        raise ValueError(f"mixed probe sizes {sorted(sizes)}")


def _size_and_count(measurements: Measurements) -> tuple:
    """``(probe size, repetition count)`` of either batch form."""
    if isinstance(measurements, TrainBatch):
        return measurements.size_bytes, measurements.repetitions
    return measurements[0].size_bytes, len(measurements)


def packet_pair_capacity(measurements: Measurements) -> float:
    """Packet-pair estimate ``L / E[dispersion]`` over many pairs.

    Accepts trains of any length but only uses the first two packets of
    each (a pure pair probe).  On a FIFO link with no cross-traffic the
    estimate equals the capacity C; on a CSMA/CA link it tracks — and
    overestimates — the achievable throughput B (figure 16).  A
    :class:`~repro.core.dispersion.TrainBatch` is reduced with one
    column subtraction instead of a per-pair loop.
    """
    _check_measurements(measurements)
    if isinstance(measurements, TrainBatch):
        dispersions = measurements.recv_times[:, 1] \
            - measurements.recv_times[:, 0]
    else:
        dispersions = [float(m.recv_times[1] - m.recv_times[0])
                       for m in measurements]
    mean_dispersion = float(np.mean(dispersions))
    if mean_dispersion <= 0:
        raise ValueError("mean pair dispersion must be positive")
    return _size_and_count(measurements)[0] * 8 / mean_dispersion


def train_dispersion_rate(measurements: Measurements) -> float:
    """``L / E[g_O]``: the dispersion rate at one probing rate.

    The expectation is the sample mean of the train-level output gaps
    over the ``m`` repetitions (the paper's limiting average
    ``E[g_O]``); a :class:`~repro.core.dispersion.TrainBatch` computes
    every gap in one vectorized pass.
    """
    _check_measurements(measurements)
    if isinstance(measurements, TrainBatch):
        gaps = measurements.output_gaps
    else:
        gaps = [m.output_gap for m in measurements]
    mean_gap = float(np.mean(gaps))
    if mean_gap <= 0:
        raise ValueError("mean output gap must be positive")
    return _size_and_count(measurements)[0] * 8 / mean_gap


def mean_output_rate(measurements: Measurements,
                     horizon_from_first_send: bool = False) -> float:
    """Throughput-style output rate ``r_o`` of the probing flow.

    By default this is the per-train received rate
    ``(n-1) L / (d_n - d_1)`` averaged over trains — equivalent to
    ``L / E[g_O]`` when gaps concentrate.  With
    ``horizon_from_first_send`` the denominator starts at ``a_1``,
    which matches a long-train throughput measurement.
    """
    _check_measurements(measurements)
    if isinstance(measurements, TrainBatch):
        recv = measurements.recv_times
        start = (measurements.send_times[:, 0] if horizon_from_first_send
                 else recv[:, 0])
        spans = recv[:, -1] - start
        if np.any(spans <= 0):
            raise ValueError("non-positive train span")
        rates = ((measurements.n - 1) * measurements.size_bytes * 8
                 / spans)
        return float(np.mean(rates))
    rates = []
    for m in measurements:
        start = m.send_times[0] if horizon_from_first_send else m.recv_times[0]
        span = m.recv_times[-1] - start
        if span <= 0:
            raise ValueError("non-positive train span")
        rates.append((m.n - 1) * m.size_bytes * 8 / span)
    return float(np.mean(rates))


@dataclass
class RateResponseCurve:
    """A measured rate-response curve.

    ``input_rates`` and ``output_rates`` are aligned arrays in bit/s;
    ``output_rates`` are dispersion rates ``L/E[g_O]`` unless stated
    otherwise by the producer.
    """

    input_rates: np.ndarray
    output_rates: np.ndarray
    size_bytes: int
    trains_per_rate: int

    def __post_init__(self) -> None:
        self.input_rates = np.asarray(self.input_rates, dtype=float)
        self.output_rates = np.asarray(self.output_rates, dtype=float)
        if self.input_rates.shape != self.output_rates.shape:
            raise ValueError("curve arrays must be aligned")

    def achievable_throughput(self, tolerance: float = 0.05) -> float:
        """Equation (2) evaluated on this curve."""
        return achievable_throughput_from_curve(
            self.input_rates, self.output_rates, tolerance)

    def knee_rate(self, tolerance: float = 0.05) -> float:
        """First probed rate where the curve departs from the diagonal."""
        conforming = self.output_rates / self.input_rates >= 1.0 - tolerance
        departing = np.where(~conforming)[0]
        if len(departing) == 0:
            return float(self.input_rates[-1])
        return float(self.input_rates[departing[0]])


def rate_response_from_measurements(
        by_rate: Dict[float, Measurements]) -> RateResponseCurve:
    """Assemble a :class:`RateResponseCurve` from grouped measurements.

    ``by_rate`` maps the nominal probing input rate (bit/s) to the
    repeated train measurements taken at that rate.
    """
    if not by_rate:
        raise ValueError("no measurements")
    rates = sorted(by_rate)
    outputs: List[float] = []
    sizes = set()
    counts = set()
    for rate in rates:
        measurements = by_rate[rate]
        _check_measurements(measurements)
        outputs.append(train_dispersion_rate(measurements))
        size, count = _size_and_count(measurements)
        sizes.add(size)
        counts.add(count)
    if len(sizes) != 1:
        raise ValueError(f"mixed probe sizes {sorted(sizes)}")
    return RateResponseCurve(
        input_rates=np.array(rates, dtype=float),
        output_rates=np.array(outputs, dtype=float),
        size_bytes=sizes.pop(),
        trains_per_rate=min(counts),
    )


def achievable_throughput(by_rate: Dict[float, Measurements],
                          tolerance: float = 0.05) -> float:
    """Equation (2) straight from grouped measurements."""
    return rate_response_from_measurements(by_rate).achievable_throughput(
        tolerance)
