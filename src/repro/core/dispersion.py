"""Dispersion data model.

A dispersion-based tool only ever sees two timestamp sequences: the
send instants ``a_i`` (sender side) and the receive instants ``d_i``
(receiver side).  :class:`TrainMeasurement` wraps one probing train's
worth of those and exposes the quantities of section 5: the input gap
``g_I``, the output gap ``g_O = (d_n - d_1)/(n-1)`` (equation (16)),
per-packet dispersions, and rates ``L/g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def output_gap(departures: Sequence[float]) -> float:
    """Equation (16): g_O = (d_n - d_1) / (n - 1)."""
    d = np.asarray(departures, dtype=float)
    if len(d) < 2:
        raise ValueError("need at least two departures")
    if np.any(np.diff(d) < 0):
        raise ValueError("departures must be non-decreasing")
    return float((d[-1] - d[0]) / (len(d) - 1))


def output_gaps_batch(departures: np.ndarray) -> np.ndarray:
    """Equation (16) over a ``(repetitions, n)`` departure batch.

    Row ``r`` is one train's receive instants; the result is the
    per-train output gap vector, computed in one array operation
    instead of one :func:`output_gap` call per repetition.
    """
    d = np.asarray(departures, dtype=float)
    if d.ndim != 2:
        raise ValueError("expected a 2-D (repetitions, n) array")
    if d.shape[1] < 2:
        raise ValueError("need at least two departures per train")
    if np.any(np.diff(d, axis=1) < -1e-12):
        raise ValueError("departures must be non-decreasing")
    return (d[:, -1] - d[:, 0]) / (d.shape[1] - 1)


@dataclass(frozen=True)
class TrainMeasurement:
    """Timestamps of one probing train.

    Attributes
    ----------
    send_times:
        Sender-side timestamps ``a_i`` (seconds).
    recv_times:
        Receiver-side timestamps ``d_i``.  A constant clock offset
        between the two hosts cancels out of every dispersion-based
        quantity (only differences of same-host timestamps are used).
    size_bytes:
        Probe packet size L.
    """

    send_times: np.ndarray
    recv_times: np.ndarray
    size_bytes: int

    def __post_init__(self) -> None:
        send = np.asarray(self.send_times, dtype=float)
        recv = np.asarray(self.recv_times, dtype=float)
        object.__setattr__(self, "send_times", send)
        object.__setattr__(self, "recv_times", recv)
        if send.shape != recv.shape or send.ndim != 1:
            raise ValueError("timestamp arrays must be equal-length 1-D")
        if len(send) < 2:
            raise ValueError("a train needs at least two packets")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")
        if np.any(np.diff(send) < -1e-12):
            raise ValueError("send times must be non-decreasing")
        if np.any(np.diff(recv) < -1e-12):
            raise ValueError("receive times must be non-decreasing")

    @property
    def n(self) -> int:
        """Number of packets in the train."""
        return len(self.send_times)

    @property
    def input_gap(self) -> float:
        """Mean input gap g_I (exact for periodic trains)."""
        return float((self.send_times[-1] - self.send_times[0]) / (self.n - 1))

    @property
    def output_gap(self) -> float:
        """Equation (16): (d_n - d_1)/(n - 1)."""
        return output_gap(self.recv_times)

    @property
    def input_gaps(self) -> np.ndarray:
        """Per-packet input gaps a_{i+1} - a_i."""
        return np.diff(self.send_times)

    @property
    def output_gaps(self) -> np.ndarray:
        """Per-packet dispersions d_{i+1} - d_i (MSER operates on these)."""
        return np.diff(self.recv_times)

    @property
    def input_rate(self) -> float:
        """r_i = L / g_I (inf for back-to-back pairs)."""
        gap = self.input_gap
        if gap == 0:
            return float("inf")
        return self.size_bytes * 8 / gap

    @property
    def output_rate(self) -> float:
        """L / g_O, the dispersion-based rate estimate for this train."""
        gap = self.output_gap
        if gap <= 0:
            raise ValueError("output gap must be positive")
        return self.size_bytes * 8 / gap

    @property
    def one_way_delays(self) -> np.ndarray:
        """d_i - a_i (meaningful only up to the host clock offset)."""
        return self.recv_times - self.send_times


@dataclass(frozen=True)
class TrainBatch:
    """Timestamps of a whole repetition batch of probing trains.

    The dense, 2-D counterpart of a list of
    :class:`TrainMeasurement`: row ``r`` holds the send/receive
    instants of repetition ``r``.  Estimators in
    :mod:`repro.core.estimators` accept either form and compute the
    batch variant with array arithmetic instead of a per-train loop;
    the two paths produce identical values because every per-train
    quantity is the same expression evaluated row-wise.

    Conforms to :class:`repro.core.batch.RepetitionBatch`: ``per_rep``
    and ``concat`` slice and fold row-wise, so chunked execution can
    stream train batches through the same estimator call sites.
    """

    send_times: np.ndarray
    recv_times: np.ndarray
    size_bytes: int

    def __post_init__(self) -> None:
        send = np.asarray(self.send_times, dtype=float)
        recv = np.asarray(self.recv_times, dtype=float)
        object.__setattr__(self, "send_times", send)
        object.__setattr__(self, "recv_times", recv)
        if send.shape != recv.shape or send.ndim != 2:
            raise ValueError("timestamp arrays must be equal-shape 2-D")
        if send.shape[0] < 1 or send.shape[1] < 2:
            raise ValueError("need >= 1 repetition of >= 2 packets")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")
        if np.any(np.diff(send, axis=1) < -1e-12):
            raise ValueError("send times must be non-decreasing")
        if np.any(np.diff(recv, axis=1) < -1e-12):
            raise ValueError("receive times must be non-decreasing")

    @property
    def repetitions(self) -> int:
        """Number of trains in the batch (rows)."""
        return self.send_times.shape[0]

    @property
    def n(self) -> int:
        """Packets per train (columns)."""
        return self.send_times.shape[1]

    @property
    def output_gaps(self) -> np.ndarray:
        """Per-train output gap vector (equation (16), row-wise)."""
        return output_gaps_batch(self.recv_times)

    @classmethod
    def from_measurements(cls,
                          measurements: Sequence["TrainMeasurement"],
                          ) -> "TrainBatch":
        """Stack equal-length measurements into one dense batch."""
        if len(measurements) == 0:
            raise ValueError("need at least one measurement")
        sizes = {m.size_bytes for m in measurements}
        if len(sizes) != 1:
            raise ValueError(f"mixed probe sizes {sorted(sizes)}")
        lengths = {m.n for m in measurements}
        if len(lengths) != 1:
            raise ValueError(f"mixed train lengths {sorted(lengths)}")
        return cls(
            send_times=np.vstack([m.send_times for m in measurements]),
            recv_times=np.vstack([m.recv_times for m in measurements]),
            size_bytes=sizes.pop(),
        )

    def measurements(self) -> list:
        """The batch as per-train :class:`TrainMeasurement` objects."""
        return [TrainMeasurement(send_times=self.send_times[r],
                                 recv_times=self.recv_times[r],
                                 size_bytes=self.size_bytes)
                for r in range(self.repetitions)]

    def per_rep(self) -> list:
        """The batch as single-repetition ``TrainBatch`` objects."""
        return [TrainBatch(send_times=self.send_times[r:r + 1],
                           recv_times=self.recv_times[r:r + 1],
                           size_bytes=self.size_bytes)
                for r in range(self.repetitions)]

    @classmethod
    def concat(cls, parts: Sequence["TrainBatch"]) -> "TrainBatch":
        """Fold row-compatible batches into one, preserving row order."""
        if len(parts) == 0:
            raise ValueError("concat needs at least one part")
        if len({part.n for part in parts}) != 1:
            raise ValueError("cannot concat batches with different "
                             "train lengths")
        if len({part.size_bytes for part in parts}) != 1:
            raise ValueError("cannot concat batches with different "
                             "packet sizes")
        return cls(
            send_times=np.concatenate([p.send_times for p in parts]),
            recv_times=np.concatenate([p.recv_times for p in parts]),
            size_bytes=parts[0].size_bytes,
        )


def decompose_output_gap(input_gap: float, access_delays: np.ndarray,
                         residual_last: float, workload_first: float,
                         workload_last: float) -> float:
    """Equation (18): reconstruct g_O from the sample-path processes.

    ``g_O = g_I + R_n/(n-1) + (W(a_n) - W(a_1))/(n-1) + (mu_n - mu_1)/(n-1)``

    Used by the framework-consistency tests: the value must equal the
    directly measured ``(d_n - d_1)/(n-1)`` on every sample path.
    """
    mu = np.asarray(access_delays, dtype=float)
    if len(mu) < 2:
        raise ValueError("need at least two packets")
    if input_gap < 0:
        raise ValueError(f"input gap must be non-negative, got {input_gap}")
    n = len(mu)
    return (input_gap
            + residual_last / (n - 1)
            + (workload_last - workload_first) / (n - 1)
            + (mu[-1] - mu[0]) / (n - 1))
