"""TOPP — regression-based available-bandwidth estimation.

Melander, Bjorkman & Gunningberg (reference [13] of the paper) probe a
path at increasing rates and regress the *rate ratio* ``r_i / r_o``
against ``r_i``.  On a FIFO hop, equation (1) makes the loaded segment
linear::

    r_i / r_o = (r_i + C - A) / C = r_i / C + (C - A) / C

so the slope is ``1/C`` and the intercept ``(C - A)/C`` — one
regression returns both the capacity and the available bandwidth.

Applied to a CSMA/CA link, the complete rate response (equation (4))
gives, above B::

    r_i / r_o = (r_i + u_fifo Bf) / Bf = r_i / Bf + u_fifo

TOPP's "capacity" estimate is therefore the *fair share* ``Bf`` and its
"available bandwidth" estimate is ``Bf (1 - u_fifo) = B`` — the
achievable throughput.  This is the sharpest form of the paper's
section-7.2 claim, and :func:`topp_estimate` makes it measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.estimators import RateResponseCurve


@dataclass
class ToppEstimate:
    """Outcome of a TOPP regression.

    On FIFO paths ``capacity_bps``/``available_bps`` estimate C and A;
    on CSMA/CA paths they estimate Bf and B (see module docstring).
    """

    capacity_bps: float
    available_bps: float
    slope: float
    intercept: float
    segment_start: int
    n_points: int

    @property
    def utilization(self) -> float:
        """The regression intercept — u_fifo on a CSMA/CA link."""
        return self.intercept


def topp_estimate(curve: RateResponseCurve,
                  deviation_threshold: float = 1.05,
                  min_points: int = 3) -> ToppEstimate:
    """Run the TOPP regression on a measured rate-response curve.

    Parameters
    ----------
    curve:
        A rate scan (input rates strictly increasing).
    deviation_threshold:
        Points with ``r_i / r_o`` above this enter the loaded segment.
    min_points:
        Minimum loaded points required for the regression.

    Raises
    ------
    ValueError
        If fewer than ``min_points`` probed rates show congestion —
        probe at higher rates.
    """
    ri = np.asarray(curve.input_rates, dtype=float)
    ro = np.asarray(curve.output_rates, dtype=float)
    if np.any(np.diff(ri) <= 0):
        raise ValueError("input rates must be strictly increasing")
    if np.any(ro <= 0):
        raise ValueError("output rates must be positive")
    ratio = ri / ro
    loaded = np.where(ratio >= deviation_threshold)[0]
    if len(loaded) < min_points:
        raise ValueError(
            f"only {len(loaded)} loaded points (need {min_points}); "
            "probe at higher rates")
    # Use the contiguous tail starting at the first loaded point: TOPP
    # fits the asymptotic segment, and isolated early outliers would
    # bias the slope.
    start = int(loaded[0])
    xs = ri[start:]
    ys = ratio[start:]
    slope, intercept = np.polyfit(xs, ys, 1)
    if slope <= 0:
        raise ValueError(
            f"non-positive regression slope {slope:.3g}; the curve does "
            "not bend like a shared queue")
    capacity = 1.0 / slope
    available = capacity * (1.0 - intercept)
    return ToppEstimate(
        capacity_bps=float(capacity),
        available_bps=float(np.clip(available, 0.0, capacity)),
        slope=float(slope),
        intercept=float(intercept),
        segment_start=start,
        n_points=len(xs),
    )


def topp_from_prober(prober, rates_bps, n: int = 50,
                     repetitions: Optional[int] = None,
                     deviation_threshold: float = 1.05,
                     seed: int = 0) -> ToppEstimate:
    """Convenience: rate-scan with a prober, then regress."""
    curve = prober.rate_scan(rates_bps, n=n, repetitions=repetitions,
                             seed=seed)
    return topp_estimate(curve, deviation_threshold=deviation_threshold)
