"""The ``RepetitionBatch`` protocol and chunk-folding reducers.

Every dense batch object in the repository — ``TrainBatch``
(:mod:`repro.core.dispersion`), ``ProbeBatchResult`` /
``SteadyBatchResult`` / ``QueueTraceBatch``
(:mod:`repro.sim.probe_vector`) and ``VectorBatchResult``
(:mod:`repro.sim.vector`) — carries one repetition per row and keeps
every scalar configuration (packet size, window, station count) equal
across rows.  :class:`RepetitionBatch` freezes that shared shape into
a structural protocol:

* ``repetitions`` — the row count;
* ``per_rep()`` — the batch as single-repetition objects of the same
  class;
* ``concat(parts)`` — the inverse: fold row-compatible batches back
  into one (``concat(list(b.per_rep()))`` round-trips ``b``).

The protocol is *structural* (:func:`typing.runtime_checkable`) on
purpose: the simulation kernels sit below this layer and must not
import it — they conform by shape alone, and the chunked execution
path in :mod:`repro.backends.base` folds chunk results through the
duck-typed ``concat`` without importing this module either.

``concat`` is what makes streaming execution bit-identical: a chunked
run produces exactly the rows a dense run would (same per-repetition
seeds, see :func:`resolve_rep_seeds`), so folding chunks row-wise
reconstructs the dense batch exactly.  The reducers below trade that
dense reconstruction for ``O(chunk)`` peak memory: each folds a chunk
into a per-repetition *reduced* quantity (an output gap, delivered
bits, a reservoir sample) and discards the chunk's matrices.  They
never re-reduce across chunks in floating point — per-repetition
values are computed once, inside the chunk that owns them, and only
concatenated — so dense and chunked estimator inputs stay
bit-identical (the reservoir sampler is the one deliberate exception:
its sample is random, pinned distributionally, not bit-wise).
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class RepetitionBatch(Protocol):
    """Structural protocol of every dense repetition-batch object.

    Implementations keep one repetition per row and all scalar
    configuration equal across rows; ``concat`` requires that equality
    and raises ``ValueError`` on mismatch.
    """

    @property
    def repetitions(self) -> int:
        """Number of repetitions in the batch (rows)."""
        ...

    def per_rep(self) -> List["RepetitionBatch"]:
        """The batch as single-repetition objects of the same class."""
        ...

    @classmethod
    def concat(cls, parts: Sequence["RepetitionBatch"]
               ) -> "RepetitionBatch":
        """Fold row-compatible batches into one, preserving row order."""
        ...


def resolve_rep_seeds(seed: int, repetitions: int) -> np.ndarray:
    """The canonical per-repetition seeds of a batch, as an array.

    The same ``SeedSequence(seed).generate_state(repetitions)`` scheme
    as :func:`repro.runtime.executor.derive_seeds` (and the derivation
    every vector kernel applies internally), exposed at this layer so
    chunked callers can slice it: ``resolve_rep_seeds(seed, n)[lo:hi]``
    is exactly the seed slice a dense run would hand repetitions
    ``lo..hi-1``, which is what makes chunk boundaries invisible to
    the random universe a repetition index maps to.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    return np.random.SeedSequence(seed).generate_state(repetitions)


def chunk_bounds(repetitions: int, chunk_reps: int) -> List[tuple]:
    """Contiguous ``[lo, hi)`` repetition ranges of size ``chunk_reps``.

    The final chunk absorbs the remainder (it may be smaller); chunk
    sizes at or above ``repetitions`` yield the single dense range.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if chunk_reps < 1:
        raise ValueError(f"chunk_reps must be >= 1, got {chunk_reps}")
    return [(lo, min(lo + chunk_reps, repetitions))
            for lo in range(0, repetitions, chunk_reps)]


class ChunkReducer:
    """Base class of online chunk reducers.

    The vector backend's chunk loop calls :meth:`update` once per
    chunk, in repetition order, and :meth:`finalize` once at the end.
    Subclasses accumulate per-repetition *reduced* quantities (never
    the chunk matrices themselves), so peak memory is the largest
    chunk plus ``O(repetitions)`` of reduced values.
    """

    def update(self, batch, lo: int, hi: int) -> None:
        """Fold one chunk covering repetitions ``[lo, hi)``."""
        raise NotImplementedError

    def finalize(self):
        """The reduced value over every repetition seen."""
        raise NotImplementedError


class ConcatReducer(ChunkReducer):
    """The dense default: keep every chunk, fold with ``concat``.

    Memory is ``O(repetitions)`` matrices — no saving over a dense run
    — but the folded result is bit-identical to it, which is what the
    chunked-vs-dense identity pins compare through.
    """

    def __init__(self) -> None:
        self._parts: List[object] = []

    def update(self, batch, lo: int, hi: int) -> None:
        """Keep the chunk for the final fold."""
        self._parts.append(batch)

    def finalize(self):
        """``concat`` over the collected chunks (one chunk passes
        through untouched, preserving the dense path's object)."""
        if not self._parts:
            raise ValueError("no chunks were reduced")
        if len(self._parts) == 1:
            return self._parts[0]
        return type(self._parts[0]).concat(self._parts)


class OutputGapReducer(ChunkReducer):
    """Per-repetition output gaps, streamed over the TrainBatch seam.

    Folds each chunk through equation (16)
    (:func:`repro.core.dispersion.output_gaps_batch` — any batch with
    a ``recv_times`` matrix qualifies: ``TrainBatch`` or
    ``ProbeBatchResult``) and keeps only the resulting
    ``(chunk,)`` gap vectors.  ``finalize`` concatenates them into the
    exact per-repetition gap vector a dense run would compute — the
    quantity every dispersion/rate-response estimator starts from —
    at ``O(repetitions)`` floats instead of ``O(repetitions * n)``
    timestamps.
    """

    def __init__(self) -> None:
        self._gaps: List[np.ndarray] = []

    def update(self, batch, lo: int, hi: int) -> None:
        """Reduce the chunk's receive matrix to its gap vector."""
        from repro.core.dispersion import output_gaps_batch
        self._gaps.append(output_gaps_batch(batch.recv_times))

    def finalize(self) -> np.ndarray:
        """The ``(repetitions,)`` per-train output gap vector."""
        if not self._gaps:
            raise ValueError("no chunks were reduced")
        return np.concatenate(self._gaps)


class ThroughputReducer(ChunkReducer):
    """Delivered-bits accumulation over the steady-state seam.

    Each ``SteadyBatchResult`` chunk already carries per-repetition
    delivered bits (scalars per flow per repetition); this reducer
    keeps exactly those and the window metadata, dropping queue traces
    and every intermediate matrix.  ``finalize`` rebuilds a
    ``SteadyBatchResult`` whose throughput accessors are bit-identical
    to the dense run's.
    """

    def __init__(self) -> None:
        self._parts: List[object] = []

    def update(self, batch, lo: int, hi: int) -> None:
        """Keep only the chunk's per-repetition bit counters."""
        slim = type(batch)(
            probe_bits=batch.probe_bits, fifo_bits=batch.fifo_bits,
            cross_bits=batch.cross_bits, warmup=batch.warmup,
            duration=batch.duration, size_bytes=batch.size_bytes)
        self._parts.append(slim)

    def finalize(self):
        """One ``SteadyBatchResult`` over every repetition seen."""
        if not self._parts:
            raise ValueError("no chunks were reduced")
        return type(self._parts[0]).concat(self._parts)


class ReservoirSampleReducer(ChunkReducer):
    """Streaming uniform sample for KS/histogram consumers.

    Keeps a bottom-``k`` sketch: every incoming value draws a uniform
    key and the ``k`` smallest keys survive, which is an exact uniform
    ``k``-sample of the stream and merges chunk by chunk in
    ``O(k + chunk)``.  The sample is *random* — deterministic for a
    fixed ``seed`` and chunking, but not bit-identical to any dense
    quantity — so consumers pin it distributionally (KS), never
    element-wise.  Non-finite values (the NaN padding of retry-dropped
    packets) are excluded, matching ``pooled_access_delays``.
    """

    def __init__(self, k: int, seed: int = 0,
                 values=lambda batch: batch.delay_matrix()) -> None:
        if k < 1:
            raise ValueError(f"reservoir size must be >= 1, got {k}")
        self._k = k
        self._rng = np.random.default_rng(seed)
        self._values = values
        self._keys = np.empty(0)
        self._sample = np.empty(0)

    def update(self, batch, lo: int, hi: int) -> None:
        """Offer the chunk's (finite) values to the reservoir."""
        values = np.asarray(self._values(batch), dtype=float).ravel()
        values = values[np.isfinite(values)]
        keys = self._rng.random(len(values))
        self._keys = np.concatenate([self._keys, keys])
        self._sample = np.concatenate([self._sample, values])
        if len(self._keys) > self._k:
            keep = np.argpartition(self._keys, self._k)[:self._k]
            self._keys = self._keys[keep]
            self._sample = self._sample[keep]

    def finalize(self) -> np.ndarray:
        """The reservoir (at most ``k`` values, stream order lost)."""
        return self._sample.copy()


def iter_chunks(items: Iterable, chunk_reps: int) -> Iterable[list]:
    """Group an iterable into lists of ``chunk_reps`` items.

    Convenience for event-path consumers that want chunk-shaped
    folding over per-repetition results; the final list may be short.
    """
    if chunk_reps < 1:
        raise ValueError(f"chunk_reps must be >= 1, got {chunk_reps}")
    block: list = []
    for item in items:
        block.append(item)
        if len(block) == chunk_reps:
            yield block
            block = []
    if block:
        yield block
