"""The paper's contribution as a usable measurement library.

* :mod:`repro.core.dispersion` — timestamp-level dispersion data model:
  a :class:`TrainMeasurement` holds the send/receive timestamps of one
  probing train; everything else is computed from it (strictly
  network-layer, like the paper's tools);
* :mod:`repro.core.estimators` — packet-pair capacity estimation, train
  dispersion rates, rate-response scans and the achievable-throughput
  estimator of equation (2);
* :mod:`repro.core.transient` — transient-state analysis of access
  delays: per-index mean profiles, KS-vs-steady-state profiles
  (figures 6–9) and tolerance-based transient durations (figure 10);
* :mod:`repro.core.correction` — the paper's bias-correction method:
  MSER-m truncation of dispersion samples (figure 17).
"""

from repro.core.dispersion import (
    TrainMeasurement,
    decompose_output_gap,
    output_gap,
)
from repro.core.estimators import (
    RateResponseCurve,
    achievable_throughput,
    packet_pair_capacity,
    rate_response_from_measurements,
    train_dispersion_rate,
)
from repro.core.transient import (
    DelayMatrix,
    KSProfile,
    TransientDuration,
    ks_profile,
    transient_duration,
)
from repro.core.tools import (
    IterativeProbeResult,
    IterativeProbeTool,
    slops_trend,
)
from repro.core.correction import (
    CorrectedMeasurement,
    mser_corrected_gap,
    mser_corrected_rate,
)

__all__ = [
    "IterativeProbeResult",
    "IterativeProbeTool",
    "slops_trend",
    "CorrectedMeasurement",
    "DelayMatrix",
    "KSProfile",
    "RateResponseCurve",
    "TrainMeasurement",
    "TransientDuration",
    "achievable_throughput",
    "decompose_output_gap",
    "ks_profile",
    "mser_corrected_gap",
    "mser_corrected_rate",
    "output_gap",
    "packet_pair_capacity",
    "rate_response_from_measurements",
    "train_dispersion_rate",
    "transient_duration",
]
