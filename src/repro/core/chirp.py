"""pathChirp-style exponentially spaced probe chirps.

Ribeiro et al. (reference [19] of the paper) probe with *chirps*:
trains whose inter-packet gap shrinks geometrically, so a single train
sweeps a whole range of instantaneous rates.  The receiver looks at the
relative one-way delays: once the instantaneous rate passes the
turning point, queueing delay builds up and the delay signature starts
an *excursion* that does not recover.

On a CSMA/CA link the turning point a chirp finds is — like every other
dispersion tool — the achievable throughput, and because a chirp's
high-rate tail is short (few packets per rate), it is particularly
exposed to the transient-acceleration bias the paper analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.dispersion import TrainMeasurement
from repro.traffic.packets import Packet


@dataclass(frozen=True)
class ChirpTrain:
    """A probe train with geometrically decreasing gaps.

    The k-th gap is ``initial_gap / spread_factor**k``; instantaneous
    rates therefore sweep ``L/initial_gap`` up to
    ``L/initial_gap * spread_factor**(n-2)``.

    Attributes
    ----------
    n:
        Number of packets (n - 1 gaps).
    initial_gap:
        First (largest) inter-packet gap, seconds.
    spread_factor:
        Geometric gap-shrink factor (pathChirp's gamma), > 1.
    size_bytes:
        Probe packet size L.
    """

    n: int
    initial_gap: float
    spread_factor: float = 1.2
    size_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"a chirp needs at least 3 packets, got {self.n}")
        if self.initial_gap <= 0:
            raise ValueError("initial gap must be positive")
        if self.spread_factor <= 1.0:
            raise ValueError("spread factor must exceed 1")
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")

    @classmethod
    def covering_rates(cls, low_bps: float, high_bps: float,
                       spread_factor: float = 1.2,
                       size_bytes: int = 1500) -> "ChirpTrain":
        """Build a chirp sweeping ``[low_bps, high_bps]``."""
        if not 0 < low_bps < high_bps:
            raise ValueError("need 0 < low < high")
        gaps_needed = int(np.ceil(np.log(high_bps / low_bps)
                                  / np.log(spread_factor))) + 1
        return cls(n=gaps_needed + 1,
                   initial_gap=size_bytes * 8 / low_bps,
                   spread_factor=spread_factor,
                   size_bytes=size_bytes)

    @property
    def gaps(self) -> np.ndarray:
        """The n-1 inter-packet gaps."""
        k = np.arange(self.n - 1)
        return self.initial_gap / self.spread_factor ** k

    @property
    def instantaneous_rates(self) -> np.ndarray:
        """Rate L/g_k carried by each gap."""
        return self.size_bytes * 8 / self.gaps

    @property
    def duration(self) -> float:
        """First-to-last packet arrival span."""
        return float(np.sum(self.gaps))

    def arrival_times(self, start: float = 0.0) -> np.ndarray:
        """Packet emission instants."""
        return start + np.concatenate([[0.0], np.cumsum(self.gaps)])

    def packets(self, start: float = 0.0) -> List[Tuple[float, Packet]]:
        """Materialize the chirp as (time, packet) pairs."""
        return [
            (float(t), Packet(self.size_bytes, flow="probe", seq=i,
                              created_at=float(t)))
            for i, t in enumerate(self.arrival_times(start))
        ]


@dataclass
class ChirpAnalysis:
    """Per-chirp turning-point analysis."""

    turning_rate_bps: float
    turning_index: int
    delays: np.ndarray
    rates: np.ndarray

    @property
    def found_turning_point(self) -> bool:
        """Whether an unrecovered excursion was detected."""
        return self.turning_index < len(self.rates)


def analyze_chirp(measurement: TrainMeasurement, chirp: ChirpTrain,
                  departure_fraction: float = 0.15) -> ChirpAnalysis:
    """Locate the chirp's turning point from one-way delays.

    A simplified pathChirp detector.  Relative one-way delays are
    baselined at their minimum; the *departure level* is
    ``baseline + departure_fraction * (peak - baseline)``.  The turning
    point is the last gap index still at or below the departure level
    from which the delays never drop back below it — the start of the
    final, unrecovered excursion.  If every excursion recovers (or the
    delays are flat), the chirp's maximum rate is reported: the path
    absorbed the whole sweep.
    """
    if measurement.n != chirp.n:
        raise ValueError(
            f"measurement has {measurement.n} packets, chirp {chirp.n}")
    if not 0 < departure_fraction < 1:
        raise ValueError("departure_fraction must be in (0, 1)")
    delays = measurement.one_way_delays
    delays = delays - float(np.min(delays))
    rates = chirp.instantaneous_rates
    n_gaps = len(rates)
    peak = float(np.max(delays))
    threshold = departure_fraction * peak
    start = n_gaps  # sentinel: no turning point
    for i in range(len(delays) - 1, -1, -1):
        if delays[i] <= threshold:
            start = i
            break
    unrecovered = (start < len(delays) - 1
                   and bool(np.all(delays[start + 1:] > threshold)))
    if peak <= 0 or not unrecovered:
        return ChirpAnalysis(
            turning_rate_bps=float(rates[-1]), turning_index=n_gaps,
            delays=delays, rates=rates)
    turning_index = min(start, n_gaps - 1)
    return ChirpAnalysis(
        turning_rate_bps=float(rates[turning_index]),
        turning_index=turning_index,
        delays=delays,
        rates=rates,
    )


def chirp_estimate(measurements: List[TrainMeasurement], chirp: ChirpTrain,
                   departure_fraction: float = 0.15) -> float:
    """Average turning-point rate over repeated chirps."""
    if len(measurements) == 0:
        raise ValueError("need at least one measurement")
    rates = [analyze_chirp(m, chirp, departure_fraction).turning_rate_bps
             for m in measurements]
    return float(np.mean(rates))
