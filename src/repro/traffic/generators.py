"""Cross-traffic generators.

Each generator produces an :class:`ArrivalSchedule` — a finite sequence
of ``(time, Packet)`` pairs over a horizon — which the simulators replay
as arrival events.  The paper's cross-traffic is Poisson (section 2.1);
CBR and on-off generators are provided for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.packets import Packet


@dataclass
class ArrivalSchedule:
    """A finite, time-ordered list of packet arrivals."""

    arrivals: List[Tuple[float, Packet]]

    def __post_init__(self) -> None:
        times = [t for t, _ in self.arrivals]
        if any(t2 < t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("arrival times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[Tuple[float, Packet]]:
        return iter(self.arrivals)

    @property
    def times(self) -> np.ndarray:
        """Arrival instants as an array."""
        return np.array([t for t, _ in self.arrivals], dtype=float)

    @property
    def total_bytes(self) -> int:
        """Sum of packet sizes in the schedule."""
        return sum(p.size_bytes for _, p in self.arrivals)

    def offered_rate_bps(self, horizon: float) -> float:
        """Offered network-layer load over ``horizon`` seconds, in bit/s."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return self.total_bytes * 8 / horizon

    def shifted(self, offset: float) -> "ArrivalSchedule":
        """A copy with every arrival time moved by ``offset``."""
        shifted = [(t + offset, Packet(p.size_bytes, p.flow, p.seq, t + offset))
                   for t, p in self.arrivals]
        return ArrivalSchedule(shifted)


class PoissonGenerator:
    """Poisson packet arrivals at a target bit rate.

    Parameters
    ----------
    rate_bps:
        Offered load in bits per second (network layer).
    size_bytes:
        Fixed packet size; the paper's cross-traffic uses fixed sizes per
        flow (e.g. 1500 B, or the 40/576/1000/1500 B mix of figure 9 —
        build one generator per size).
    flow:
        Flow label stamped on generated packets.
    """

    def __init__(self, rate_bps: float, size_bytes: int = 1500,
                 flow: str = "cross") -> None:
        if rate_bps < 0:
            raise ValueError(f"rate must be non-negative, got {rate_bps}")
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        self.rate_bps = float(rate_bps)
        self.size_bytes = int(size_bytes)
        self.flow = flow

    @property
    def packets_per_second(self) -> float:
        """Mean packet arrival rate (lambda)."""
        return self.rate_bps / (self.size_bytes * 8)

    def generate(self, horizon: float, rng: np.random.Generator,
                 start: float = 0.0) -> ArrivalSchedule:
        """Draw a Poisson sample path over ``[start, start + horizon)``."""
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        lam = self.packets_per_second
        arrivals: List[Tuple[float, Packet]] = []
        if lam <= 0 or horizon == 0:
            return ArrivalSchedule(arrivals)
        # Draw exponential gaps in bulk, extending until the horizon.
        t = start
        end = start + horizon
        batch = max(16, int(lam * horizon * 1.2) + 8)
        while True:
            gaps = rng.exponential(1.0 / lam, size=batch)
            for gap in gaps:
                t += gap
                if t >= end:
                    return ArrivalSchedule(arrivals)
                arrivals.append(
                    (t, Packet(self.size_bytes, self.flow, created_at=t)))


class CBRGenerator:
    """Constant-bit-rate arrivals (periodic packets)."""

    def __init__(self, rate_bps: float, size_bytes: int = 1500,
                 flow: str = "cross", jitter: float = 0.0) -> None:
        if rate_bps < 0:
            raise ValueError(f"rate must be non-negative, got {rate_bps}")
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.rate_bps = float(rate_bps)
        self.size_bytes = int(size_bytes)
        self.flow = flow
        self.jitter = float(jitter)

    @property
    def interval(self) -> float:
        """Inter-packet gap in seconds."""
        if self.rate_bps == 0:
            return float("inf")
        return self.size_bytes * 8 / self.rate_bps

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None,
                 start: float = 0.0) -> ArrivalSchedule:
        """Emit periodic packets over ``[start, start + horizon)``.

        ``rng`` is only needed when ``jitter > 0`` (uniform jitter of up
        to ``jitter`` seconds is added to each nominal instant).
        """
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        if self.rate_bps == 0 or horizon == 0:
            return ArrivalSchedule([])
        interval = self.interval
        count = int(horizon / interval) + 1
        times = start + np.arange(count) * interval
        if self.jitter > 0:
            if rng is None:
                raise ValueError("jitter requires an rng")
            times = times + rng.uniform(0, self.jitter, size=count)
            times.sort()
        arrivals = [(float(t), Packet(self.size_bytes, self.flow, created_at=float(t)))
                    for t in times if t < start + horizon]
        return ArrivalSchedule(arrivals)


class OnOffGenerator:
    """Exponential on-off bursty traffic.

    During ON periods packets are emitted as CBR at ``peak_rate_bps``;
    ON and OFF period lengths are exponential.  Used by the sensitivity
    benches to study how cross-traffic burstiness loosens the dispersion
    bounds (section 6.3.2 of the paper).
    """

    def __init__(self, peak_rate_bps: float, mean_on: float, mean_off: float,
                 size_bytes: int = 1500, flow: str = "cross") -> None:
        if peak_rate_bps <= 0:
            raise ValueError(f"peak rate must be positive, got {peak_rate_bps}")
        if mean_on <= 0 or mean_off < 0:
            raise ValueError("mean_on must be > 0 and mean_off >= 0")
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        self.peak_rate_bps = float(peak_rate_bps)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.size_bytes = int(size_bytes)
        self.flow = flow

    @property
    def mean_rate_bps(self) -> float:
        """Long-run average offered rate."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.peak_rate_bps * duty

    def generate(self, horizon: float, rng: np.random.Generator,
                 start: float = 0.0) -> ArrivalSchedule:
        """Draw an on-off sample path over ``[start, start + horizon)``."""
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        interval = self.size_bytes * 8 / self.peak_rate_bps
        arrivals: List[Tuple[float, Packet]] = []
        t = start
        end = start + horizon
        on = rng.random() < self.mean_on / (self.mean_on + self.mean_off)
        while t < end:
            if on:
                period = rng.exponential(self.mean_on)
                n = int(period / interval)
                for k in range(n):
                    at = t + k * interval
                    if at >= end:
                        break
                    arrivals.append(
                        (at, Packet(self.size_bytes, self.flow, created_at=at)))
                t += period
            else:
                t += rng.exponential(self.mean_off)
            on = not on
        return ArrivalSchedule(arrivals)


class TraceGenerator:
    """Replays an explicit list of (time, size) pairs.

    Useful in tests and in the trace-driven queueing simulator where the
    arrival process comes from a measured sample path.
    """

    def __init__(self, trace: Sequence[Tuple[float, int]], flow: str = "cross") -> None:
        self.trace = [(float(t), int(s)) for t, s in trace]
        if any(t2 < t1 for (t1, _), (t2, _) in zip(self.trace, self.trace[1:])):
            raise ValueError("trace times must be non-decreasing")
        self.flow = flow

    def generate(self, horizon: float,
                 rng: Optional[np.random.Generator] = None,
                 start: float = 0.0) -> ArrivalSchedule:
        """Replay the trace, clipped to ``[start, start + horizon)``."""
        arrivals = [(t, Packet(s, self.flow, created_at=t))
                    for t, s in self.trace if start <= t < start + horizon]
        return ArrivalSchedule(arrivals)
