"""Traffic generation substrate.

Plays the role of the MGEN toolset in the paper's testbed: it produces
the packet workloads that feed the DCF and FIFO-hop simulators —
Poisson and CBR cross-traffic, and the probing trains used by the
measurement tools (periodic trains, packet pairs, and Poisson-spaced
sequences of trains).
"""

from repro.traffic.packets import Packet, PacketRecord
from repro.traffic.generators import (
    ArrivalSchedule,
    CBRGenerator,
    OnOffGenerator,
    PoissonGenerator,
    TraceGenerator,
)
from repro.traffic.probe import (
    PacketPair,
    ProbeTrain,
    TrainSequence,
    gap_for_rate,
    rate_for_gap,
)

__all__ = [
    "ArrivalSchedule",
    "CBRGenerator",
    "OnOffGenerator",
    "PacketPair",
    "Packet",
    "PacketRecord",
    "PoissonGenerator",
    "ProbeTrain",
    "TraceGenerator",
    "TrainSequence",
    "gap_for_rate",
    "rate_for_gap",
]
