"""Packet model shared by every substrate.

A :class:`Packet` is the unit handed to queues and MACs.  The
measurement pipeline never inspects payloads (the paper takes a strictly
network-layer view), so a packet is just a size, a flow label and a set
of timestamps filled in as it moves through the system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A network-layer packet.

    Attributes
    ----------
    size_bytes:
        Network-layer size (IP datagram size).  MAC overhead is added by
        the airtime model, not here.
    flow:
        Flow label, e.g. ``"probe"`` or ``"cross"``.  Measurement code
        filters on it.
    seq:
        Sequence number within the flow (probing code sets it; cross
        traffic may leave it at ``-1``).
    created_at:
        Time the generator emitted the packet (the probing sequence's
        ``a_i`` when the packet goes straight into the transmission
        queue).
    """

    size_bytes: int
    flow: str = "cross"
    seq: int = -1
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def size_bits(self) -> int:
        """Packet size in bits."""
        return self.size_bytes * 8


@dataclass
class PacketRecord:
    """Per-packet life-cycle record produced by the simulators.

    This is the sample-path data that the paper's analysis operates on:

    * ``arrival`` — the packet's arrival at the transmission queue
      (``a_i`` for probing packets);
    * ``hol`` — when the packet reached the head of the FIFO queue and
      started contending for channel access;
    * ``departure`` — when it was *completely transmitted* (``d_i``);
    * ``access_delay`` — ``departure - hol``, the paper's ``mu_i``
      (scheduling *plus* transmission time);
    * ``retries`` — number of MAC retransmissions it needed;
    * ``dropped`` — whether the MAC gave up (only with a finite retry
      limit; the paper uses infinite queues and effectively no losses).
    """

    packet: Packet
    arrival: float
    hol: Optional[float] = None
    departure: Optional[float] = None
    retries: int = 0
    dropped: bool = False

    @property
    def access_delay(self) -> Optional[float]:
        """The paper's mu_i: head-of-line to full transmission."""
        if self.departure is None or self.hol is None:
            return None
        return self.departure - self.hol

    @property
    def system_delay(self) -> Optional[float]:
        """The paper's Z_i = d_i - a_i (queueing plus access delay)."""
        if self.departure is None:
            return None
        return self.departure - self.arrival

    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent waiting in the FIFO queue before reaching HOL."""
        if self.hol is None:
            return None
        return self.hol - self.arrival

    @property
    def completed(self) -> bool:
        """Whether the packet was fully transmitted."""
        return self.departure is not None and not self.dropped
