"""Probing-train construction.

The paper's measurement process (section 5.1.2) sends ``m`` probing
sequences of ``n`` packets each.  Within a sequence packets are periodic
with input gap ``g_I``; sequences are separated with Poisson spacing "in
order to assure complete interaction with the system".

:class:`ProbeTrain` describes a single sequence, :class:`PacketPair` is
the n=2 special case sent back-to-back (an "infinite rate" probe in the
paper's terms), and :class:`TrainSequence` lays out ``m`` trains over
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.traffic.packets import Packet


def gap_for_rate(rate_bps: float, size_bytes: int) -> float:
    """Input gap g_I (seconds) so that L/g_I equals ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    return size_bytes * 8 / rate_bps


def rate_for_gap(gap: float, size_bytes: int) -> float:
    """Input rate r_i = L/g_I in bit/s for a given gap."""
    if gap <= 0:
        raise ValueError(f"gap must be positive, got {gap}")
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    return size_bytes * 8 / gap


@dataclass(frozen=True)
class ProbeTrain:
    """A periodic probing sequence of ``n`` packets with input gap ``g_I``.

    Attributes
    ----------
    n:
        Number of packets in the train (the paper uses 2–10000).
    gap:
        Input gap g_I between consecutive packets, in seconds.
    size_bytes:
        Probe packet size L (network layer).
    """

    n: int
    gap: float
    size_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"a train needs at least 2 packets, got {self.n}")
        if self.gap < 0:
            raise ValueError(f"gap must be non-negative, got {self.gap}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")

    @classmethod
    def at_rate(cls, n: int, rate_bps: float, size_bytes: int = 1500) -> "ProbeTrain":
        """Build a train probing at ``rate_bps`` (g_I = L / r_i)."""
        return cls(n=n, gap=gap_for_rate(rate_bps, size_bytes),
                   size_bytes=size_bytes)

    @property
    def rate_bps(self) -> float:
        """Input rate r_i = L/g_I (infinite for back-to-back trains)."""
        if self.gap == 0:
            return float("inf")
        return rate_for_gap(self.gap, self.size_bytes)

    @property
    def duration(self) -> float:
        """Time between the first and last packet arrival."""
        return (self.n - 1) * self.gap

    def arrival_times(self, start: float = 0.0) -> np.ndarray:
        """The arrival instants a_i = start + (i-1) * g_I."""
        return start + np.arange(self.n) * self.gap

    def packets(self, start: float = 0.0) -> List[Tuple[float, Packet]]:
        """Materialize the train as (time, packet) pairs, seq = 0..n-1."""
        return [
            (float(t), Packet(self.size_bytes, flow="probe", seq=i,
                              created_at=float(t)))
            for i, t in enumerate(self.arrival_times(start))
        ]


class PacketPair(ProbeTrain):
    """A back-to-back packet pair (the paper's "probe of infinite rate")."""

    def __init__(self, size_bytes: int = 1500) -> None:
        super().__init__(n=2, gap=0.0, size_bytes=size_bytes)


@dataclass(frozen=True)
class TrainSequence:
    """``m`` repetitions of a train with Poisson inter-train spacing.

    The inter-train gap is drawn as ``guard + Exp(mean_spacing)`` so
    consecutive trains never overlap and the system "forgets" the
    previous train before a new one starts (matching the measurement
    procedure in section 5.1.2).
    """

    train: ProbeTrain
    m: int
    mean_spacing: float
    guard: float = 0.0

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"need at least one train, got {self.m}")
        if self.mean_spacing <= 0:
            raise ValueError(
                f"mean spacing must be positive, got {self.mean_spacing}")
        if self.guard < 0:
            raise ValueError(f"guard must be non-negative, got {self.guard}")

    def start_times(self, rng: np.random.Generator,
                    start: float = 0.0) -> np.ndarray:
        """Draw the m train start instants."""
        gaps = self.guard + rng.exponential(self.mean_spacing, size=self.m)
        gaps[0] = 0.0
        starts = start + np.cumsum(gaps + self.train.duration) - self.train.duration
        return starts

    def packets(self, rng: np.random.Generator,
                start: float = 0.0) -> List[Tuple[float, Packet]]:
        """Materialize all m trains; seq restarts at 0 for each train."""
        out: List[Tuple[float, Packet]] = []
        for train_start in self.start_times(rng, start):
            out.extend(self.train.packets(float(train_start)))
        return out
