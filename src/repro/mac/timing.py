"""Slot-timing constants shared by the DCF backends.

The event-driven medium (:mod:`repro.mac.medium`) and the vectorized
batch kernel (:mod:`repro.sim.vector`) must agree *exactly* on the
protocol's time arithmetic — slot grid, DIFS placement, contention
windows, busy-period lengths — or their access-delay distributions
drift apart and the statistical-equivalence tests between them become
meaningless.  This module is that single source of truth: the event
backend consumes the helpers packet-by-packet, the vector backend
precomputes them into a :class:`SlotTiming` of scalar durations for a
fixed frame size and applies them to whole repetition arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams

#: Tolerance for comparing event times (1 ns, far below the 20 us slot).
#: Both backends treat instants closer than this as simultaneous.
TIME_EPS = 1e-9


def contention_window(phy: PhyParams, stage: int) -> int:
    """CW at backoff ``stage``: ``min(cw_max, (cw_min + 1) * 2^k - 1)``.

    This is the one formula both the per-station
    :class:`repro.mac.backoff.BackoffState` and the vectorized kernel's
    stage table must share.
    """
    if stage < 0:
        raise ValueError(f"stage must be non-negative, got {stage}")
    cw = (phy.cw_min + 1) * (2 ** stage) - 1
    return min(phy.cw_max, cw)


def cw_table(phy: PhyParams) -> np.ndarray:
    """Contention windows indexed by stage ``0 .. max_backoff_stage``.

    Stages past ``max_backoff_stage`` stay clamped at ``cw_max``, so
    indexing this table with a clipped stage reproduces
    :func:`contention_window` for every retry count.
    """
    return np.array([contention_window(phy, stage)
                     for stage in range(phy.max_backoff_stage + 1)],
                    dtype=np.int64)


@dataclass(frozen=True)
class SlotTiming:
    """Scalar DCF durations for one fixed frame size.

    All values are in seconds (counters in slots).  The vector kernel
    holds one instance and applies it to ``(repetitions, stations)``
    arrays; for equal-size basic-access frames a collision occupies the
    medium for exactly as long as a success (longest DATA + SIFS + ACK
    timeout), which is why a single ``busy_period`` covers both
    outcomes.  With RTS/CTS protection (``for_size(..., rts=True)``)
    the two outcomes split: a success pays the RTS+SIFS+CTS+SIFS
    preamble before the DATA frame, while a collision only occupies
    the medium for the colliding RTS frames plus the CTS timeout —
    :attr:`success_busy` and :attr:`collision_busy` carry the split.

    Attributes
    ----------
    slot / sifs / difs:
        The PHY's slot time and interframe spaces.
    data_airtime:
        On-air duration of one DATA frame of the fixed size.
    ack_airtime:
        On-air duration of an ACK at the basic rate.
    rts_preamble:
        RTS + SIFS + CTS + SIFS preceding every protected DATA frame
        (0 for basic access).
    contention_airtime:
        On-air duration of the frame that occupies the medium during a
        collision: the RTS when protected, the DATA frame otherwise.
    """

    slot: float
    sifs: float
    difs: float
    data_airtime: float
    ack_airtime: float
    rts_preamble: float = 0.0
    contention_airtime: Optional[float] = None

    @classmethod
    def for_size(cls, phy: Optional[PhyParams] = None,
                 size_bytes: int = 1500,
                 rts: bool = False) -> "SlotTiming":
        """Precompute the durations for ``size_bytes`` frames.

        ``rts=True`` precomputes the RTS/CTS-protected variants, using
        the same :class:`repro.mac.frames.AirtimeModel` arithmetic the
        event medium applies per packet.
        """
        phy = phy if phy is not None else PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        data_airtime = airtime.data_airtime(size_bytes)
        return cls(
            slot=phy.slot_time,
            sifs=phy.sifs,
            difs=phy.difs,
            data_airtime=data_airtime,
            ack_airtime=airtime.ack_airtime(),
            rts_preamble=(airtime.rts_preamble_duration() if rts else 0.0),
            contention_airtime=(airtime.rts_airtime() if rts
                                else data_airtime),
        )

    @property
    def busy_period(self) -> float:
        """Medium-busy time of an exchange: DATA + SIFS + ACK (timeout).

        For equal-size basic-access frames this is the length of a
        success *and* of a collision, matching
        :meth:`repro.mac.frames.AirtimeModel.collision_duration`.
        """
        return self.data_airtime + self.sifs + self.ack_airtime

    @property
    def success_busy(self) -> float:
        """Busy time of a success, from channel acquisition to idle:
        (RTS preamble +) DATA + SIFS + ACK."""
        return self.rts_preamble + self.busy_period

    @property
    def collision_busy(self) -> float:
        """Busy time of a collision: contention frame + ACK/CTS timeout.

        With basic access the contention frame is the DATA frame and
        this equals :attr:`busy_period`; under RTS/CTS it is only the
        RTS plus the timeout — the handshake's whole point.
        """
        contention = (self.contention_airtime
                      if self.contention_airtime is not None
                      else self.data_airtime)
        return contention + self.sifs + self.ack_airtime
