"""Frame airtime computations.

The airtime model turns network-layer packet sizes into on-air frame
durations and full exchange durations (DATA + SIFS + ACK), which is all
the medium model needs: with no channel errors modelled (as in the
paper, where losses are explicitly irrelevant), an exchange either
succeeds atomically or collides with another exchange.
"""

from __future__ import annotations

from typing import Iterable

from repro.mac.params import PhyParams


class AirtimeModel:
    """Computes frame and exchange durations for a given PHY."""

    def __init__(self, phy: PhyParams) -> None:
        self.phy = phy

    def data_airtime(self, size_bytes: int) -> float:
        """On-air duration of a data frame carrying ``size_bytes``.

        PLCP overhead plus (packet + MAC overhead) at the data rate.
        """
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        frame_bytes = size_bytes + self.phy.mac_overhead_bytes
        return self.phy.plcp_overhead + frame_bytes * 8 / self.phy.data_rate

    def ack_airtime(self) -> float:
        """On-air duration of an ACK at the basic rate."""
        return self.phy.plcp_overhead + self.phy.ack_bytes * 8 / self.phy.basic_rate

    def rts_airtime(self) -> float:
        """On-air duration of an RTS at the basic rate."""
        return self.phy.plcp_overhead + self.phy.rts_bytes * 8 / self.phy.basic_rate

    def cts_airtime(self) -> float:
        """On-air duration of a CTS at the basic rate."""
        return self.phy.plcp_overhead + self.phy.cts_bytes * 8 / self.phy.basic_rate

    def rts_preamble_duration(self) -> float:
        """RTS + SIFS + CTS + SIFS preceding the DATA frame."""
        return (self.rts_airtime() + self.phy.sifs
                + self.cts_airtime() + self.phy.sifs)

    def rts_success_duration(self, size_bytes: int) -> float:
        """Busy-medium time of an RTS/CTS-protected exchange."""
        return self.rts_preamble_duration() + self.success_duration(size_bytes)

    def rts_collision_duration(self) -> float:
        """Busy-medium time of colliding RTS frames (CTS timeout).

        This is the whole point of RTS/CTS: a collision costs only an
        RTS airtime plus a CTS timeout instead of the longest colliding
        DATA frame.
        """
        return self.rts_airtime() + self.phy.sifs + self.cts_airtime()

    def success_duration(self, size_bytes: int) -> float:
        """Busy-medium time of a successful exchange: DATA + SIFS + ACK."""
        return self.data_airtime(size_bytes) + self.phy.sifs + self.ack_airtime()

    def collision_duration(self, sizes_bytes: Iterable[int]) -> float:
        """Busy-medium time of a collision between several data frames.

        The medium is occupied for the longest colliding frame; the
        senders then wait an ACK timeout (SIFS + ACK airtime) before the
        channel is considered free again.  This matches NS2's behaviour
        to within the EIFS/DIFS difference, which does not affect the
        phenomena studied here (documented in DESIGN.md).
        """
        sizes = list(sizes_bytes)
        if len(sizes) < 2:
            raise ValueError("a collision needs at least two frames")
        longest = max(self.data_airtime(s) for s in sizes)
        return longest + self.phy.sifs + self.ack_airtime()

    def min_service_time(self, size_bytes: int) -> float:
        """Fastest possible access delay: immediate access, no backoff.

        The packet still pays DATA airtime; DIFS/backoff are zero in the
        best case (arrival to an idle medium that has been idle for at
        least DIFS).
        """
        return self.data_airtime(size_bytes)

    def saturation_cycle(self, size_bytes: int) -> float:
        """Mean renewal-cycle length for a single saturated station.

        DIFS + mean initial backoff + DATA + SIFS + ACK.  Its inverse
        times the packet size is the single-station link capacity C.
        """
        mean_backoff = self.phy.cw_min / 2 * self.phy.slot_time
        return (self.phy.difs + mean_backoff
                + self.success_duration(size_bytes))

    def link_capacity(self, size_bytes: int) -> float:
        """Single-station saturation throughput C in bit/s.

        This is the paper's *capacity* metric: the rate at which a lone
        station can push ``size_bytes`` packets through the link.
        """
        return size_bytes * 8 / self.saturation_cycle(size_bytes)
