"""Binary exponential backoff state machine.

Tracks a station's contention-window stage and remaining backoff slots.
The contention window after ``k`` failed attempts is
``min(cw_max, (cw_min + 1) * 2**k - 1)``; the counter is drawn uniformly
from ``[0, CW]`` inclusive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mac.params import PhyParams
from repro.mac.timing import contention_window


class BackoffState:
    """Per-station backoff bookkeeping.

    The medium decrements :attr:`remaining` as idle slots elapse; the
    station transmits when it reaches zero.  ``remaining is None`` means
    no backoff is pending (a fresh head-of-line packet that is allowed
    to attempt immediate access).
    """

    def __init__(self, phy: PhyParams, rng: np.random.Generator) -> None:
        self.phy = phy
        self.rng = rng
        self.stage = 0
        self.remaining: Optional[int] = None

    def current_cw(self) -> int:
        """Contention window at the current retry stage."""
        return contention_window(self.phy, self.stage)

    def draw(self) -> int:
        """Draw a fresh counter uniformly from [0, CW] and store it."""
        self.remaining = int(self.rng.integers(0, self.current_cw() + 1))
        return self.remaining

    def ensure_drawn(self) -> int:
        """Draw a counter only if none is pending; return the counter."""
        if self.remaining is None:
            return self.draw()
        return self.remaining

    def consume(self, slots: int) -> None:
        """Account for ``slots`` elapsed idle slots of countdown."""
        if self.remaining is None:
            raise ValueError("no backoff pending")
        if slots < 0 or slots > self.remaining:
            raise ValueError(
                f"cannot consume {slots} slots from {self.remaining}")
        self.remaining -= slots

    def on_collision(self) -> None:
        """Failed attempt: double CW (capped) and draw a new counter."""
        self.stage = min(self.stage + 1, self.phy.max_backoff_stage)
        self.draw()

    def on_success(self) -> None:
        """Successful attempt: reset the stage, clear the counter."""
        self.stage = 0
        self.remaining = None

    def reset(self) -> None:
        """Forget everything (packet dropped or queue emptied)."""
        self.stage = 0
        self.remaining = None
