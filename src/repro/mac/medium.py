"""Shared wireless medium with DCF contention resolution.

The medium implements CSMA/CA "slot-jump" scheduling: instead of
ticking every 20 us slot, it computes, for each contending station, the
earliest instant at which that station's backoff countdown would reach
zero, and schedules a single *access resolution* event at the minimum of
those instants.  Arrivals that change the contention set cancel and
reschedule that event.  This is exact for the protocol modelled here
and keeps the simulation cost proportional to the number of packets,
not the number of slots.

Protocol rules (802.11 DCF, basic access, no RTS/CTS, no channel
errors):

* A station whose packet reaches the head of an empty queue while the
  medium has been idle for at least DIFS transmits immediately, without
  backoff.  This rule is what "accelerates" the first packets of a
  probing train and produces the transient access-delay regime the
  paper studies.
* Otherwise the station draws a backoff counter uniformly from
  ``[0, CW]`` and counts it down, one slot at a time, after the medium
  has been idle for DIFS; the countdown freezes while the medium is
  busy and resumes after the next DIFS.
* If several stations reach zero in the same slot they collide; each
  doubles its contention window (up to CWmax), draws a new counter and
  retries.  With ``retry_limit=None`` (the default, matching the
  paper's loss-free setup) frames are never discarded.
* A successful exchange occupies the medium for DATA + SIFS + ACK; a
  collision occupies it for the longest colliding DATA plus an ACK
  timeout of the same length.

The *departure* timestamp recorded for a packet is the end of its DATA
frame — the instant a receiver-side driver timestamp would see — while
the medium stays busy until the ACK completes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.mac.timing import TIME_EPS
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mac.station import Station

#: Event priorities: medium-idle transitions run before completions,
#: which run before arrivals (0), which run before access resolution.
PRIORITY_IDLE = -2
PRIORITY_COMPLETE = -1
PRIORITY_ARRIVAL = 0
PRIORITY_ACCESS = 1


class Medium:
    """The shared channel coordinating DCF access among stations."""

    def __init__(self, sim: Simulator, phy: Optional[PhyParams] = None,
                 rng: Optional[np.random.Generator] = None,
                 retry_limit: Optional[int] = None,
                 immediate_access: bool = True,
                 rts_threshold: Optional[int] = None) -> None:
        self.sim = sim
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.airtime = AirtimeModel(self.phy)
        self.retry_limit = retry_limit
        #: 802.11 allows a station whose packet arrives to an idle
        #: medium (idle for >= DIFS) to transmit without backoff; this
        #: is the mechanism that accelerates the first probing packets.
        #: Setting it to False forces a backoff on every access — the
        #: ablation bench shows the transient shrinking accordingly.
        self.immediate_access = immediate_access
        #: Packets of at least this many bytes are protected by an
        #: RTS/CTS handshake (``None`` disables RTS entirely, which is
        #: the paper's NS2 configuration).
        self.rts_threshold = rts_threshold
        self.stations: List["Station"] = []
        # The medium starts idle "since forever": the first packet of a
        # run sees an idle-for-longer-than-DIFS channel.
        self.busy_until = sim.now
        self.idle_start = -math.inf
        self._access_event: Optional[Event] = None
        self.successes = 0
        self.collisions = 0

    # ------------------------------------------------------------------
    # Registration and state queries
    # ------------------------------------------------------------------

    def add_station(self, station: "Station") -> None:
        """Register a station on this channel."""
        self.stations.append(station)

    @property
    def is_busy(self) -> bool:
        """Whether a transmission (or ACK exchange) is in progress."""
        return self.sim.now < self.busy_until - TIME_EPS

    def _contenders(self) -> List["Station"]:
        return [s for s in self.stations if s.hol is not None]

    # ------------------------------------------------------------------
    # Contention bookkeeping
    # ------------------------------------------------------------------

    def on_new_hol(self, station: "Station") -> None:
        """A packet just reached the head of ``station``'s queue."""
        now = self.sim.now
        if self.is_busy:
            # Defer: draw the backoff now, countdown starts after the
            # busy period plus DIFS (handled in _on_idle).
            station.backoff.ensure_drawn()
            station.count_start = None
            return
        idle_elapsed = now - self.idle_start
        if self.immediate_access and idle_elapsed >= self.phy.difs - TIME_EPS:
            # Medium idle for at least DIFS: immediate access.
            station.backoff.remaining = 0
            station.count_start = now
        else:
            # Regular backoff: counted from the end of the DIFS window,
            # or from now if DIFS has already elapsed (which only
            # happens with immediate_access disabled).
            station.backoff.ensure_drawn()
            station.count_start = max(now, self.idle_start + self.phy.difs)
        self._reschedule()

    def _earliest_tx(self, station: "Station") -> float:
        """When ``station``'s countdown reaches zero in this idle period."""
        assert station.count_start is not None
        assert station.backoff.remaining is not None
        return station.count_start + station.backoff.remaining * self.phy.slot_time

    def _reschedule(self) -> None:
        """Recompute and (re)schedule the next access-resolution event."""
        if self.is_busy:
            return
        ready = [s for s in self._contenders() if s.count_start is not None]
        if not ready:
            if self._access_event is not None and self._access_event.pending:
                self._access_event.cancel()
            self._access_event = None
            return
        t_star = max(min(self._earliest_tx(s) for s in ready), self.sim.now)
        if self._access_event is not None and self._access_event.pending:
            if abs(self._access_event.time - t_star) <= TIME_EPS:
                return
            self._access_event.cancel()
        self._access_event = self.sim.schedule(
            t_star, self._resolve_access, priority=PRIORITY_ACCESS)

    # ------------------------------------------------------------------
    # Access resolution: transmission, collision, completion
    # ------------------------------------------------------------------

    def _resolve_access(self) -> None:
        now = self.sim.now
        self._access_event = None
        ready = [s for s in self._contenders() if s.count_start is not None]
        winners = [s for s in ready if self._earliest_tx(s) <= now + TIME_EPS]
        if not winners:
            # An arrival at exactly this instant may have rescheduled;
            # recompute defensively.
            self._reschedule()
            return

        # Freeze the countdown of every losing contender.
        slot = self.phy.slot_time
        for station in ready:
            if station in winners:
                continue
            remaining = station.backoff.remaining
            elapsed = int(math.floor((now - station.count_start) / slot + TIME_EPS))
            elapsed = max(0, min(elapsed, remaining - 1))
            station.backoff.consume(elapsed)
            station.count_start = None

        if len(winners) == 1:
            busy_end = self._start_success(winners[0], now)
        else:
            busy_end = self._start_collision(winners, now)

        self.busy_until = busy_end
        self.sim.schedule(busy_end, self._on_idle, priority=PRIORITY_IDLE)

    def _uses_rts(self, size_bytes: int) -> bool:
        return (self.rts_threshold is not None
                and size_bytes >= self.rts_threshold)

    def _start_success(self, station: "Station", now: float) -> float:
        record = station.hol
        data_start = now
        if self._uses_rts(record.packet.size_bytes):
            data_start += self.airtime.rts_preamble_duration()
        data_end = (data_start
                    + self.airtime.data_airtime(record.packet.size_bytes))
        record.departure = data_end
        record.retries = station.attempts
        station.attempts = 0
        station.backoff.on_success()
        station.count_start = None
        self.successes += 1
        self.sim.schedule(data_end, station.complete_hol,
                          priority=PRIORITY_COMPLETE)
        return data_end + self.phy.sifs + self.airtime.ack_airtime()

    def _start_collision(self, winners: List["Station"], now: float) -> float:
        # Each collider occupies the medium with its contention frame:
        # the RTS for protected packets, the full DATA frame otherwise;
        # the busy period lasts until the longest one plus the
        # ACK/CTS timeout.
        frame_times = []
        for station in winners:
            size = station.hol.packet.size_bytes
            if self._uses_rts(size):
                frame_times.append(self.airtime.rts_airtime())
            else:
                frame_times.append(self.airtime.data_airtime(size))
        busy_end = (now + max(frame_times) + self.phy.sifs
                    + self.airtime.ack_airtime())
        self.collisions += 1
        for station in winners:
            station.attempts += 1
            if (self.retry_limit is not None
                    and station.attempts > self.retry_limit):
                record = station.hol
                record.dropped = True
                record.retries = station.attempts
                station.attempts = 0
                station.backoff.reset()
                station.count_start = None
                self.sim.schedule(busy_end, station.complete_hol,
                                  priority=PRIORITY_COMPLETE)
            else:
                station.backoff.on_collision()
                station.count_start = None
        return busy_end

    def _on_idle(self) -> None:
        """The busy period ended: restart every frozen countdown."""
        now = self.sim.now
        if now < self.busy_until - TIME_EPS:  # pragma: no cover - defensive
            return
        self.idle_start = now
        count_start = now + self.phy.difs
        for station in self._contenders():
            station.backoff.ensure_drawn()
            station.count_start = count_start
        self._reschedule()
