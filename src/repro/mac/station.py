"""A wireless station: infinite FIFO transmission queue + DCF MAC.

Stations record the full life cycle of every packet they are handed
(:class:`repro.traffic.packets.PacketRecord`): arrival at the queue,
promotion to head-of-line (HOL), and departure (end of the DATA frame).
These records are the sample paths on which the paper's analysis —
access delays ``mu_i``, system delays ``Z_i``, output dispersions — is
computed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.mac.medium import Medium
from repro.sim.engine import Simulator
from repro.traffic.packets import Packet, PacketRecord


class Station:
    """A sender contending for the channel through a ``Medium``.

    Parameters
    ----------
    name:
        Identifier used by scenario results.
    sim / medium:
        The event engine and the shared channel.
    rng:
        Source of backoff randomness; defaults to the medium's
        generator so a single seed drives the whole run.
    log_queue:
        When true, every backlog change is appended to
        :attr:`queue_log` as ``(time, backlog)`` — used to reproduce the
        contending-queue trace of figure 8.
    """

    def __init__(self, name: str, sim: Simulator, medium: Medium,
                 rng: Optional[np.random.Generator] = None,
                 log_queue: bool = False) -> None:
        from repro.mac.backoff import BackoffState

        self.name = name
        self.sim = sim
        self.medium = medium
        self.backoff = BackoffState(medium.phy, rng or medium.rng)
        self.queue: Deque[PacketRecord] = deque()
        self.hol: Optional[PacketRecord] = None
        #: When the current countdown started in this idle period
        #: (None while frozen / medium busy).
        self.count_start: Optional[float] = None
        #: Failed attempts for the current HOL packet.
        self.attempts = 0
        self.records: List[PacketRecord] = []
        self.log_queue = log_queue
        self.queue_log: List[Tuple[float, int]] = []
        medium.add_station(self)

    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets in the station: queued plus in service (HOL)."""
        return len(self.queue) + (1 if self.hol is not None else 0)

    def enqueue(self, packet: Packet) -> PacketRecord:
        """Hand a packet to the station at the current simulation time."""
        record = PacketRecord(packet, arrival=self.sim.now)
        self.records.append(record)
        if self.hol is None:
            self._promote(record)
        else:
            self.queue.append(record)
        self._log()
        return record

    def _promote(self, record: PacketRecord) -> None:
        self.hol = record
        record.hol = self.sim.now
        self.medium.on_new_hol(self)

    def complete_hol(self) -> None:
        """The HOL packet finished (transmitted or dropped); advance."""
        self.hol = None
        if self.queue:
            self._promote(self.queue.popleft())
        self._log()

    def _log(self) -> None:
        if self.log_queue:
            self.queue_log.append((self.sim.now, self.backlog))

    # ------------------------------------------------------------------

    def completed_records(self, flow: Optional[str] = None) -> List[PacketRecord]:
        """Records of fully transmitted packets, optionally by flow."""
        return [r for r in self.records
                if r.completed and (flow is None or r.packet.flow == flow)]

    def access_delays(self, flow: Optional[str] = None) -> np.ndarray:
        """The mu_i sample (HOL to end of DATA) in arrival order."""
        return np.array([r.access_delay for r in self.completed_records(flow)],
                        dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Station({self.name!r}, backlog={self.backlog}, "
                f"records={len(self.records)})")
