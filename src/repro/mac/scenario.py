"""Ready-made single-BSS scenarios.

:class:`WlanScenario` wires together the event engine, the medium and a
set of stations, replays arrival schedules and/or explicit probing
trains into them, runs the simulation to completion and returns a
:class:`ScenarioResult` with per-station packet records, throughputs and
queue traces.  This is the programmatic equivalent of the paper's NS2
setup (figure 2): one probing sender plus one or more contending
cross-traffic senders, all uplink, infinite queues, no RTS/CTS.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mac.medium import PRIORITY_ARRIVAL, Medium
from repro.mac.params import PhyParams
from repro.mac.station import Station
from repro.sim.engine import Simulator
from repro.traffic.packets import Packet, PacketRecord


@dataclass
class StationSpec:
    """Describes one station in a scenario.

    ``generator`` and ``arrivals`` may be combined: the paper's
    complete model (figures 4 and 15) needs a probing station whose
    transmission queue also carries FIFO cross-traffic — give that
    station the probe train as ``arrivals`` and the FIFO cross-traffic
    as ``generator``.  A station with neither simply stays silent.

    Attributes
    ----------
    generator:
        Any object with ``generate(horizon, rng, start) -> ArrivalSchedule``
        (the :mod:`repro.traffic.generators` classes).
    arrivals:
        Explicit ``(time, Packet)`` pairs, e.g. a probing train from
        :meth:`repro.traffic.probe.ProbeTrain.packets`.
    start:
        Offset added to the generator's schedule (warm-up control).
    log_queue:
        Record the backlog trace of this station.
    """

    name: str
    generator: Optional[object] = None
    arrivals: Optional[Sequence[Tuple[float, Packet]]] = None
    start: float = 0.0
    log_queue: bool = False


@dataclass
class StationResult:
    """Per-station outcome of a scenario run."""

    name: str
    records: List[PacketRecord]
    queue_log: List[Tuple[float, int]] = field(default_factory=list)

    def completed(self, flow: Optional[str] = None) -> List[PacketRecord]:
        """Fully transmitted packets, optionally filtered by flow."""
        return [r for r in self.records
                if r.completed and (flow is None or r.packet.flow == flow)]

    def throughput_bps(self, t0: float, t1: float,
                       flow: Optional[str] = None) -> float:
        """Network-layer throughput of departures in ``(t0, t1]``."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
        bits = sum(r.packet.size_bits for r in self.completed(flow)
                   if t0 < r.departure <= t1)
        return bits / (t1 - t0)

    def access_delays(self, flow: Optional[str] = None) -> np.ndarray:
        """mu_i of completed packets, in arrival order."""
        return np.array([r.access_delay for r in self.completed(flow)],
                        dtype=float)

    def departures(self, flow: Optional[str] = None) -> np.ndarray:
        """d_i of completed packets, in arrival order."""
        return np.array([r.departure for r in self.completed(flow)],
                        dtype=float)

    def queue_size_at(self, times: np.ndarray) -> np.ndarray:
        """Backlog (queued + in service) sampled at ``times``.

        The backlog trace is a right-continuous step function; requires
        the station to have been created with ``log_queue=True``.
        """
        if not self.queue_log:
            raise ValueError(f"station {self.name!r} has no queue log")
        log_t = np.array([t for t, _ in self.queue_log])
        log_q = np.array([q for _, q in self.queue_log])
        idx = np.searchsorted(log_t, np.asarray(times, dtype=float),
                              side="right") - 1
        out = np.where(idx >= 0, log_q[np.clip(idx, 0, None)], 0)
        return out.astype(float)


@dataclass
class ScenarioResult:
    """Outcome of a :class:`WlanScenario` run."""

    stations: Dict[str, StationResult]
    phy: PhyParams
    horizon: float
    duration: float
    successes: int
    collisions: int
    events_processed: int

    def station(self, name: str) -> StationResult:
        """Result for station ``name``."""
        return self.stations[name]

    @property
    def collision_rate(self) -> float:
        """Fraction of channel acquisitions that were collisions."""
        total = self.successes + self.collisions
        return self.collisions / total if total else 0.0


def saturated_station_specs(n_stations: int, packets_per_station: int,
                            size_bytes: int = 1500) -> List[StationSpec]:
    """Station specs for a saturated BSS: every queue pre-loaded at t=0.

    Each of the ``n_stations`` stations is handed all of its
    ``packets_per_station`` packets at time zero, so it stays backlogged
    (saturated) until its queue drains — the Bianchi regime.  Running
    these specs through :class:`WlanScenario` is the event-engine
    counterpart of :func:`repro.sim.vector.simulate_saturated_batch`;
    the two backends must stay statistically equivalent on it.
    """
    if n_stations < 1:
        raise ValueError(f"need at least one station, got {n_stations}")
    if packets_per_station < 1:
        raise ValueError(
            f"need at least one packet per station, got {packets_per_station}")
    return [
        StationSpec(
            name=f"sat{idx}",
            arrivals=[(0.0, Packet(size_bytes, flow="sat", seq=k,
                                   created_at=0.0))
                      for k in range(packets_per_station)])
        for idx in range(n_stations)
    ]


class WlanScenario:
    """Builds and runs single-channel DCF scenarios.

    Parameters
    ----------
    phy:
        PHY/MAC constants (default: 802.11b 11 Mb/s long preamble).
    retry_limit:
        MAC retry limit; ``None`` (default) retries forever, matching
        the paper's loss-free configuration.
    """

    def __init__(self, phy: Optional[PhyParams] = None,
                 retry_limit: Optional[int] = None,
                 immediate_access: bool = True,
                 rts_threshold: Optional[int] = None) -> None:
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.retry_limit = retry_limit
        self.immediate_access = immediate_access
        self.rts_threshold = rts_threshold

    def run(self, specs: Sequence[StationSpec], horizon: float,
            seed: Optional[int] = 0,
            until: Optional[float] = None) -> ScenarioResult:
        """Run the scenario.

        Generator-driven stations emit arrivals over ``[start, start +
        horizon)``.  The simulation then runs until the event heap
        drains (every queued packet is transmitted) unless ``until``
        caps it.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        sim = Simulator()
        rng = np.random.default_rng(seed)
        medium = Medium(sim, self.phy, rng, retry_limit=self.retry_limit,
                        immediate_access=self.immediate_access,
                        rts_threshold=self.rts_threshold)
        stations: Dict[str, Station] = {}
        for spec in specs:
            if spec.name in stations:
                raise ValueError(f"duplicate station name {spec.name!r}")
            station = Station(spec.name, sim, medium, log_queue=spec.log_queue)
            stations[spec.name] = station
            arrivals: List[Tuple[float, Packet]] = []
            if spec.arrivals is not None:
                arrivals.extend(spec.arrivals)
            if spec.generator is not None:
                arrivals.extend(
                    spec.generator.generate(horizon, rng, start=spec.start))
            for time, packet in arrivals:
                sim.schedule(time, functools.partial(station.enqueue, packet),
                             priority=PRIORITY_ARRIVAL)
        sim.run(until=until)
        return ScenarioResult(
            stations={name: StationResult(name, st.records, st.queue_log)
                      for name, st in stations.items()},
            phy=self.phy,
            horizon=horizon,
            duration=sim.now,
            successes=medium.successes,
            collisions=medium.collisions,
            events_processed=sim.events_processed,
        )
