"""IEEE 802.11 DCF (CSMA/CA) substrate.

This package is the from-scratch replacement for the NS2 802.11 MAC/PHY
used in the paper's validation setup.  It models:

* PHY/MAC timing constants (:mod:`repro.mac.params`) — slot, SIFS, DIFS,
  PLCP preamble, data/basic rates, contention window limits;
* frame airtimes (:mod:`repro.mac.frames`);
* slot-timing constants shared by the event and vector backends
  (:mod:`repro.mac.timing`);
* binary exponential backoff (:mod:`repro.mac.backoff`);
* a shared medium with contention, collisions and ACKs
  (:mod:`repro.mac.medium`);
* stations with infinite FIFO transmission queues
  (:mod:`repro.mac.station`), producing the per-packet
  arrival/HOL/departure records the paper's analysis consumes;
* ready-made single-BSS scenarios (:mod:`repro.mac.scenario`).

The paper's conventions are kept throughout: the *access delay* ``mu_i``
of a packet is the time from reaching the head of the transmission
queue until it is completely transmitted (scheduling + transmission
time, section 3.1).
"""

from repro.mac.params import PhyParams
from repro.mac.frames import AirtimeModel
from repro.mac.timing import SlotTiming, contention_window, cw_table
from repro.mac.backoff import BackoffState
from repro.mac.medium import Medium
from repro.mac.station import Station
from repro.mac.scenario import (
    ScenarioResult,
    StationSpec,
    WlanScenario,
    saturated_station_specs,
)

__all__ = [
    "AirtimeModel",
    "BackoffState",
    "Medium",
    "PhyParams",
    "ScenarioResult",
    "SlotTiming",
    "Station",
    "StationSpec",
    "WlanScenario",
    "contention_window",
    "cw_table",
    "saturated_station_specs",
]
