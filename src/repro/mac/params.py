"""PHY/MAC timing parameters.

Defaults correspond to IEEE 802.11b DSSS with a long PLCP preamble at
11 Mb/s, which is the configuration of the paper's testbed (Prism
chipset cards) and NS2 setup (PHY rate 11 Mb/s, no RTS/CTS).  With
1500-byte packets this yields a link capacity of ~6.2-6.5 Mb/s,
matching the C ≈ 6.5 Mb/s the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhyParams:
    """Timing and protocol constants for a DCF link.

    All durations are in seconds, rates in bit/s.

    Attributes
    ----------
    slot_time:
        Backoff slot duration (aSlotTime).
    sifs:
        Short interframe space.
    data_rate:
        PHY rate used for data MPDUs.
    basic_rate:
        PHY rate used for control frames (ACKs).
    plcp_overhead:
        PLCP preamble + header airtime prepended to every frame.
    cw_min / cw_max:
        Minimum / maximum contention window (number of slots minus one;
        the first backoff is drawn uniformly from ``[0, cw_min]``).
    mac_overhead_bytes:
        Bytes added to the network-layer packet by the MAC: 24 B MAC
        header + 4 B FCS + 8 B LLC/SNAP.
    ack_bytes:
        ACK frame size (14 B).
    difs_slots:
        DIFS = SIFS + ``difs_slots`` * slot (2 for DCF).
    """

    slot_time: float = 20e-6
    sifs: float = 10e-6
    data_rate: float = 11e6
    basic_rate: float = 2e6
    plcp_overhead: float = 192e-6
    cw_min: int = 31
    cw_max: int = 1023
    mac_overhead_bytes: int = 36
    ack_bytes: int = 14
    rts_bytes: int = 20
    cts_bytes: int = 14
    difs_slots: int = 2

    def __post_init__(self) -> None:
        if self.slot_time <= 0 or self.sifs <= 0:
            raise ValueError("slot_time and sifs must be positive")
        if self.data_rate <= 0 or self.basic_rate <= 0:
            raise ValueError("rates must be positive")
        if self.plcp_overhead < 0:
            raise ValueError("plcp_overhead must be non-negative")
        if self.cw_min < 0 or self.cw_max < self.cw_min:
            raise ValueError("need 0 <= cw_min <= cw_max")
        if self.mac_overhead_bytes < 0 or self.ack_bytes <= 0:
            raise ValueError("invalid frame overheads")
        if self.rts_bytes <= 0 or self.cts_bytes <= 0:
            raise ValueError("invalid RTS/CTS frame sizes")
        if self.difs_slots < 1:
            raise ValueError("difs_slots must be >= 1")

    @property
    def difs(self) -> float:
        """DCF interframe space."""
        return self.sifs + self.difs_slots * self.slot_time

    @property
    def eifs(self) -> float:
        """Extended IFS used after an erroneous frame reception."""
        ack_airtime = self.plcp_overhead + self.ack_bytes * 8 / self.basic_rate
        return self.sifs + ack_airtime + self.difs

    @property
    def max_backoff_stage(self) -> int:
        """Number of doublings from cw_min to cw_max."""
        stage = 0
        cw = self.cw_min
        while cw < self.cw_max:
            cw = min(self.cw_max, (cw + 1) * 2 - 1)
            stage += 1
        return stage

    @classmethod
    def dot11b(cls) -> "PhyParams":
        """802.11b, 11 Mb/s, long preamble (the paper's testbed)."""
        return cls()

    @classmethod
    def dot11b_short_preamble(cls) -> "PhyParams":
        """802.11b, 11 Mb/s, short PLCP preamble."""
        return cls(plcp_overhead=96e-6)

    @classmethod
    def dot11g(cls, data_rate: float = 54e6) -> "PhyParams":
        """802.11g ERP-OFDM (pure-g network, short slot).

        ``plcp_overhead`` bundles the 20 us OFDM preamble+signal plus
        the 6 us signal extension.
        """
        return cls(
            slot_time=9e-6,
            sifs=10e-6,
            data_rate=data_rate,
            basic_rate=24e6,
            plcp_overhead=26e-6,
            cw_min=15,
            cw_max=1023,
        )
