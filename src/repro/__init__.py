"""repro — reproduction of "Impact of Transient CSMA/CA Access Delays on
Active Bandwidth Measurements" (Portoles-Comeras et al., IMC 2009).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.mac` — IEEE 802.11 DCF (CSMA/CA) link simulator;
* :mod:`repro.queueing` — wired FIFO hop (Lindley recursion, workload
  processes) — the paper's Matlab queueing simulator;
* :mod:`repro.traffic` — cross-traffic generators and probing trains;
* :mod:`repro.analytic` — Bianchi DCF model, steady-state rate-response
  curves, transient dispersion bounds;
* :mod:`repro.stats` — KS test, MSER-m warm-up heuristics, descriptive
  statistics;
* :mod:`repro.core` — the paper's contribution as a library: dispersion
  measurements, estimators, transient-state analysis, bias correction;
* :mod:`repro.testbed` — emulated testbed (prober API with timestamp
  error models);
* :mod:`repro.analysis` — one experiment runner per figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
