"""Columnar result store for dense parameter sweeps.

A million-point sweep cannot afford one JSON cache file (plus one
fsync) per point.  :class:`SweepStore` replaces the per-point JSON
sink for ``repro sweep --store``: results are buffered in memory and
flushed in *chunks* — one columnar file per execution window — with an
append-only JSONL index recording which points each chunk holds.

Format tiers
------------
Chunks are Apache Parquet when ``pyarrow`` is importable and
compressed ``.npz`` column bundles otherwise — the same graceful
degradation contract as the jit tier (:mod:`repro.sim.jit`):
:func:`available` answers whether the parquet tier can run,
:func:`unavailable_reason` says why not, and the ``_FORCE_AVAILABLE``
hook lets tests exercise both branches regardless of what this
machine has installed.  Both formats hold the identical logical table,
so every query works the same either way.

Schema
------
One row per executed sweep point.  Fixed columns:

``point_id``   the manifest identity hash (:func:`repro.runtime.manifest.point_id`)
``label``      the human point label (``"a=1, b=2"``)
``status``     ``done`` / ``failed`` / ``error``
``elapsed_s``  wall-clock of the point's execution
``error``      the exception string for errored points (else ``""``)
``payload``    the full ``ExperimentResult.to_dict()`` as canonical JSON

plus one column per swept parameter (declared at :meth:`SweepStore.create`
time; the schema is fixed for the lifetime of the store).  The payload
column preserves bit-identical round-trips — ``store.payload(pid)``
rebuilds exactly the result a standalone ``repro run`` at that point
returns — while the parameter/status columns make "give me the metric
over the grid" a columnar scan that never parses payloads.

Durability
----------
The same discipline as :mod:`repro.runtime.manifest`: a chunk file is
published atomically (temp file + ``os.replace``) *before* its index
line is appended (single ``O_APPEND`` write), so a crash leaves either
a fully indexed chunk or an invisible orphan file — never a torn
table.  A torn final index line is detected and dropped on open; the
points it described simply count as pending and re-run.  Duplicate
rows for a point (written by a crashed-then-resumed sweep) are
resolved last-chunk-wins on read.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import sys
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Set, Tuple)

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.runtime.cache import code_version

#: Bump when the store layout or schema changes.
STORE_VERSION = 1

#: Name of the JSONL index file inside a store directory.
INDEX_NAME = "index.jsonl"

#: Columns every store carries, regardless of the swept parameters.
FIXED_COLUMNS = ("point_id", "label", "status", "elapsed_s", "error",
                 "payload")

#: Test hook: force :func:`available` to a fixed answer (``None`` =
#: answer honestly) so both format tiers are testable on any machine.
_FORCE_AVAILABLE: Optional[bool] = None

try:  # pyarrow is an optional accelerator, never a requirement
    import pyarrow as _pyarrow
    import pyarrow.parquet as _parquet
except ImportError:  # pragma: no cover - exercised on pyarrow-free CI
    _pyarrow = None
    _parquet = None


def available() -> bool:
    """Whether the parquet tier can actually run.

    Consults ``sys.modules`` (not just the import result) so a test
    hiding pyarrow via ``sys.modules`` monkeypatching flips the answer
    without reloading this module.
    """
    if _FORCE_AVAILABLE is not None:
        return bool(_FORCE_AVAILABLE)
    if _pyarrow is None:
        return False
    return sys.modules.get("pyarrow") is not None


def unavailable_reason() -> Optional[str]:
    """Why the parquet tier cannot run (``None`` when it can)."""
    return None if available() else "pyarrow not installed"


class StoreError(ValueError):
    """A store directory cannot be used (missing/invalid index,
    schema mismatch, or a format this environment cannot read)."""


def _dump_index_line(payload: Mapping[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SweepStore:
    """One append-only chunked columnar store (see module docstring)."""

    def __init__(self, root: os.PathLike, header: Dict[str, object],
                 chunks: Optional[List[Dict[str, object]]] = None) -> None:
        self.root = pathlib.Path(root)
        self.header = header
        self.chunks: List[Dict[str, object]] = list(chunks or [])
        self._buffer: List[Dict[str, object]] = []

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, root: os.PathLike, experiment: str,
               params: Sequence[str],
               fmt: Optional[str] = None) -> "SweepStore":
        """Start a fresh store at ``root`` (a directory).

        Existing chunk/index files there are removed — starting a sweep
        without ``--resume`` deliberately abandons the old store, the
        same contract as :meth:`Manifest.create`.  ``fmt`` defaults to
        ``parquet`` when pyarrow is importable, ``npz`` otherwise.
        """
        fmt = fmt or ("parquet" if available() else "npz")
        if fmt not in ("parquet", "npz"):
            raise StoreError(f"unknown store format {fmt!r}")
        if fmt == "parquet" and not available():
            raise StoreError(
                f"cannot create a parquet store: {unavailable_reason()}")
        params = [str(name) for name in params]
        clash = sorted(set(params) & set(FIXED_COLUMNS))
        if clash:
            raise StoreError(
                f"swept parameter(s) {', '.join(clash)} collide with "
                "the store's fixed columns")
        root = pathlib.Path(root)
        root.mkdir(parents=True, exist_ok=True)
        for stale in list(root.glob("chunk-*.parquet")) \
                + list(root.glob("chunk-*.npz")) \
                + list(root.glob(f"{INDEX_NAME}*")):
            stale.unlink()
        header = {
            "kind": "header", "store_version": STORE_VERSION,
            "experiment": experiment, "format": fmt,
            "params": params,
        }
        index = root / INDEX_NAME
        tmp = index.with_name(f"{index.name}.{os.getpid()}.tmp")
        tmp.write_text(_dump_index_line(header) + "\n")
        os.replace(tmp, index)
        return cls(root, header)

    @classmethod
    def open(cls, root: os.PathLike) -> "SweepStore":
        """Open an existing store for appending and querying.

        Drops a torn final index line (the one kind of damage a crash
        can cause given the append discipline); any other malformed
        content raises :class:`StoreError`.  Opening a parquet store
        on a pyarrow-free machine raises with the structured reason.
        """
        root = pathlib.Path(root)
        index = root / INDEX_NAME
        try:
            data = index.read_bytes()
        except OSError as exc:
            raise StoreError(
                f"cannot read store index {index}: {exc}") from exc
        lines = data.split(b"\n")
        if lines:
            lines.pop()  # empty tail after a clean trailing newline
        rows: List[Dict[str, object]] = []
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                if position == len(lines) - 1:
                    continue  # torn tail with a trailing newline
                raise StoreError(
                    f"store index {index} line {position + 1} is not "
                    "JSON (not a sweep store, or damaged beyond a "
                    "torn tail)")
        if not rows or rows[0].get("kind") != "header":
            raise StoreError(f"store index {index} has no header line")
        header = rows[0]
        if header.get("store_version") != STORE_VERSION:
            raise StoreError(
                f"store {root} has version "
                f"{header.get('store_version')!r}; this build reads "
                f"version {STORE_VERSION}")
        if header.get("format") == "parquet" and not available():
            raise StoreError(
                f"store {root} holds parquet chunks but "
                f"{unavailable_reason()}")
        chunks = []
        for row in rows[1:]:
            if row.get("kind") != "chunk":
                raise StoreError(
                    f"store index {index} has an unknown record kind "
                    f"{row.get('kind')!r}")
            # An indexed chunk whose file is missing (crash between
            # nothing — publish precedes indexing — or manual damage)
            # is dropped: its points count as pending and re-run.
            if (root / str(row["file"])).exists():
                chunks.append(row)
        return cls(root, header, chunks)

    # -- properties ----------------------------------------------------

    @property
    def format(self) -> str:
        """``parquet`` or ``npz``."""
        return str(self.header["format"])

    @property
    def experiment(self) -> str:
        """The experiment this store's rows belong to."""
        return str(self.header["experiment"])

    @property
    def params(self) -> List[str]:
        """The swept parameter columns (fixed at create time)."""
        return [str(name) for name in self.header["params"]]

    @property
    def columns(self) -> List[str]:
        """All queryable columns: fixed ones plus the parameters."""
        return list(FIXED_COLUMNS) + self.params

    # -- writing -------------------------------------------------------

    def append(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Buffer rows for the next :meth:`flush`.

        Each row must carry every schema column (``error`` defaults to
        ``""``); unknown keys are rejected so a schema drift fails at
        the write, not as a silent column loss on read.
        """
        for row in rows:
            staged: Dict[str, object] = {"error": ""}
            staged.update(row)
            missing = [c for c in self.columns if c not in staged]
            unknown = [c for c in staged if c not in self.columns]
            if missing or unknown:
                raise StoreError(
                    f"row does not match the store schema "
                    f"(missing: {missing}, unknown: {unknown})")
            self._buffer.append(staged)

    def flush(self) -> Optional[pathlib.Path]:
        """Publish buffered rows as one chunk (atomic), index it.

        Returns the chunk path, or ``None`` when the buffer was empty.
        The chunk file is fully published *before* its index line is
        appended, so a crash between the two leaves an orphan file the
        index never mentions — invisible, and re-run on resume.
        """
        if not self._buffer:
            return None
        serial = len(self.chunks)
        while True:
            name = f"chunk-{serial:05d}.{self.format}"
            if not (self.root / name).exists():
                break
            serial += 1
        path = self.root / name
        columns = {column: [row[column] for row in self._buffer]
                   for column in self.columns}
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        if self.format == "parquet":
            self._write_parquet(tmp, columns)
        else:
            self._write_npz(tmp, columns)
        os.replace(tmp, path)
        entry = {
            "kind": "chunk", "file": name,
            "count": len(self._buffer),
            "code_version": code_version(),
            "point_ids": [str(row["point_id"]) for row in self._buffer],
            "statuses": [str(row["status"]) for row in self._buffer],
        }
        line = (_dump_index_line(entry) + "\n").encode()
        fd = os.open(self.root / INDEX_NAME,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self.chunks.append(entry)
        self._buffer = []
        return path

    def close(self) -> None:
        """Flush any buffered rows (stores need no other teardown)."""
        self.flush()

    def _write_parquet(self, path: pathlib.Path,
                       columns: Dict[str, List[object]]) -> None:
        table = _pyarrow.table(
            {name: _column_array(name, values, self.params)
             for name, values in columns.items()})
        _parquet.write_table(table, path)

    def _write_npz(self, path: pathlib.Path,
                   columns: Dict[str, List[object]]) -> None:
        arrays = {name: _column_array(name, values, self.params)
                  for name, values in columns.items()}
        # np.savez_compressed appends ``.npz`` to names that lack it;
        # write through a buffer so the temp path stays exactly ours.
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        path.write_bytes(buffer.getvalue())

    # -- reading -------------------------------------------------------

    def completed(self, version: Optional[str] = None) -> Set[str]:
        """Point ids safe to skip on resume.

        A point counts as completed only when its latest row is
        ``done`` *and* was written under the given code version
        (default: the current one) — a resume after a code edit
        re-runs every point instead of serving stale results, the same
        triple-check discipline the JSON-cache resume path uses.  The
        answer comes entirely from the index; no chunk is read.
        """
        version = version if version is not None else code_version()
        latest: Dict[str, Tuple[str, str]] = {}
        for chunk in self.chunks:
            chunk_version = str(chunk.get("code_version", ""))
            for pid, status in zip(chunk["point_ids"],
                                   chunk["statuses"]):
                latest[str(pid)] = (str(status), chunk_version)
        return {pid for pid, (status, chunk_version) in latest.items()
                if status == "done" and chunk_version == version}

    def point_ids(self) -> Set[str]:
        """Every point id with at least one row (any status)."""
        return {str(pid) for chunk in self.chunks
                for pid in chunk["point_ids"]}

    def frame(self, columns: Optional[Sequence[str]] = None,
              where: Optional[Mapping[str, object]] = None
              ) -> Dict[str, np.ndarray]:
        """Columnar view of the store: ``column -> ndarray``.

        ``columns`` projects (default: every column); ``where`` is an
        equality filter over any columns (``{"cross_rate_bps": 4e6}``).
        Duplicate rows for a point id — a crashed-then-resumed sweep
        re-executing its torn tail — resolve last-chunk-wins, so the
        frame always has one row per point.  The result converts
        directly: ``pandas.DataFrame(store.frame())``.
        """
        wanted = list(columns) if columns is not None else self.columns
        unknown = [c for c in wanted if c not in self.columns]
        if unknown:
            raise StoreError(f"unknown column(s) {unknown}; "
                             f"store has {self.columns}")
        where = dict(where or {})
        bad = [c for c in where if c not in self.columns]
        if bad:
            raise StoreError(f"unknown filter column(s) {bad}; "
                             f"store has {self.columns}")
        read = sorted(set(wanted) | set(where) | {"point_id"})
        pools: Dict[str, List[object]] = {name: [] for name in read}
        for chunk in self.chunks:
            arrays = self._read_chunk(str(chunk["file"]), read)
            for name in read:
                pools[name].extend(arrays[name].tolist())
        keep: Dict[str, int] = {}
        for position, pid in enumerate(pools["point_id"]):
            keep[str(pid)] = position  # later rows win
        order = sorted(keep.values())
        order = [position for position in order
                 if all(pools[c][position] == value
                        for c, value in where.items())]
        return {name: np.asarray([pools[name][position]
                                  for position in order])
                for name in wanted}

    def rows(self, columns: Optional[Sequence[str]] = None,
             where: Optional[Mapping[str, object]] = None
             ) -> List[Dict[str, object]]:
        """:meth:`frame` as a list of per-point dicts."""
        frame = self.frame(columns, where)
        names = list(frame)
        length = len(frame[names[0]]) if names else 0
        return [{name: frame[name][i].item()
                 if hasattr(frame[name][i], "item") else frame[name][i]
                 for name in names} for i in range(length)]

    def payload(self, pid: str) -> Optional[ExperimentResult]:
        """Rebuild the full result stored for one point id.

        ``None`` when the store has no row for the point.  The round
        trip is bit-identical: the payload column holds the exact
        ``to_dict()`` JSON of the result the point's execution
        produced.
        """
        frame = self.frame(columns=["point_id", "payload"])
        for row_pid, blob in zip(frame["point_id"], frame["payload"]):
            if str(row_pid) == pid and str(blob):
                return ExperimentResult.from_dict(json.loads(str(blob)))
        return None

    def _read_chunk(self, name: str,
                    columns: Sequence[str]) -> Dict[str, np.ndarray]:
        path = self.root / name
        if self.format == "parquet":
            table = _parquet.read_table(path, columns=list(columns))
            return {column: np.asarray(table.column(column).to_pylist())
                    for column in columns}
        with np.load(path, allow_pickle=False) as bundle:
            return {column: bundle[column] for column in columns}

    # -- accounting ----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Entry counts and disk usage (``repro cache stats``)."""
        size = 0
        for child in self.root.iterdir():
            if child.is_file():
                size += child.stat().st_size
        total_rows = sum(int(chunk["count"]) for chunk in self.chunks)
        return {
            "path": str(self.root), "format": self.format,
            "experiment": self.experiment,
            "chunks": len(self.chunks), "rows": total_rows,
            "points": len(self.point_ids()),
            "size_bytes": size,
        }


def _column_array(name: str, values: List[object],
                  params: Sequence[str]) -> np.ndarray:
    """One schema column as a homogeneous numpy array.

    Fixed string columns are always unicode; ``elapsed_s`` is float;
    parameter columns stay numeric when every value is a plain number
    and degrade to strings on any mix (a swept ``backend=...`` next to
    numeric rates) — both chunk formats require homogeneous columns,
    and string-ification is lossless for filtering/labelling purposes.
    """
    if name == "elapsed_s":
        return np.asarray([float(v) for v in values], dtype=float)
    if name in params:
        if all(isinstance(v, bool) or isinstance(v, (int, float))
               for v in values):
            return np.asarray(values)
        return np.asarray([str(v) for v in values])
    return np.asarray(["" if v is None else str(v) for v in values])
