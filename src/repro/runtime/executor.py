"""Repetition sharding across worker processes.

Every heavy experiment in this repository bottoms out in the same hot
loop: send N independent repetitions of a probing train through a
fresh channel (``Channel.send_trains``), then compute statistics over
the collected per-repetition results.  The executor parallelises that
loop — and *only* that loop — because it is the one place where
fan-out cannot change the answer:

* the per-repetition seeds are derived up front from the experiment
  seed (``SeedSequence(seed).generate_state(repetitions)``), so shard
  k replays exactly the seeds a serial run would have used for its
  repetition indices;
* each repetition is a pure function of ``(channel, train, seed)``;
* the parent reassembles shard results in repetition order before any
  statistic is computed.

Mean profiles, KS distances and histograms therefore see bit-identical
inputs whether the repetitions ran in one process or eight — the
property ``python -m repro run fig6 --jobs 4`` relies on.

Sharding is *ambient*: :func:`parallel_jobs` installs a job count for
the current scope and :meth:`repro.testbed.channel.Channel.send_trains`
picks it up via :func:`map_ordered`.  Runner code needs no plumbing,
and nested fan-out (a worker trying to fork its own pool) degrades
safely to serial execution.

Chunking works the same way: :func:`chunked_reps` installs an ambient
streaming chunk size (CLI: ``--chunk-reps``; environment:
``REPRO_CHUNK_REPS``) that the vector backends pick up through
:meth:`repro.backends.BatchRequest.resolved_chunk_reps` — a kernel
batch is then resolved in contiguous chunks of that many repetitions
and folded online instead of materialising the dense matrices.  Like
``--jobs``, the chunk size never changes results (chunks replay the
exact seed slice of the dense derivation), so it stays out of cache
keys.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from contextlib import contextmanager
from typing import (Any, Callable, Iterator, List, Optional, Sequence,
                    Tuple, TypeVar)

import numpy as np

from repro.backends import BatchRequest, ScenarioSpec, dispatch

T = TypeVar("T")
R = TypeVar("R")

#: Repetition backends an experiment can route batches to.
BACKENDS = ("event", "vector")

#: Backend choices a caller may request (concrete backends + ``auto``).
REQUESTABLE = dispatch.REQUESTABLE

#: Environment variable consulted when no ambient job count is set.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable consulted when no ambient chunk size is set.
CHUNK_ENV = "REPRO_CHUNK_REPS"

_AMBIENT_JOBS: Optional[int] = None

#: Sentinel distinguishing "no chunk scope installed" from an explicit
#: ``chunked_reps(None)`` (which forces dense, overriding the
#: environment variable).
_CHUNK_UNSET: Any = object()

_AMBIENT_CHUNK: Any = _CHUNK_UNSET

# Worker-side state: the mapped callable, installed by the pool
# initializer.  ``_IN_WORKER`` makes nested map_ordered calls serial.
_WORKER_FN: Optional[Callable] = None
_IN_WORKER = False


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job-count request.

    ``None`` defers to the ambient scope (then the ``REPRO_JOBS``
    environment variable, then 1); ``0`` means "one per CPU"; negative
    values are rejected.
    """
    if jobs is None:
        return active_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def active_jobs() -> int:
    """The job count in effect for this scope (default 1).

    An unparsable or negative ``REPRO_JOBS`` falls back to serial
    execution with a warning rather than aborting mid-experiment.
    """
    if _IN_WORKER:
        return 1
    if _AMBIENT_JOBS is not None:
        return _AMBIENT_JOBS
    raw = os.environ.get(JOBS_ENV, "1")
    try:
        return resolve_jobs(int(raw))
    except ValueError:
        warnings.warn(f"ignoring invalid {JOBS_ENV}={raw!r}; "
                      "running serially", stacklevel=2)
        return 1


@contextmanager
def parallel_jobs(jobs: int) -> Iterator[int]:
    """Install an ambient job count for the duration of the block.

    >>> with parallel_jobs(4):
    ...     result = fig6_mean_access_delay()        # doctest: +SKIP

    Scopes nest; the innermost wins.  ``jobs=0`` resolves to the CPU
    count.
    """
    global _AMBIENT_JOBS
    resolved = resolve_jobs(jobs)
    previous = _AMBIENT_JOBS
    _AMBIENT_JOBS = resolved
    try:
        yield resolved
    finally:
        _AMBIENT_JOBS = previous


def active_chunk_reps() -> Optional[int]:
    """The streaming chunk size in effect for this scope.

    ``None`` means dense (the default).  Resolution order: the
    innermost :func:`chunked_reps` scope, then the
    ``REPRO_CHUNK_REPS`` environment variable, then dense.  An
    unparsable or non-positive environment value falls back to dense
    with a warning rather than aborting mid-experiment.
    """
    if _AMBIENT_CHUNK is not _CHUNK_UNSET:
        return _AMBIENT_CHUNK
    raw = os.environ.get(CHUNK_ENV)
    if raw is None:
        return None
    try:
        value = int(raw)
        if value < 1:
            raise ValueError(raw)
    except ValueError:
        warnings.warn(f"ignoring invalid {CHUNK_ENV}={raw!r}; "
                      "running dense", stacklevel=2)
        return None
    return value


@contextmanager
def chunked_reps(chunk_reps: Optional[int]) -> Iterator[Optional[int]]:
    """Install an ambient streaming chunk size for the block.

    >>> with chunked_reps(1000):
    ...     result = fig6_mean_access_delay()        # doctest: +SKIP

    Scopes nest; the innermost wins, and an explicit ``None`` forces
    dense execution even under an outer chunked scope (or a
    ``REPRO_CHUNK_REPS`` environment variable).  Chunking is an
    execution detail like the job count: results are bit-identical to
    a dense run at any chunk size.
    """
    global _AMBIENT_CHUNK
    if chunk_reps is not None and chunk_reps < 1:
        raise ValueError(f"chunk_reps must be >= 1, got {chunk_reps}")
    previous = _AMBIENT_CHUNK
    _AMBIENT_CHUNK = chunk_reps
    try:
        yield chunk_reps
    finally:
        _AMBIENT_CHUNK = previous


def derive_seeds(seed: int, repetitions: int) -> List[int]:
    """The canonical per-repetition seeds for a batch.

    ``SeedSequence(seed).generate_state(repetitions)`` — shard ``k`` of
    a parallel run replays exactly the seeds a serial run would have
    used for its repetition indices, and the vector backend
    (:mod:`repro.sim.vector`) derives its per-repetition streams from
    the very same values, so switching backends never changes which
    random universes a repetition index maps to.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    state = np.random.SeedSequence(seed).generate_state(repetitions)
    return [int(s) for s in state]


def run_batch(request, repetitions: Optional[int] = None,
              seed: Optional[int] = None, backend: str = "event",
              vector_batch: Optional[Callable[[int], T]] = None,
              spec: Optional[ScenarioSpec] = None,
              chunk_reps: Optional[int] = None):
    """Route one repetition batch through the backend dispatcher.

    The first argument is a :class:`repro.backends.BatchRequest`
    describing the batch once for every backend: the event backend
    maps ``request.event_task`` (a pure ``rep_seed -> result``
    function) over the derived per-repetition seeds through
    :func:`map_ordered`; the vector backends hand
    ``request.batch_task`` the per-repetition seed array — sliced into
    contiguous chunks when a chunk size is in effect (the request's
    ``chunk_reps``, this function's ``chunk_reps`` override, or the
    ambient :func:`chunked_reps` scope), each chunk folded into the
    request's reducer.  Dense and chunked runs are bit-identical: a
    chunk replays exactly the seed slice of the dense derivation.

    ``backend="auto"`` asks :func:`repro.backends.dispatch.resolve` to
    pick the fastest backend eligible for the request's spec (a
    declarative :class:`~repro.backends.ScenarioSpec`); with no spec
    declared, ``auto`` always takes the event engine — an undescribed
    scenario must never silently ride a kernel — while a *forced*
    ``vector`` resolves to the synthetic caller-kernel backend (the
    caller vouches for its ``batch_task``), so every run, bypass-free,
    carries a dispatch resolution.

    The old ``run_batch(event_task, repetitions, seed, backend=…,
    vector_batch=…, spec=…)`` convention still works for one release
    (with a ``DeprecationWarning``); its ``vector_batch`` keeps
    receiving the *scalar* batch seed and always runs dense.
    """
    if isinstance(request, BatchRequest):
        if repetitions is not None or seed is not None \
                or vector_batch is not None or spec is not None:
            raise TypeError(
                "pass either a BatchRequest or the deprecated "
                "(event_task, repetitions, seed, vector_batch=, spec=) "
                "arguments, not both")
    else:
        warnings.warn(
            "run_batch(event_task, repetitions, seed, ...) is "
            "deprecated; pass a repro.backends.BatchRequest instead",
            DeprecationWarning, stacklevel=2)
        if repetitions is None or seed is None:
            raise TypeError("the deprecated calling convention needs "
                            "(event_task, repetitions, seed, ...)")
        request = BatchRequest(
            repetitions=repetitions, seed=seed, event_task=request,
            batch_task=vector_batch, spec=spec,
            legacy_scalar_seed=vector_batch is not None)
    if chunk_reps is not None:
        request = request.with_chunk_reps(chunk_reps)
    if backend not in REQUESTABLE:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {REQUESTABLE}")
    resolution = dispatch.resolve(request.spec, backend,
                                  trust_caller_kernel=True)
    # A vector resolution without a kernel raises inside run_batch
    # (the backend owns that error message).
    return resolution.backend.run_batch(request)


def shard_bounds(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` index ranges splitting ``n_items``.

    The first ``n_items % shards`` shards get one extra item, so sizes
    differ by at most one.  Empty shards are never produced.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n_items) or 1
    base, extra = divmod(n_items, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def _worker_init(fn: Callable) -> None:
    """Pool initializer: stash the mapped callable in the worker."""
    global _WORKER_FN, _IN_WORKER
    _WORKER_FN = fn
    _IN_WORKER = True


def _run_shard(items: Sequence) -> List:
    """Apply the installed callable to one shard of items, in order."""
    assert _WORKER_FN is not None, "pool initializer did not run"
    return [_WORKER_FN(item) for item in items]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (no pickling of the mapped callable)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def map_ordered(fn: Callable[[T], R], items: Sequence[T],
                jobs: Optional[int] = None) -> List[R]:
    """``[fn(item) for item in items]``, fanned across processes.

    Items are split into contiguous shards (one per job) and executed
    by worker processes; the returned list preserves item order
    exactly, so callers observe serial semantics.  With ``jobs=None``
    the ambient :func:`parallel_jobs` scope decides; a job count of 1
    (or a single item, or a call from inside a worker) short-circuits
    to a plain loop with zero multiprocessing overhead.

    ``fn`` runs in forked children where available, so it may close
    over arbitrary unpicklable state; only ``items`` and the results
    cross the process boundary.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1 or _IN_WORKER:
        return [fn(item) for item in items]
    shards = [items[lo:hi] for lo, hi in shard_bounds(len(items), jobs)]
    ctx = _pool_context()
    with ctx.Pool(processes=len(shards), initializer=_worker_init,
                  initargs=(fn,)) as pool:
        shard_results = pool.map(_run_shard, shards, chunksize=1)
    return [result for shard in shard_results for result in shard]
