"""Repetition sharding across worker processes.

Every heavy experiment in this repository bottoms out in the same hot
loop: send N independent repetitions of a probing train through a
fresh channel (``Channel.send_trains``), then compute statistics over
the collected per-repetition results.  The executor parallelises that
loop — and *only* that loop — because it is the one place where
fan-out cannot change the answer:

* the per-repetition seeds are derived up front from the experiment
  seed (``SeedSequence(seed).generate_state(repetitions)``), so shard
  k replays exactly the seeds a serial run would have used for its
  repetition indices;
* each repetition is a pure function of ``(channel, train, seed)``;
* the parent reassembles shard results in repetition order before any
  statistic is computed.

Mean profiles, KS distances and histograms therefore see bit-identical
inputs whether the repetitions ran in one process or eight — the
property ``python -m repro run fig6 --jobs 4`` relies on.

Sharding is *ambient*: :func:`parallel_jobs` installs a job count for
the current scope and :meth:`repro.testbed.channel.Channel.send_trains`
picks it up via :func:`map_ordered`.  Runner code needs no plumbing,
and nested fan-out (a worker trying to fork its own pool) degrades
safely to serial execution.

Sharding is also *supervised*: each shard runs in its own worker
process watched over a result pipe, so a worker that is killed,
segfaults, or hangs past ``--shard-timeout`` is retried with
exponential backoff (``--retries``) and finally executed in-process —
a crash degrades throughput, never correctness, because shards are
pure functions of :func:`derive_seeds`.  Recovery actions surface as
``meta["failures"]`` through :func:`collect_failures`.

Chunking works the same way: :func:`chunked_reps` installs an ambient
streaming chunk size (CLI: ``--chunk-reps``; environment:
``REPRO_CHUNK_REPS``) that the vector backends pick up through
:meth:`repro.backends.BatchRequest.resolved_chunk_reps` — a kernel
batch is then resolved in contiguous chunks of that many repetitions
and folded online instead of materialising the dense matrices.  Like
``--jobs``, the chunk size never changes results (chunks replay the
exact seed slice of the dense derivation), so it stays out of cache
keys.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import sys
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence, Tuple, TypeVar)

import numpy as np

from repro.backends import BatchRequest, ScenarioSpec, dispatch

T = TypeVar("T")
R = TypeVar("R")

#: Repetition backends an experiment can route batches to.
BACKENDS = ("event", "vector", "jit")

#: Backend choices a caller may request (concrete backends + ``auto``).
REQUESTABLE = dispatch.REQUESTABLE

#: Environment variable consulted when no ambient job count is set.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable consulted when no ambient chunk size is set.
CHUNK_ENV = "REPRO_CHUNK_REPS"

_AMBIENT_JOBS: Optional[int] = None

#: Sentinel distinguishing "no chunk scope installed" from an explicit
#: ``chunked_reps(None)`` (which forces dense, overriding the
#: environment variable).
_CHUNK_UNSET: Any = object()

_AMBIENT_CHUNK: Any = _CHUNK_UNSET

# Worker-side flag: set in shard processes so nested map_ordered
# calls degrade to serial execution instead of forking again.
_IN_WORKER = False


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job-count request.

    ``None`` defers to the ambient scope (then the ``REPRO_JOBS``
    environment variable, then 1); ``0`` means "one per CPU"; negative
    values are rejected.
    """
    if jobs is None:
        return active_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def active_jobs() -> int:
    """The job count in effect for this scope (default 1).

    An unparsable or negative ``REPRO_JOBS`` falls back to serial
    execution with a warning rather than aborting mid-experiment.
    """
    if _IN_WORKER:
        return 1
    if _AMBIENT_JOBS is not None:
        return _AMBIENT_JOBS
    raw = os.environ.get(JOBS_ENV, "1")
    try:
        return resolve_jobs(int(raw))
    except ValueError:
        warnings.warn(f"ignoring invalid {JOBS_ENV}={raw!r}; "
                      "running serially", stacklevel=2)
        return 1


@contextmanager
def parallel_jobs(jobs: int) -> Iterator[int]:
    """Install an ambient job count for the duration of the block.

    >>> with parallel_jobs(4):
    ...     result = fig6_mean_access_delay()        # doctest: +SKIP

    Scopes nest; the innermost wins.  ``jobs=0`` resolves to the CPU
    count.
    """
    global _AMBIENT_JOBS
    resolved = resolve_jobs(jobs)
    previous = _AMBIENT_JOBS
    _AMBIENT_JOBS = resolved
    try:
        yield resolved
    finally:
        _AMBIENT_JOBS = previous


def active_chunk_reps() -> Optional[int]:
    """The streaming chunk size in effect for this scope.

    ``None`` means dense (the default).  Resolution order: the
    innermost :func:`chunked_reps` scope, then the
    ``REPRO_CHUNK_REPS`` environment variable, then dense.  An
    unparsable or non-positive environment value falls back to dense
    with a warning rather than aborting mid-experiment.
    """
    if _AMBIENT_CHUNK is not _CHUNK_UNSET:
        return _AMBIENT_CHUNK
    raw = os.environ.get(CHUNK_ENV)
    if raw is None:
        return None
    try:
        value = int(raw)
        if value < 1:
            raise ValueError(raw)
    except ValueError:
        warnings.warn(f"ignoring invalid {CHUNK_ENV}={raw!r}; "
                      "running dense", stacklevel=2)
        return None
    return value


@contextmanager
def chunked_reps(chunk_reps: Optional[int]) -> Iterator[Optional[int]]:
    """Install an ambient streaming chunk size for the block.

    >>> with chunked_reps(1000):
    ...     result = fig6_mean_access_delay()        # doctest: +SKIP

    Scopes nest; the innermost wins, and an explicit ``None`` forces
    dense execution even under an outer chunked scope (or a
    ``REPRO_CHUNK_REPS`` environment variable).  Chunking is an
    execution detail like the job count: results are bit-identical to
    a dense run at any chunk size.
    """
    global _AMBIENT_CHUNK
    if chunk_reps is not None and chunk_reps < 1:
        raise ValueError(f"chunk_reps must be >= 1, got {chunk_reps}")
    previous = _AMBIENT_CHUNK
    _AMBIENT_CHUNK = chunk_reps
    try:
        yield chunk_reps
    finally:
        _AMBIENT_CHUNK = previous


def derive_seeds(seed: int, repetitions: int) -> List[int]:
    """The canonical per-repetition seeds for a batch.

    ``SeedSequence(seed).generate_state(repetitions)`` — shard ``k`` of
    a parallel run replays exactly the seeds a serial run would have
    used for its repetition indices, and the vector backend
    (:mod:`repro.sim.vector`) derives its per-repetition streams from
    the very same values, so switching backends never changes which
    random universes a repetition index maps to.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    state = np.random.SeedSequence(seed).generate_state(repetitions)
    return [int(s) for s in state]


def run_batch(request, repetitions: Optional[int] = None,
              seed: Optional[int] = None, backend: str = "event",
              vector_batch: Optional[Callable[[int], T]] = None,
              spec: Optional[ScenarioSpec] = None,
              chunk_reps: Optional[int] = None):
    """Route one repetition batch through the backend dispatcher.

    The first argument is a :class:`repro.backends.BatchRequest`
    describing the batch once for every backend: the event backend
    maps ``request.event_task`` (a pure ``rep_seed -> result``
    function) over the derived per-repetition seeds through
    :func:`map_ordered`; the vector backends hand
    ``request.batch_task`` the per-repetition seed array — sliced into
    contiguous chunks when a chunk size is in effect (the request's
    ``chunk_reps``, this function's ``chunk_reps`` override, or the
    ambient :func:`chunked_reps` scope), each chunk folded into the
    request's reducer.  Dense and chunked runs are bit-identical: a
    chunk replays exactly the seed slice of the dense derivation.

    ``backend="auto"`` asks :func:`repro.backends.dispatch.resolve` to
    pick the fastest backend eligible for the request's spec (a
    declarative :class:`~repro.backends.ScenarioSpec`); with no spec
    declared, ``auto`` always takes the event engine — an undescribed
    scenario must never silently ride a kernel — while a *forced*
    ``vector`` resolves to the synthetic caller-kernel backend (the
    caller vouches for its ``batch_task``), so every run, bypass-free,
    carries a dispatch resolution.

    The old ``run_batch(event_task, repetitions, seed, backend=…,
    vector_batch=…, spec=…)`` convention still works for one release
    (with a ``DeprecationWarning``); its ``vector_batch`` keeps
    receiving the *scalar* batch seed and always runs dense.
    """
    if isinstance(request, BatchRequest):
        if repetitions is not None or seed is not None \
                or vector_batch is not None or spec is not None:
            raise TypeError(
                "pass either a BatchRequest or the deprecated "
                "(event_task, repetitions, seed, vector_batch=, spec=) "
                "arguments, not both")
    else:
        warnings.warn(
            "run_batch(event_task, repetitions, seed, ...) is "
            "deprecated; pass a repro.backends.BatchRequest instead",
            DeprecationWarning, stacklevel=2)
        if repetitions is None or seed is None:
            raise TypeError("the deprecated calling convention needs "
                            "(event_task, repetitions, seed, ...)")
        request = BatchRequest(
            repetitions=repetitions, seed=seed, event_task=request,
            batch_task=vector_batch, spec=spec,
            legacy_scalar_seed=vector_batch is not None)
    if chunk_reps is not None:
        request = request.with_chunk_reps(chunk_reps)
    if backend not in REQUESTABLE:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {REQUESTABLE}")
    resolution = dispatch.resolve(request.spec, backend,
                                  trust_caller_kernel=True)
    # A vector resolution without a kernel raises inside run_batch
    # (the backend owns that error message).
    return resolution.backend.run_batch(request)


def shard_bounds(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` index ranges splitting ``n_items``.

    The first ``n_items % shards`` shards get one extra item, so sizes
    differ by at most one.  Empty shards are never produced.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n_items) or 1
    base, extra = divmod(n_items, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (no pickling of the mapped callable)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


# ----------------------------------------------------------------------
# Retry policy + failure log: the fault-tolerance contract of
# map_ordered.  A crashed/killed/hung worker never aborts the run —
# its shard is retried with exponential backoff and, with retries
# exhausted, executed in-process.  Every recovery step is recorded so
# Experiment.run can surface it as ``meta["failures"]``.
# ----------------------------------------------------------------------

#: Environment variable: default shard retry count (``--retries``).
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable: default per-shard wall-clock budget in
#: seconds (``--shard-timeout``).
SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT"

#: Retries granted to a crashed/timed-out shard when nothing else is
#: configured (the *first* attempt is not a retry).
DEFAULT_RETRIES = 2

#: Base of the exponential retry backoff (seconds): attempt k waits
#: ``backoff_s * 2**(k-1)``.
DEFAULT_BACKOFF_S = 0.1


@dataclass(frozen=True)
class RetryPolicy:
    """Shard-supervision knobs in effect for one :func:`map_ordered`.

    ``retries`` counts *additional* attempts after the first;
    ``shard_timeout`` is a per-attempt wall-clock budget in seconds
    (``None`` = unbounded); ``backoff_s`` is the exponential backoff
    base between attempts.  The policy only governs *how* shards
    execute — because shards are pure functions of their items, no
    retry, timeout or fallback can change the results.
    """

    retries: int = DEFAULT_RETRIES
    shard_timeout: Optional[float] = None
    backoff_s: float = DEFAULT_BACKOFF_S

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0, got {self.retries}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}")
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}")


_AMBIENT_POLICY: Optional[RetryPolicy] = None

_FAILURE_LOG: Optional[List[Dict[str, object]]] = None


def active_retry_policy() -> RetryPolicy:
    """The retry policy in effect for this scope.

    Resolution order: the innermost :func:`retry_policy` scope, then
    the ``REPRO_RETRIES`` / ``REPRO_SHARD_TIMEOUT`` environment
    variables, then the defaults.  Unparsable environment values fall
    back to the defaults with a warning rather than aborting
    mid-experiment.
    """
    if _AMBIENT_POLICY is not None:
        return _AMBIENT_POLICY
    retries = DEFAULT_RETRIES
    raw = os.environ.get(RETRIES_ENV)
    if raw is not None:
        try:
            retries = int(raw)
            if retries < 0:
                raise ValueError(raw)
        except ValueError:
            warnings.warn(f"ignoring invalid {RETRIES_ENV}={raw!r}",
                          stacklevel=2)
            retries = DEFAULT_RETRIES
    timeout: Optional[float] = None
    raw = os.environ.get(SHARD_TIMEOUT_ENV)
    if raw is not None:
        try:
            timeout = float(raw)
            if timeout <= 0:
                raise ValueError(raw)
        except ValueError:
            warnings.warn(
                f"ignoring invalid {SHARD_TIMEOUT_ENV}={raw!r}",
                stacklevel=2)
            timeout = None
    return RetryPolicy(retries=retries, shard_timeout=timeout)


@contextmanager
def retry_policy(retries: Optional[int] = None,
                 shard_timeout: Optional[float] = None,
                 backoff_s: Optional[float] = None
                 ) -> Iterator[RetryPolicy]:
    """Install an ambient :class:`RetryPolicy` for the block.

    ``None`` arguments keep the surrounding scope's (or environment's)
    value.  Scopes nest; the innermost wins — exactly the
    :func:`parallel_jobs` discipline.
    """
    global _AMBIENT_POLICY
    base = active_retry_policy()
    policy = RetryPolicy(
        retries=base.retries if retries is None else retries,
        shard_timeout=base.shard_timeout if shard_timeout is None
        else shard_timeout,
        backoff_s=base.backoff_s if backoff_s is None else backoff_s)
    previous = _AMBIENT_POLICY
    _AMBIENT_POLICY = policy
    try:
        yield policy
    finally:
        _AMBIENT_POLICY = previous


@contextmanager
def collect_failures() -> Iterator[List[Dict[str, object]]]:
    """Collect shard-failure records for the duration of the block.

    :func:`map_ordered` appends one record per recovery action (retry
    or in-process fallback) to the innermost collector;
    :meth:`repro.runtime.registry.Experiment.run` installs one around
    the runner and surfaces the records as ``meta["failures"]`` —
    *after* the result is cached, so recovery provenance never
    perturbs the cached payload (bit-identical results, annotated
    reports).
    """
    global _FAILURE_LOG
    log: List[Dict[str, object]] = []
    previous = _FAILURE_LOG
    _FAILURE_LOG = log
    try:
        yield log
    finally:
        _FAILURE_LOG = previous


def _note_failure(record: Dict[str, object]) -> None:
    """Record one recovery action (and echo it to stderr)."""
    if _FAILURE_LOG is not None:
        _FAILURE_LOG.append(record)
    print(f"[executor] shard {record['shard']} "
          f"attempt {record['attempt']}: {record['reason']} -> "
          f"{record['action']}", file=sys.stderr)


# ----------------------------------------------------------------------
# Supervised shard execution
# ----------------------------------------------------------------------

def _shard_main(conn, fn: Callable, items: Sequence, shard_index: int,
                attempt: int) -> None:
    """Entry point of one supervised shard process.

    Sends exactly one ``(kind, payload)`` message on ``conn``:
    ``("ok", results)`` or ``("error", exception)``.  A process that
    dies without sending (injected crash, SIGKILL, OOM) is detected by
    the supervisor as EOF on the pipe.
    """
    global _IN_WORKER
    _IN_WORKER = True
    from repro.runtime import faults
    faults.maybe_crash_worker(shard_index, attempt)
    faults.maybe_slow_shard(shard_index)
    try:
        results = [fn(item) for item in items]
    except BaseException as exc:
        try:
            conn.send(("error", exc))
        except Exception:
            conn.send(("error", RuntimeError(
                f"shard {shard_index} raised unpicklable "
                f"{type(exc).__name__}: {exc}")))
    else:
        conn.send(("ok", results))
    conn.close()


class _ShardRun:
    """Supervisor-side state of one shard (attempt counter, process)."""

    def __init__(self, index: int, items: List) -> None:
        self.index = index
        self.items = items
        self.attempt = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.deadline: Optional[float] = None
        self.resume_at: Optional[float] = None

    def start(self, ctx, fn: Callable,
              policy: RetryPolicy) -> None:
        """(Re)spawn the worker process for the current attempt."""
        recv, send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_shard_main,
            args=(send, fn, self.items, self.index, self.attempt),
            daemon=True)
        self.process.start()
        # Close the parent's copy of the send end: a worker dying
        # without sending then reads as EOF instead of a hang.
        send.close()
        self.conn = recv
        self.resume_at = None
        self.deadline = (time.monotonic() + policy.shard_timeout
                         if policy.shard_timeout is not None else None)

    def retire(self) -> None:
        """Reap a worker that delivered (or EOFed) its message."""
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.process is not None:
            self.process.join()
            self.process = None
        self.deadline = None

    def kill(self) -> None:
        """Forcefully stop the worker (timeout, cleanup, interrupt)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        self.retire()


def _map_supervised(fn: Callable, shards: List[List],
                    policy: RetryPolicy) -> List:
    """Run shards under supervision; see :func:`map_ordered`.

    The loop multiplexes over the shard result pipes.  Three events
    exist per shard: a message (result or task exception), an EOF
    (worker died without delivering — crash), or a deadline expiry
    (hung/slow worker, killed here).  Crashes and expiries retry with
    exponential backoff up to ``policy.retries`` times, then fall back
    to in-process execution; task exceptions propagate unchanged
    (they are deterministic — a retry would fail identically).
    """
    ctx = _pool_context()
    runs = [_ShardRun(index, items) for index, items in enumerate(shards)]
    results: List[Optional[List]] = [None] * len(runs)
    pending = {run.index for run in runs}

    def fail(run: _ShardRun, reason: str) -> None:
        run.attempt += 1
        if run.attempt <= policy.retries:
            delay = policy.backoff_s * (2 ** (run.attempt - 1))
            _note_failure({"shard": run.index, "attempt": run.attempt,
                           "reason": reason, "action": "retry",
                           "backoff_s": delay})
            run.resume_at = time.monotonic() + delay
        else:
            _note_failure({"shard": run.index, "attempt": run.attempt,
                           "reason": reason,
                           "action": "in-process fallback"})
            results[run.index] = [fn(item) for item in run.items]
            pending.discard(run.index)

    try:
        for run in runs:
            run.start(ctx, fn, policy)
        while pending:
            now = time.monotonic()
            for run in runs:
                if run.index in pending and run.process is None \
                        and run.resume_at is not None \
                        and now >= run.resume_at:
                    run.start(ctx, fn, policy)
            live = [run for run in runs
                    if run.index in pending and run.conn is not None]
            wakeups = [run.deadline for run in live
                       if run.deadline is not None]
            wakeups += [run.resume_at for run in runs
                        if run.index in pending and run.resume_at
                        is not None]
            timeout = max(0.0, min(wakeups) - now) if wakeups else None
            if not live:
                # Every pending shard is backing off; nothing to poll.
                time.sleep(timeout if timeout is not None else 0)
                continue
            ready = multiprocessing.connection.wait(
                [run.conn for run in live], timeout)
            now = time.monotonic()
            for run in live:
                if run.conn in ready:
                    try:
                        kind, payload = run.conn.recv()
                    except (EOFError, OSError):
                        exitcode = run.process.exitcode \
                            if run.process is not None else None
                        run.retire()
                        fail(run, "worker crashed "
                                  f"(exit code {exitcode})")
                        continue
                    run.retire()
                    if kind == "ok":
                        results[run.index] = payload
                        pending.discard(run.index)
                    else:
                        raise payload
                elif run.deadline is not None and now >= run.deadline:
                    run.kill()
                    fail(run, "shard timeout after "
                              f"{policy.shard_timeout}s")
    finally:
        # Raised exception or KeyboardInterrupt: never leave orphaned
        # worker processes behind.
        for run in runs:
            run.kill()
    return [result for shard in results for result in shard]


def map_ordered(fn: Callable[[T], R], items: Sequence[T],
                jobs: Optional[int] = None) -> List[R]:
    """``[fn(item) for item in items]``, fanned across processes.

    Items are split into contiguous shards (one per job) and executed
    by supervised worker processes; the returned list preserves item
    order exactly, so callers observe serial semantics.  With
    ``jobs=None`` the ambient :func:`parallel_jobs` scope decides; a
    job count of 1 (or a single item, or a call from inside a worker)
    short-circuits to a plain loop with zero multiprocessing overhead.

    Supervision (the ambient :func:`retry_policy` scope): a worker
    that dies without delivering its shard — killed, segfaulted,
    injected crash — or blows its per-shard wall-clock budget is
    retried with exponential backoff, then executed in-process once
    retries are exhausted, with every recovery step recorded through
    :func:`collect_failures`.  Exceptions *raised by ``fn``* are
    deterministic and propagate immediately, unchanged.  Because each
    shard is a pure function of its items, no recovery path can
    change the returned values.

    ``fn`` runs in forked children where available, so it may close
    over arbitrary unpicklable state; only ``items`` and the results
    cross the process boundary.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1 or _IN_WORKER:
        return [fn(item) for item in items]
    shards = [items[lo:hi] for lo, hi in shard_bounds(len(items), jobs)]
    return _map_supervised(fn, shards, active_retry_policy())


#: Items per :func:`map_batched` window when the caller does not say:
#: large enough to amortise one supervised fan-out over hundreds of
#: items, small enough to keep window-level progress responsive.
DEFAULT_BATCH_WINDOW = 512


def map_batched(fn: Callable[[T], R], items,
                jobs: Optional[int] = None,
                window: Optional[int] = None
                ) -> Iterator[Tuple[List[T], List[R]]]:
    """Fused windowed fan-out: yield ``(window_items, results)`` pairs.

    The streaming complement of :func:`map_ordered` for cross-item
    batch fusion (the sweep engine's execution primitive): ``items``
    may be any iterable — including a multi-million-point generator —
    and is consumed ``window`` items at a time, each window executed
    through one :func:`map_ordered` fan-out.  The caller pays one
    supervised process fan-out per *window* instead of per item, and
    regains control between windows to flush stores, journal progress
    or print status.  Order within and across windows matches the
    input exactly, and because each window rides :func:`map_ordered`,
    the results are identical for any job count and the full
    crash-retry supervision applies per window.
    """
    if window is None:
        window = DEFAULT_BATCH_WINDOW
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    batch: List[T] = []
    for item in items:
        batch.append(item)
        if len(batch) >= window:
            yield batch, map_ordered(fn, batch, jobs=jobs)
            batch = []
    if batch:
        yield batch, map_ordered(fn, batch, jobs=jobs)
