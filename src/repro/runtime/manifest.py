"""Append-only JSONL progress journals for ``sweep`` and ``run all``.

A long sweep that dies at point 180 of 200 must not lose the first
179.  The manifest is the crash-safe record that makes ``--resume``
possible: one JSON *header* line describing the invocation, then one
JSON *point* line per completed grid point (its identity hash, final
status, and the content-addressed cache key holding the result).

Durability contract
-------------------
* The header is published atomically (written to a temp file, then
  ``os.replace``) — a manifest either exists with a valid header or
  not at all.
* Point records are single-line ``O_APPEND`` writes: each record is
  one ``os.write`` of one ``\\n``-terminated line, so concurrent
  appenders interleave at line granularity and a crash can tear at
  most the final line.
* :meth:`Manifest.load` detects a torn final line (no trailing
  newline, or un-parsable JSON in the last line) and *drops* it — the
  point simply counts as pending and is re-run.  A malformed line
  anywhere else means the file is not a manifest; that raises
  :class:`ManifestError` rather than silently resuming from garbage.

Resume safety
-------------
A ``done`` record alone never skips work.  The CLI re-derives the
point's cache key under the *current* code version and only skips
when it matches the recorded key **and** the cache entry is loadable
(checksum-verified) — so a resume after a code edit, a cache wipe, or
cache corruption transparently re-runs the point instead of serving a
stale or damaged result.  Skipping is therefore bit-identical to an
uninterrupted cached run by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.runtime.cache import canonical_kwargs

#: Bump when the journal schema changes.
MANIFEST_VERSION = 1

#: Statuses a point record may carry.
STATUSES = ("done", "failed", "error")


class ManifestError(ValueError):
    """A manifest file cannot be used (missing/invalid header, wrong
    experiment, malformed interior line)."""


def point_id(experiment: str, kwargs: Mapping[str, object]) -> str:
    """Stable identity hash of one grid point.

    Content-addressed over ``(experiment, canonical kwargs)`` — the
    same canonicalisation the result cache uses, so a point's identity
    never depends on kwarg order, numpy scalar types, or the code
    version (resume across code edits re-*runs* points but still
    recognises them).
    """
    blob = json.dumps(
        {"experiment": experiment, "kwargs": canonical_kwargs(kwargs)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PointRecord:
    """One journal line: the outcome of one grid point."""

    point_id: str
    status: str
    label: str = ""
    cache_key: Optional[str] = None
    error: Optional[str] = None

    def to_json(self) -> str:
        """The single journal line for this record (no newline)."""
        payload = {"kind": "point", "point_id": self.point_id,
                   "status": self.status, "label": self.label}
        if self.cache_key is not None:
            payload["cache_key"] = self.cache_key
        if self.error is not None:
            payload["error"] = self.error
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))


class Manifest:
    """One progress journal: a header plus point records, last wins."""

    def __init__(self, path: os.PathLike, header: Dict[str, object],
                 records: Optional[Dict[str, PointRecord]] = None) -> None:
        self.path = pathlib.Path(path)
        self.header = header
        self.records: Dict[str, PointRecord] = dict(records or {})

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike, command: str, experiment: str,
               invocation: Optional[Mapping[str, object]] = None) -> "Manifest":
        """Start a fresh journal at ``path`` (atomic header publish).

        An existing file at ``path`` is replaced — starting a run
        without ``--resume`` deliberately abandons the old journal.
        """
        header = {
            "kind": "header",
            "manifest_version": MANIFEST_VERSION,
            "command": command,
            "experiment": experiment,
            "invocation": canonical_kwargs(invocation or {}),
        }
        target = pathlib.Path(path)
        if target.parent != pathlib.Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(header, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        os.replace(tmp, target)
        return cls(target, header)

    @classmethod
    def load(cls, path: os.PathLike) -> "Manifest":
        """Parse a journal for resumption.

        Drops a torn final line (the one kind of damage a crash can
        cause, given the append discipline); any other malformed
        content raises :class:`ManifestError`.
        """
        target = pathlib.Path(path)
        try:
            data = target.read_bytes()
        except OSError as exc:
            raise ManifestError(
                f"cannot read manifest {target}: {exc}") from exc
        lines = data.split(b"\n")
        # A well-formed file ends with a newline, so the split leaves
        # an empty tail fragment; anything else there is a torn final
        # line — drop it either way.
        if lines:
            lines.pop()
        rows = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                if index == len(lines) - 1:
                    # Torn final line *with* a trailing newline from a
                    # partially flushed append — drop it too.
                    continue
                raise ManifestError(
                    f"manifest {target} line {index + 1} is not JSON "
                    "(not a manifest, or damaged beyond a torn tail)")
        if not rows or rows[0].get("kind") != "header":
            raise ManifestError(
                f"manifest {target} has no header line")
        header = rows[0]
        if header.get("manifest_version") != MANIFEST_VERSION:
            raise ManifestError(
                f"manifest {target} has version "
                f"{header.get('manifest_version')!r}; this build reads "
                f"version {MANIFEST_VERSION}")
        records: Dict[str, PointRecord] = {}
        for row in rows[1:]:
            if row.get("kind") != "point":
                raise ManifestError(
                    f"manifest {target} has an unknown record kind "
                    f"{row.get('kind')!r}")
            status = row.get("status")
            if status not in STATUSES:
                raise ManifestError(
                    f"manifest {target} has an unknown point status "
                    f"{status!r}")
            record = PointRecord(
                point_id=str(row["point_id"]), status=str(status),
                label=str(row.get("label", "")),
                cache_key=row.get("cache_key"),
                error=row.get("error"))
            records[record.point_id] = record
        return cls(target, header, records)

    # ------------------------------------------------------------------

    def require(self, command: str, experiment: str) -> None:
        """Check this journal belongs to the resuming invocation."""
        if self.header.get("command") != command \
                or self.header.get("experiment") != experiment:
            raise ManifestError(
                f"manifest {self.path} records "
                f"'{self.header.get('command')} "
                f"{self.header.get('experiment')}', not "
                f"'{command} {experiment}' — refusing to resume")

    def record(self, record: PointRecord) -> None:
        """Append one point record (atomic single-line append)."""
        if record.status not in STATUSES:
            raise ValueError(f"unknown point status {record.status!r}")
        line = (record.to_json() + "\n").encode()
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self.records[record.point_id] = record

    def record_many(self, records: "List[PointRecord]") -> None:
        """Append a batch of point records in one ``O_APPEND`` write.

        The fused sweep engine journals one execution *window* at a
        time; writing the window's lines as a single ``os.write``
        keeps the per-point journaling cost out of the hot loop and
        preserves the line-granular durability contract — a crash can
        still tear at most the final line of the final batch.
        """
        records = list(records)
        for record in records:
            if record.status not in STATUSES:
                raise ValueError(
                    f"unknown point status {record.status!r}")
        if not records:
            return
        blob = "".join(record.to_json() + "\n"
                       for record in records).encode()
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            os.write(fd, blob)
        finally:
            os.close(fd)
        for record in records:
            self.records[record.point_id] = record

    def get(self, pid: str) -> Optional[PointRecord]:
        """The latest record for a point id, or ``None`` if pending."""
        return self.records.get(pid)

    def counts(self) -> Dict[str, int]:
        """Record tally by status (progress reporting)."""
        out = {status: 0 for status in STATUSES}
        for record in self.records.values():
            out[record.status] += 1
        return out
