"""Content-addressed on-disk cache for experiment results.

Every cache entry is one JSON file whose name is derived from a SHA-256
digest of the *inputs* that determine the result:

* the experiment name,
* the fully-resolved runner kwargs (canonicalised: sorted keys, numpy
  scalars/arrays reduced to plain Python values),
* the code version — a digest over every ``*.py`` file of the
  :mod:`repro` package, so editing any module silently invalidates
  stale entries (their keys simply stop matching).

Because the key is content-addressed there is no invalidation
protocol: a hit is always safe to serve, a miss re-runs the
simulation.  ``python -m repro cache ls`` lists entries and ``cache
clear`` wipes them; the cache directory defaults to ``.repro-cache``
in the working directory and can be moved with the
``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.analysis.results import ExperimentResult, jsonable

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the entry payload layout changes (part of every key).
PAYLOAD_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV, ".repro-cache"))


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``*.py`` source file in the repro package.

    Memoised per process — the sources of a running process do not
    change under it.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def canonical_kwargs(kwargs: Mapping[str, object]) -> Dict[str, object]:
    """Reduce kwargs to a JSON-stable, order-independent form.

    Values are normalised with :func:`repro.analysis.results.jsonable`
    (one shared rule set for kwargs and result payloads); keys are
    sorted so key order never changes the hash.
    """
    return {key: jsonable(kwargs[key]) for key in sorted(kwargs)}


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored result (``cache ls`` rows)."""

    key: str
    path: pathlib.Path
    experiment: str
    kwargs: Dict[str, object]
    code_version: str
    size_bytes: int
    stale: bool


class ResultCache:
    """A directory of content-addressed experiment results."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()

    # ------------------------------------------------------------------

    def key_for(self, experiment: str, kwargs: Mapping[str, object],
                version: Optional[str] = None) -> str:
        """Content key of ``(experiment, kwargs, code version)``."""
        version = version if version is not None else code_version()
        blob = json.dumps(
            {"experiment": experiment,
             "kwargs": canonical_kwargs(kwargs),
             "code_version": version,
             "payload_version": PAYLOAD_VERSION},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def path_for(self, experiment: str, key: str) -> pathlib.Path:
        """File that would hold the entry for ``key``."""
        return self.root / f"{experiment}-{key}.json"

    # ------------------------------------------------------------------

    def load(self, experiment: str, key: str) -> Optional[ExperimentResult]:
        """Return the cached result for ``key``, or ``None`` on miss.

        Unreadable or corrupt entries count as misses (the caller will
        recompute and overwrite them).
        """
        path = self.path_for(experiment, key)
        try:
            payload = json.loads(path.read_text())
            return ExperimentResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, experiment: str, key: str,
              kwargs: Mapping[str, object],
              result: ExperimentResult,
              version: Optional[str] = None) -> pathlib.Path:
        """Persist ``result`` under ``key`` and return the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(experiment, key)
        payload = {
            "experiment": experiment,
            "kwargs": canonical_kwargs(kwargs),
            "code_version": version if version is not None
            else code_version(),
            "payload_version": PAYLOAD_VERSION,
            "result": result.to_dict(),
        }
        # No sort_keys here: series/check insertion order is part of
        # the result's rendered table and must survive the round trip.
        # The temp name is per-writer so concurrent stores of the same
        # key cannot interleave; replace() makes the publish atomic.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        return path

    # ------------------------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """All readable entries, newest first; corrupt files skipped."""
        if not self.root.is_dir():
            return []
        current = code_version()
        out: List[CacheEntry] = []
        paths = sorted(self.root.glob("*.json"),
                       key=lambda p: p.stat().st_mtime, reverse=True)
        for path in paths:
            try:
                payload = json.loads(path.read_text())
                experiment = str(payload["experiment"])
                stored_version = str(payload["code_version"])
            except (OSError, ValueError, KeyError):
                continue
            key = path.stem.removeprefix(f"{experiment}-")
            out.append(CacheEntry(
                key=key, path=path, experiment=experiment,
                kwargs=dict(payload.get("kwargs", {})),
                code_version=stored_version,
                size_bytes=path.stat().st_size,
                stale=stored_version != current))
        return out

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed.

        Also sweeps ``*.tmp`` files an interrupted store may have left
        behind (they are invisible to :meth:`entries`).
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        for pattern in ("*.json", "*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
