"""Content-addressed on-disk cache for experiment results.

Every cache entry is one JSON file whose name is derived from a SHA-256
digest of the *inputs* that determine the result:

* the experiment name,
* the fully-resolved runner kwargs (canonicalised: sorted keys, numpy
  scalars/arrays reduced to plain Python values),
* the code version — a digest over every ``*.py`` file of the
  :mod:`repro` package, so editing any module silently invalidates
  stale entries (their keys simply stop matching).

Because the key is content-addressed there is no invalidation
protocol: a hit is always safe to serve, a miss re-runs the
simulation.  ``python -m repro cache ls`` lists entries and ``cache
clear`` wipes them; the cache directory defaults to ``.repro-cache``
in the working directory and can be moved with the
``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``.

Failure semantics: entry publishes are atomic (payload written to a
per-writer temp file, fsynced, then ``os.replace``d into place), so a
crash mid-store can never leave a half-written entry under an entry
name, and concurrent writers of the same key — threads or processes —
race only on the final rename (last writer wins, every intermediate
state is a complete entry).  Every payload carries a SHA-256 checksum
verified on read; an entry that fails the checksum (or JSON parsing)
is *quarantined* into ``<cache>/corrupt/`` and treated as a miss —
on-disk corruption costs one recompute, never a crash or a wrong
result.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.results import ExperimentResult, jsonable
from repro.runtime import faults

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the entry payload layout changes (part of every key).
PAYLOAD_VERSION = 2

#: Subdirectory (under the cache root) corrupt entries are moved to.
QUARANTINE_DIR = "corrupt"


def payload_checksum(payload: Mapping[str, object]) -> str:
    """SHA-256 over the payload's canonical JSON (checksum excluded).

    The digest covers ``json.dumps`` of the payload *without* its
    ``checksum`` key — and because ``dict`` order round-trips through
    JSON, a loaded payload re-digests to the stored value exactly
    unless some byte of the entry changed.
    """
    body = {key: value for key, value in payload.items()
            if key != "checksum"}
    return hashlib.sha256(json.dumps(body).encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV, ".repro-cache"))


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``*.py`` source file in the repro package.

    Memoised per process — the sources of a running process do not
    change under it.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def canonical_kwargs(kwargs: Mapping[str, object]) -> Dict[str, object]:
    """Reduce kwargs to a JSON-stable, order-independent form.

    Values are normalised with :func:`repro.analysis.results.jsonable`
    (one shared rule set for kwargs and result payloads); keys are
    sorted so key order never changes the hash.
    """
    return {key: jsonable(kwargs[key]) for key in sorted(kwargs)}


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored result (``cache ls`` rows)."""

    key: str
    path: pathlib.Path
    experiment: str
    kwargs: Dict[str, object]
    code_version: str
    size_bytes: int
    stale: bool


class ResultCache:
    """A directory of content-addressed experiment results."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()

    # ------------------------------------------------------------------

    def key_for(self, experiment: str, kwargs: Mapping[str, object],
                version: Optional[str] = None) -> str:
        """Content key of ``(experiment, kwargs, code version)``."""
        version = version if version is not None else code_version()
        blob = json.dumps(
            {"experiment": experiment,
             "kwargs": canonical_kwargs(kwargs),
             "code_version": version,
             "payload_version": PAYLOAD_VERSION},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def path_for(self, experiment: str, key: str) -> pathlib.Path:
        """File that would hold the entry for ``key``."""
        return self.root / f"{experiment}-{key}.json"

    # ------------------------------------------------------------------

    def load(self, experiment: str, key: str) -> Optional[ExperimentResult]:
        """Return the cached result for ``key``, or ``None`` on miss.

        Every read is checksum-verified.  A present-but-damaged entry
        — truncated, bit-flipped, not JSON, wrong checksum — is
        quarantined into ``<cache>/corrupt/`` and reported as a miss,
        so corruption costs one recompute and never a crash.
        """
        path = self.path_for(experiment, key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if payload.pop("checksum", None) != payload_checksum(payload):
                raise ValueError("checksum mismatch")
            return ExperimentResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, AttributeError):
            self.quarantine(path)
            return None

    def quarantine(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        """Move a damaged entry into the quarantine directory.

        Returns the new location (``None`` if the file vanished under
        us — some other reader already quarantined it).  Quarantined
        files keep their name (suffixed on collision) so a post-mortem
        can still see which key was hit.
        """
        target_dir = self.root / QUARANTINE_DIR
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = target_dir / f"{path.name}.{serial}"
        try:
            os.replace(path, target)
        except OSError:
            return None
        return target

    def store(self, experiment: str, key: str,
              kwargs: Mapping[str, object],
              result: ExperimentResult,
              version: Optional[str] = None) -> pathlib.Path:
        """Persist ``result`` under ``key`` and return the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(experiment, key)
        payload = {
            "experiment": experiment,
            "kwargs": canonical_kwargs(kwargs),
            "code_version": version if version is not None
            else code_version(),
            "payload_version": PAYLOAD_VERSION,
            "result": result.to_dict(),
        }
        # The checksum key must come last: load() pops it and
        # re-digests the remaining (order-preserved) payload.
        payload["checksum"] = payload_checksum(payload)
        # No sort_keys here: series/check insertion order is part of
        # the result's rendered table and must survive the round trip.
        # The temp name is per-writer so concurrent stores of the same
        # key cannot interleave; fsync-then-replace() makes the
        # publish atomic and durable — a crash leaves either the old
        # entry, the new entry, or an invisible *.tmp, never a torn
        # entry.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")
        with open(tmp, "w") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
        faults.maybe_corrupt_cache_entry(path)
        return path

    # ------------------------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """All readable entries, newest first; malformed files skipped.

        (``cache ls`` pairs this with :meth:`malformed` and
        :meth:`quarantined` so skipped files are still *reported*.)
        """
        return self.scan()[0]

    def malformed(self) -> List[pathlib.Path]:
        """Entry files in the cache root that fail to parse/verify."""
        return self.scan()[1]

    def scan(self) -> "Tuple[List[CacheEntry], List[pathlib.Path]]":
        """One directory walk: ``(readable entries, malformed paths)``.

        Malformed means unparsable JSON, missing fields, or a checksum
        mismatch — anything :meth:`load` would quarantine.  The scan
        itself never raises and never mutates the cache (listing is a
        read-only operation; only :meth:`load` quarantines, because
        only a *consumer* knows the entry was actually needed).
        """
        if not self.root.is_dir():
            return [], []
        current = code_version()
        out: List[CacheEntry] = []
        bad: List[pathlib.Path] = []
        paths = sorted(self.root.glob("*.json"),
                       key=lambda p: p.stat().st_mtime, reverse=True)
        for path in paths:
            try:
                payload = json.loads(path.read_text())
                if payload.pop("checksum", None) \
                        != payload_checksum(payload):
                    raise ValueError("checksum mismatch")
                experiment = str(payload["experiment"])
                stored_version = str(payload["code_version"])
            except OSError:
                continue
            except (ValueError, KeyError, TypeError, AttributeError):
                bad.append(path)
                continue
            key = path.stem.removeprefix(f"{experiment}-")
            out.append(CacheEntry(
                key=key, path=path, experiment=experiment,
                kwargs=dict(payload.get("kwargs", {})),
                code_version=stored_version,
                size_bytes=path.stat().st_size,
                stale=stored_version != current))
        return out, bad

    def stats(self) -> Dict[str, object]:
        """Entry counts and disk usage (``repro cache stats``).

        One structured summary for the JSON cache, shaped to sit next
        to :meth:`repro.runtime.store.SweepStore.stats` so the two
        sinks report disk usage through one CLI surface.
        """
        entries, malformed = self.scan()
        quarantined = self.quarantined()
        return {
            "path": str(self.root),
            "entries": len(entries),
            "stale_entries": sum(1 for entry in entries if entry.stale),
            "size_bytes": sum(entry.size_bytes for entry in entries),
            "malformed": len(malformed),
            "quarantined": len(quarantined),
        }

    def quarantined(self) -> List[pathlib.Path]:
        """Files previously moved to the quarantine directory."""
        quarantine = self.root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(quarantine.iterdir())

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed.

        Also sweeps ``*.tmp`` files an interrupted store may have left
        behind (they are invisible to :meth:`entries`) and the
        quarantine directory.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        targets = [path for pattern in ("*.json", "*.tmp")
                   for path in self.root.glob(pattern)]
        targets += self.quarantined()
        for path in targets:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
