"""Experiment orchestration: registry, parallel executor, result cache.

This package turns the per-figure runners of :mod:`repro.analysis`
into declarative, schedulable units of work:

* :mod:`repro.runtime.registry` — the :class:`Experiment` dataclass
  and the registry of every figure/ablation/extension runner, with
  repetition scaling, seed policy and cache-aware execution;
* :mod:`repro.runtime.executor` — repetition sharding across worker
  processes; results are bit-identical regardless of the job count
  because shards replay exactly the per-repetition seeds a serial run
  would use;
* :mod:`repro.runtime.cache` — a content-addressed on-disk JSON cache
  keyed on (experiment, kwargs, code version);
* :mod:`repro.runtime.sweep` — parameter-sweep parsing, streaming
  grid expansion, the batch-fused :class:`SweepPlan` engine and
  adaptive refinement for ``python -m repro sweep``;
* :mod:`repro.runtime.store` — the append-only chunked columnar
  result store dense sweeps sink into (parquet when pyarrow is
  importable, compressed ``.npz`` otherwise);
* :mod:`repro.runtime.manifest` — append-only JSONL progress journals
  that make ``sweep``/``run all`` resumable after a crash
  (``--resume``);
* :mod:`repro.runtime.faults` — the env-activated fault-injection
  switchboard (worker crashes, cache corruption, mid-run kills) the
  chaos tests drive every recovery contract through.

The CLI (:mod:`repro.cli`) and the benchmark harness are thin clients
of this package.
"""

from repro.runtime.cache import ResultCache, code_version
from repro.runtime.executor import (
    RetryPolicy,
    active_jobs,
    active_retry_policy,
    collect_failures,
    map_batched,
    map_ordered,
    parallel_jobs,
    retry_policy,
)
from repro.runtime.manifest import Manifest, ManifestError, point_id
from repro.runtime.registry import (
    Experiment,
    RunReport,
    experiments,
    get,
    names,
    register,
    unregister,
)
from repro.runtime.store import StoreError, SweepStore
from repro.runtime.sweep import (
    SweepPlan,
    WindowOutcome,
    expand_grid,
    grid_size,
    parse_param_spec,
    run_adaptive,
    run_plan,
)

__all__ = [
    "Experiment",
    "Manifest",
    "ManifestError",
    "ResultCache",
    "RetryPolicy",
    "RunReport",
    "StoreError",
    "SweepPlan",
    "SweepStore",
    "WindowOutcome",
    "active_jobs",
    "active_retry_policy",
    "code_version",
    "collect_failures",
    "expand_grid",
    "experiments",
    "get",
    "grid_size",
    "map_batched",
    "map_ordered",
    "names",
    "parallel_jobs",
    "parse_param_spec",
    "point_id",
    "register",
    "retry_policy",
    "run_adaptive",
    "run_plan",
    "unregister",
]
