"""Declarative experiment registry.

An :class:`Experiment` bundles a runner from :mod:`repro.analysis`
with its execution policy: which kwargs scale with ``--scale``, how
the seed is injected, and how results are cached and parallelised.
The CLI and the benchmark harness both consume this registry instead
of hard-coding ``(runner, kwargs)`` tuples.

>>> from repro.runtime import registry
>>> report = registry.get("fig6").run(scale=0.05, seed=3)
>>> report.result.experiment
'fig6'
"""

from __future__ import annotations

import inspect
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro import analysis
from repro.analysis.results import ExperimentResult
from repro.runtime.cache import ResultCache
from repro.runtime.executor import parallel_jobs


@dataclass(frozen=True)
class RunReport:
    """Outcome of :meth:`Experiment.run`."""

    result: ExperimentResult
    kwargs: Dict[str, object]
    cached: bool = False
    cache_key: Optional[str] = None
    elapsed_s: float = 0.0


@dataclass(frozen=True)
class Experiment:
    """One registered experiment and its execution policy.

    Attributes
    ----------
    name:
        CLI-facing identifier (``fig6``, ``ablation-rts`` ...).
    runner:
        The :mod:`repro.analysis` entry point; returns an
        :class:`~repro.analysis.results.ExperimentResult`.
    scalable:
        kwarg -> base value; multiplied by ``--scale`` and clamped
        from below (repetition counts, typically).
    group:
        Registry section (``figure``/``baseline``/``ablation``/
        ``extension``) — display only.
    seed_kwarg:
        Name of the runner's seed parameter, or ``None`` for a
        deterministic runner.
    min_scaled:
        Lower clamp applied to every scaled kwarg.
    backends:
        Repetition backends the runner supports (first entry is the
        default).  Most experiments only run the per-repetition event
        engine; experiments whose runner takes a ``backend`` kwarg can
        also offer the vectorized batch kernel — the CLI exposes the
        choice as ``run --backend``.
    """

    name: str
    runner: Callable[..., ExperimentResult]
    scalable: Mapping[str, int] = field(default_factory=dict)
    group: str = "figure"
    seed_kwarg: Optional[str] = "seed"
    min_scaled: int = 2
    backends: Tuple[str, ...] = ("event",)

    @property
    def description(self) -> str:
        """First line of the runner's docstring."""
        doc = (self.runner.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def default_seed(self) -> Optional[int]:
        """The runner's own default seed (from its signature)."""
        if self.seed_kwarg is None:
            return None
        parameter = inspect.signature(self.runner).parameters.get(
            self.seed_kwarg)
        if parameter is None or parameter.default is inspect.Parameter.empty:
            return None
        return parameter.default

    # ------------------------------------------------------------------

    def kwargs_for(self, scale: float = 1.0,
                   seed: Optional[int] = None,
                   overrides: Optional[Mapping[str, object]] = None,
                   minimum: Optional[int] = None,
                   backend: Optional[str] = None) -> Dict[str, object]:
        """Resolve the runner kwargs for one invocation.

        Scaled kwargs are multiplied by ``scale`` and clamped at
        ``minimum`` (default :attr:`min_scaled`); the seed — explicit
        or the runner's default — is always materialised so cache keys
        are canonical; for multi-backend experiments the ``backend``
        choice (default: the first supported one) is materialised too,
        so each backend caches separately; ``overrides`` wins over
        everything.  Requesting a backend the experiment does not
        support raises ``ValueError``.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if backend is not None and backend not in self.backends:
            raise ValueError(
                f"experiment {self.name!r} supports backend(s) "
                f"{', '.join(self.backends)}; not {backend!r}")
        floor = self.min_scaled if minimum is None else minimum
        kwargs: Dict[str, object] = {
            key: max(floor, int(round(value * scale)))
            for key, value in self.scalable.items()
        }
        if self.seed_kwarg is not None:
            resolved = seed if seed is not None else self.default_seed()
            if resolved is not None:
                kwargs[self.seed_kwarg] = resolved
        if len(self.backends) > 1:
            kwargs["backend"] = backend if backend is not None \
                else self.backends[0]
        if overrides:
            kwargs.update(overrides)
        # Overrides are the second door a backend can come through (the
        # bench harness passes one as a plain kwarg); validate the
        # final choice, not just the parameter.
        if "backend" in kwargs:
            chosen = kwargs["backend"]
            if len(self.backends) == 1:
                raise ValueError(
                    f"experiment {self.name!r} takes no backend kwarg "
                    f"(it only runs on the {self.backends[0]!r} backend)")
            if chosen not in self.backends:
                raise ValueError(
                    f"experiment {self.name!r} supports backend(s) "
                    f"{', '.join(self.backends)}; not {chosen!r}")
        return kwargs

    def run(self, *, scale: float = 1.0, seed: Optional[int] = None,
            jobs: Optional[int] = None,
            overrides: Optional[Mapping[str, object]] = None,
            minimum: Optional[int] = None,
            backend: Optional[str] = None,
            cache: Optional[ResultCache] = None,
            refresh: bool = False) -> RunReport:
        """Execute the runner (or serve its cached result).

        ``jobs`` shards the repetition loop across worker processes
        (see :mod:`repro.runtime.executor`); the result is identical
        for any job count.  ``None`` defers to the ambient
        :func:`~repro.runtime.executor.parallel_jobs` scope and the
        ``REPRO_JOBS`` environment variable.  ``backend`` selects the
        repetition backend for experiments that offer more than one
        (``run --backend vector`` routes whole batches to the numpy
        kernel instead of sharding event-engine runs).  With a
        ``cache``, a hit skips the simulation entirely unless
        ``refresh`` forces a re-run; fresh results are stored back.
        """
        kwargs = self.kwargs_for(scale=scale, seed=seed,
                                 overrides=overrides, minimum=minimum,
                                 backend=backend)
        key: Optional[str] = None
        if cache is not None:
            key = cache.key_for(self.name, kwargs)
            if not refresh:
                hit = cache.load(self.name, key)
                if hit is not None:
                    return RunReport(result=hit, kwargs=kwargs,
                                     cached=True, cache_key=key)
        scope = parallel_jobs(jobs) if jobs is not None else nullcontext()
        start = time.perf_counter()
        with scope:
            result = self.runner(**kwargs)
        elapsed = time.perf_counter() - start
        if cache is not None and key is not None:
            cache.store(self.name, key, kwargs, result)
        return RunReport(result=result, kwargs=kwargs, cached=False,
                         cache_key=key, elapsed_s=elapsed)


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------

_EXPERIMENTS: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the registry (name must be unused)."""
    if experiment.name in _EXPERIMENTS:
        raise ValueError(f"experiment {experiment.name!r} already registered")
    _EXPERIMENTS[experiment.name] = experiment
    return experiment


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (tests use this)."""
    _EXPERIMENTS.pop(name, None)


def get(name: str) -> Experiment:
    """Look up one experiment; raises ``KeyError`` with suggestions."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(names())}") from None


def names() -> List[str]:
    """Registered experiment names, in registration order."""
    return list(_EXPERIMENTS)


def experiments() -> List[Experiment]:
    """All registered experiments, in registration order."""
    return list(_EXPERIMENTS.values())


#: Experiments whose runner can route its repetition batches to the
#: vectorized numpy kernels (``--backend vector``): the probe-train
#: family rides :mod:`repro.sim.probe_vector`, ``eq1`` the batched
#: Lindley kernel, ``ext-saturation`` :mod:`repro.sim.vector`.
#: ``tools/check_backend_coverage.py`` holds this set against
#: ``benchmarks/results/backend_coverage.json`` so coverage can only
#: grow.
VECTOR_EXPERIMENTS = frozenset({
    "fig6", "fig7", "fig9", "fig10", "fig13", "fig15", "fig16", "fig17",
    "eq1", "bounds", "ext-saturation",
})


def _register_builtins() -> None:
    """Populate the registry with every runner the paper needs."""
    builtin: List[Tuple[str, Callable[..., ExperimentResult],
                        Dict[str, int], str]] = [
        ("fig1", analysis.fig1_rate_response, {"repetitions": 3}, "figure"),
        ("fig4", analysis.fig4_complete_picture, {"repetitions": 3},
         "figure"),
        ("fig6", analysis.fig6_mean_access_delay, {"repetitions": 400},
         "figure"),
        ("fig7", analysis.fig7_delay_histograms, {"repetitions": 500},
         "figure"),
        ("fig8", analysis.fig8_ks_and_queue, {"repetitions": 400}, "figure"),
        ("fig9", analysis.fig9_ks_complex, {"repetitions": 400}, "figure"),
        ("fig10", analysis.fig10_transient_duration, {"repetitions": 300},
         "figure"),
        ("fig13", analysis.fig13_short_trains, {"repetitions": 80},
         "figure"),
        ("fig15", analysis.fig15_short_trains_fifo, {"repetitions": 80},
         "figure"),
        ("fig16", analysis.fig16_packet_pair, {"pair_repetitions": 400},
         "figure"),
        ("fig17", analysis.fig17_mser, {"repetitions": 150}, "figure"),
        ("eq1", analysis.eq1_fifo_rate_response, {"repetitions": 40},
         "baseline"),
        ("bounds", analysis.bounds_consistency, {"repetitions": 300},
         "baseline"),
        ("ablation-bianchi", analysis.ablation_bianchi_calibration, {},
         "ablation"),
        ("ablation-immediate-access", analysis.ablation_immediate_access,
         {"repetitions": 250}, "ablation"),
        ("ablation-ks", analysis.ablation_ks_methods,
         {"repetitions": 300}, "ablation"),
        ("ablation-rts", analysis.ablation_rts_cts,
         {"repetitions": 200}, "ablation"),
        ("ablation-truncation", analysis.ablation_truncation_heuristics,
         {"repetitions": 150}, "ablation"),
        ("ext-tool-convergence", analysis.tool_convergence_study,
         {"repetitions": 10}, "extension"),
        ("ext-b-vs-n", analysis.transient_b_vs_n,
         {"repetitions": 300}, "extension"),
        ("ext-topp", analysis.topp_on_wlan_study,
         {"repetitions": 8}, "extension"),
        ("ext-multihop", analysis.multihop_access_path_study,
         {"repetitions": 20}, "extension"),
    ]
    for name, runner, scalable, group in builtin:
        backends = (("event", "vector") if name in VECTOR_EXPERIMENTS
                    else ("event",))
        register(Experiment(name=name, runner=runner, scalable=scalable,
                            group=group, backends=backends))
    register(Experiment(
        name="ext-saturation",
        runner=analysis.dcf_saturation_study,
        scalable={"repetitions": 100},
        group="extension",
        backends=("event", "vector"),
    ))


_register_builtins()
