"""Declarative experiment registry.

An :class:`Experiment` bundles a runner from :mod:`repro.analysis`
with its execution policy: which kwargs scale with ``--scale``, how
the seed is injected, and how results are cached and parallelised.
The CLI and the benchmark harness both consume this registry instead
of hard-coding ``(runner, kwargs)`` tuples.

>>> from repro.runtime import registry
>>> report = registry.get("fig6").run(scale=0.05, seed=3)
>>> report.result.experiment
'fig6'
"""

from __future__ import annotations

import inspect
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro import analysis
from repro.analysis.results import ExperimentResult
from repro.backends import (
    BackendUnavailableError,
    Resolution,
    ScenarioSpec,
    dispatch,
)
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (chunked_reps, collect_failures,
                                    parallel_jobs, retry_policy)


@dataclass(frozen=True)
class RunReport:
    """Outcome of :meth:`Experiment.run`."""

    result: ExperimentResult
    kwargs: Dict[str, object]
    cached: bool = False
    cache_key: Optional[str] = None
    elapsed_s: float = 0.0
    #: Shard-recovery records (retries, in-process fallbacks) the
    #: executor logged while computing this result; empty for cache
    #: hits and failure-free runs.  Mirrored into
    #: ``result.meta["failures"]`` *after* caching, so recovery
    #: provenance never enters the stored payload.
    failures: Tuple[Dict[str, object], ...] = ()


@dataclass(frozen=True)
class Experiment:
    """One registered experiment and its execution policy.

    Attributes
    ----------
    name:
        CLI-facing identifier (``fig6``, ``ablation-rts`` ...).
    runner:
        The :mod:`repro.analysis` entry point; returns an
        :class:`~repro.analysis.results.ExperimentResult`.
    scalable:
        kwarg -> base value; multiplied by ``--scale`` and clamped
        from below (repetition counts, typically).
    group:
        Registry section (``figure``/``baseline``/``ablation``/
        ``extension``) — display only.
    seed_kwarg:
        Name of the runner's seed parameter, or ``None`` for a
        deterministic runner.
    min_scaled:
        Lower clamp applied to every scaled kwarg.
    scenario:
        Declarative :class:`~repro.backends.ScenarioSpec` of the
        runner's workload — what the backend dispatcher matches kernel
        capabilities against.  ``None`` means "nothing declared": the
        experiment only ever runs the event engine.  The supported
        backend families (:attr:`backends`) are *derived* from this
        spec, never hand-maintained.
    """

    name: str
    runner: Callable[..., ExperimentResult]
    scalable: Mapping[str, int] = field(default_factory=dict)
    group: str = "figure"
    seed_kwarg: Optional[str] = "seed"
    min_scaled: int = 2
    scenario: Optional[ScenarioSpec] = None

    @property
    def backends(self) -> Tuple[str, ...]:
        """Backend families the dispatcher finds eligible (first =
        default).  Experiments with a declared scenario gain
        ``vector`` exactly when some kernel's capabilities cover it."""
        if self.scenario is None:
            return ("event",)
        return dispatch.family_names(self.scenario)

    def resolve_backend(self, requested: str = "auto") -> Resolution:
        """Dispatch decision for this experiment's scenario.

        Deterministic in ``(scenario, requested)`` — job counts,
        caches and the environment never change the answer.
        """
        return dispatch.resolve(self.scenario, requested)

    @property
    def description(self) -> str:
        """First line of the runner's docstring."""
        doc = (self.runner.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def default_seed(self) -> Optional[int]:
        """The runner's own default seed (from its signature)."""
        if self.seed_kwarg is None:
            return None
        parameter = inspect.signature(self.runner).parameters.get(
            self.seed_kwarg)
        if parameter is None or parameter.default is inspect.Parameter.empty:
            return None
        return parameter.default

    # ------------------------------------------------------------------

    def kwargs_for(self, scale: float = 1.0,
                   seed: Optional[int] = None,
                   overrides: Optional[Mapping[str, object]] = None,
                   minimum: Optional[int] = None,
                   backend: Optional[str] = None) -> Dict[str, object]:
        """Resolve the runner kwargs for one invocation.

        Scaled kwargs are multiplied by ``scale`` and clamped at
        ``minimum`` (default :attr:`min_scaled`); the seed — explicit
        or the runner's default — is always materialised so cache keys
        are canonical; for multi-backend experiments the ``backend``
        choice (default: the first supported one) is materialised too,
        so each backend caches separately.  ``backend="auto"`` is
        resolved through the dispatcher *before* materialisation, so
        cache keys always name the resolved — never the requested —
        backend.  ``overrides`` wins over everything.  Requesting a
        backend the experiment does not support raises
        :class:`~repro.backends.BackendUnavailableError` carrying the
        structured capability mismatches.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if backend == "auto":
            backend = self.resolve_backend("auto").name
        elif backend is not None and backend not in self.backends:
            raise self._unsupported_backend_error(backend)
        elif backend is not None and backend != "event":
            # A capability-supported kernel family may still be
            # unavailable in this environment (jit without numba);
            # surface the structured dependency error now rather than
            # an ImportError from inside the kernel.
            self.resolve_backend(backend)
        floor = self.min_scaled if minimum is None else minimum
        kwargs: Dict[str, object] = {
            key: max(floor, int(round(value * scale)))
            for key, value in self.scalable.items()
        }
        if self.seed_kwarg is not None:
            resolved = seed if seed is not None else self.default_seed()
            if resolved is not None:
                kwargs[self.seed_kwarg] = resolved
        if len(self.backends) > 1:
            kwargs["backend"] = backend if backend is not None \
                else self.backends[0]
        if overrides:
            kwargs.update(overrides)
        # Overrides are the second door a backend can come through (the
        # bench harness passes one as a plain kwarg); validate the
        # final choice, not just the parameter.
        if "backend" in kwargs:
            chosen = kwargs["backend"]
            if len(self.backends) == 1:
                raise ValueError(
                    f"experiment {self.name!r} takes no backend kwarg "
                    f"(it only runs on the {self.backends[0]!r} backend)")
            if chosen == "auto":
                kwargs["backend"] = self.resolve_backend("auto").name
            elif chosen not in self.backends:
                raise self._unsupported_backend_error(chosen)
            elif chosen != "event":
                self.resolve_backend(chosen)
        return kwargs

    def _unsupported_backend_error(self, backend) -> ValueError:
        """Build the error for a forced-but-unsupported backend.

        The message keeps the familiar ``supports backend(s) ...``
        phrasing and appends the dispatcher's structured reason; the
        :class:`~repro.backends.BackendUnavailableError` carries the
        per-kernel :class:`~repro.backends.CapabilityMismatch` records
        for programmatic consumers.
        """
        detail, mismatches = "", {}
        try:
            self.resolve_backend(backend)
        except BackendUnavailableError as exc:
            detail = f": {exc}"
            mismatches = exc.mismatches
        except ValueError:
            pass
        return BackendUnavailableError(
            f"experiment {self.name!r} supports backend(s) "
            f"{', '.join(self.backends)}; not {backend!r}{detail}",
            mismatches)

    def run(self, *, scale: float = 1.0, seed: Optional[int] = None,
            jobs: Optional[int] = None,
            overrides: Optional[Mapping[str, object]] = None,
            minimum: Optional[int] = None,
            backend: Optional[str] = None,
            chunk_reps: Optional[int] = None,
            retries: Optional[int] = None,
            shard_timeout: Optional[float] = None,
            cache: Optional[ResultCache] = None,
            refresh: bool = False) -> RunReport:
        """Execute the runner (or serve its cached result).

        ``jobs`` shards the repetition loop across worker processes
        (see :mod:`repro.runtime.executor`); the result is identical
        for any job count.  ``None`` defers to the ambient
        :func:`~repro.runtime.executor.parallel_jobs` scope and the
        ``REPRO_JOBS`` environment variable.  ``chunk_reps`` streams
        vector-backend batches in chunks of that many repetitions
        (``--chunk-reps``; ``None`` defers to the ambient
        :func:`~repro.runtime.executor.chunked_reps` scope and
        ``REPRO_CHUNK_REPS``) — like ``jobs`` it is an execution
        detail: results are bit-identical at any chunk size, so it
        never enters the kwargs or the cache key.  ``backend`` selects
        the repetition backend: ``event``/``vector`` force one,
        ``auto`` lets the dispatcher pick the fastest eligible kernel
        — the *resolved* choice is what lands in the kwargs and the
        cache key, and the result meta records it (plus the structured
        fallback reason whenever ``auto`` had to settle for the event
        engine).  With a ``cache``, a hit skips the simulation
        entirely unless ``refresh`` forces a re-run; fresh results are
        stored back (annotation stays out of the stored payload — it
        describes the request, not the result).

        ``retries`` and ``shard_timeout`` set the executor's
        fault-tolerance policy for this run (``--retries`` /
        ``--shard-timeout``; ``None`` defers to the ambient
        :func:`~repro.runtime.executor.retry_policy` scope and the
        ``REPRO_RETRIES`` / ``REPRO_SHARD_TIMEOUT`` environment
        variables): a crashed or hung worker shard is retried with
        exponential backoff and finally executed in-process — like
        ``jobs``, pure-recovery knobs that can never change the
        result.  Any recovery actions taken are reported as
        ``report.failures`` and mirrored into
        ``result.meta["failures"]`` after the pristine payload is
        cached.
        """
        resolution: Optional[Resolution] = None
        if backend == "auto":
            resolution = self.resolve_backend("auto")
            backend = resolution.name
        kwargs = self.kwargs_for(scale=scale, seed=seed,
                                 overrides=overrides, minimum=minimum,
                                 backend=backend)
        key: Optional[str] = None
        if cache is not None:
            key = cache.key_for(self.name, kwargs)
            if not refresh:
                hit = cache.load(self.name, key)
                if hit is not None:
                    self._annotate_backend(hit, kwargs, resolution)
                    return RunReport(result=hit, kwargs=kwargs,
                                     cached=True, cache_key=key)
        scope = parallel_jobs(jobs) if jobs is not None else nullcontext()
        chunk_scope = chunked_reps(chunk_reps) \
            if chunk_reps is not None else nullcontext()
        fault_scope = retry_policy(retries=retries,
                                   shard_timeout=shard_timeout) \
            if retries is not None or shard_timeout is not None \
            else nullcontext()
        start = time.perf_counter()
        with scope, chunk_scope, fault_scope, \
                collect_failures() as failures:
            result = self.runner(**kwargs)
        elapsed = time.perf_counter() - start
        if cache is not None and key is not None:
            cache.store(self.name, key, kwargs, result)
        # Annotations happen after the store so the cached payload
        # stays pristine (bit-identical whether or not workers had to
        # be retried on this particular run).
        self._annotate_backend(result, kwargs, resolution)
        if failures:
            result.meta["failures"] = list(failures)
        return RunReport(result=result, kwargs=kwargs, cached=False,
                         cache_key=key, elapsed_s=elapsed,
                         failures=tuple(failures))

    def _annotate_backend(self, result: ExperimentResult,
                          kwargs: Mapping[str, object],
                          resolution: Optional[Resolution]) -> None:
        """Record the resolved backend (and any ``auto`` fallback).

        ``meta["backend"]`` always names the backend that produced the
        result; ``meta["backend_fallback"]`` carries the structured
        reason whenever an ``auto`` request settled for something
        slower than the fastest capable tier — fell back to the event
        engine, or degraded from an unavailable jit tier to the numpy
        kernels — instead of the reason being silently swallowed.
        """
        final = kwargs.get("backend", "event")
        result.meta.setdefault("backend", final)
        if resolution is not None and resolution.fallback \
                and final == "event":
            result.meta["backend_fallback"] = resolution.fallback
        elif resolution is not None and resolution.degraded \
                and final == resolution.name:
            result.meta["backend_fallback"] = resolution.degraded


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------

_EXPERIMENTS: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the registry (name must be unused)."""
    if experiment.name in _EXPERIMENTS:
        raise ValueError(f"experiment {experiment.name!r} already registered")
    _EXPERIMENTS[experiment.name] = experiment
    return experiment


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (tests use this)."""
    _EXPERIMENTS.pop(name, None)


def get(name: str) -> Experiment:
    """Look up one experiment; raises ``KeyError`` with suggestions."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(names())}") from None


def names() -> List[str]:
    """Registered experiment names, in registration order."""
    return list(_EXPERIMENTS)


def experiments() -> List[Experiment]:
    """All registered experiments, in registration order."""
    return list(_EXPERIMENTS.values())


# ----------------------------------------------------------------------
# Scenario vocabulary of the builtin experiments.  These are the
# *declared workloads* the backend dispatcher matches kernel
# capabilities against; which experiments end up dual-backend is
# derived from them, never listed by hand.
# ----------------------------------------------------------------------

#: Probe trains against Poisson contenders — the paper's main setting.
_WLAN_TRAIN = ScenarioSpec(system="wlan", workload="train",
                           cross_traffic="poisson")

#: The same with Poisson FIFO cross-traffic sharing the probe queue.
_WLAN_TRAIN_FIFO = ScenarioSpec(system="wlan", workload="train",
                                cross_traffic="poisson",
                                fifo_cross="poisson")

#: Steady-state CBR probing flow (figures 1 and 4).
_WLAN_STEADY = ScenarioSpec(system="wlan", workload="steady-cbr",
                            cross_traffic="poisson")
_WLAN_STEADY_FIFO = ScenarioSpec(system="wlan", workload="steady-cbr",
                                 cross_traffic="poisson",
                                 fifo_cross="poisson")


def _register_builtins() -> None:
    """Populate the registry with every runner the paper needs."""
    builtin: List[Tuple[str, Callable[..., ExperimentResult],
                        Dict[str, int], str,
                        Optional[ScenarioSpec]]] = [
        ("fig1", analysis.fig1_rate_response, {"repetitions": 3}, "figure",
         _WLAN_STEADY),
        ("fig4", analysis.fig4_complete_picture, {"repetitions": 3},
         "figure", _WLAN_STEADY_FIFO),
        ("fig6", analysis.fig6_mean_access_delay, {"repetitions": 400},
         "figure", _WLAN_TRAIN),
        ("fig7", analysis.fig7_delay_histograms, {"repetitions": 500},
         "figure", _WLAN_TRAIN),
        ("fig8", analysis.fig8_ks_and_queue, {"repetitions": 400}, "figure",
         ScenarioSpec(system="wlan", workload="train",
                      cross_traffic="poisson", queue_traces=True)),
        ("fig9", analysis.fig9_ks_complex, {"repetitions": 400}, "figure",
         _WLAN_TRAIN),
        ("fig10", analysis.fig10_transient_duration, {"repetitions": 300},
         "figure", _WLAN_TRAIN),
        ("fig13", analysis.fig13_short_trains, {"repetitions": 80},
         "figure", _WLAN_TRAIN),
        ("fig15", analysis.fig15_short_trains_fifo, {"repetitions": 80},
         "figure", _WLAN_TRAIN_FIFO),
        ("fig16", analysis.fig16_packet_pair, {"pair_repetitions": 400},
         "figure", _WLAN_TRAIN),
        ("fig17", analysis.fig17_mser, {"repetitions": 150}, "figure",
         _WLAN_TRAIN),
        ("eq1", analysis.eq1_fifo_rate_response, {"repetitions": 40},
         "baseline",
         ScenarioSpec(system="fifo", workload="train",
                      cross_traffic="poisson")),
        ("bounds", analysis.bounds_consistency, {"repetitions": 300},
         "baseline", _WLAN_TRAIN),
        ("ablation-bianchi", analysis.ablation_bianchi_calibration,
         {"repetitions": 3}, "ablation",
         ScenarioSpec(system="wlan", workload="steady-cbr",
                      cross_traffic="cbr")),
        ("ablation-immediate-access", analysis.ablation_immediate_access,
         {"repetitions": 250}, "ablation", _WLAN_TRAIN),
        ("ablation-ks", analysis.ablation_ks_methods,
         {"repetitions": 300}, "ablation", _WLAN_TRAIN),
        ("ablation-rts", analysis.ablation_rts_cts,
         {"repetitions": 200}, "ablation",
         ScenarioSpec(system="wlan", workload="train",
                      cross_traffic="poisson", rts_cts=True)),
        ("ablation-truncation", analysis.ablation_truncation_heuristics,
         {"repetitions": 150}, "ablation", _WLAN_TRAIN),
        ("ext-tool-convergence", analysis.tool_convergence_study,
         {"repetitions": 10}, "extension", _WLAN_TRAIN),
        ("ext-b-vs-n", analysis.transient_b_vs_n,
         {"repetitions": 300}, "extension", _WLAN_TRAIN),
        ("ext-topp", analysis.topp_on_wlan_study,
         {"repetitions": 8}, "extension", _WLAN_TRAIN),
        ("ext-multihop", analysis.multihop_access_path_study,
         {"repetitions": 20}, "extension",
         ScenarioSpec(system="path", workload="train",
                      cross_traffic="poisson")),
    ]
    for name, runner, scalable, group, scenario in builtin:
        register(Experiment(name=name, runner=runner, scalable=scalable,
                            group=group, scenario=scenario))
    register(Experiment(
        name="ext-saturation",
        runner=analysis.dcf_saturation_study,
        scalable={"repetitions": 100},
        group="extension",
        scenario=ScenarioSpec(system="wlan", workload="saturated"),
    ))
    register(Experiment(
        name="ext-retry-limit",
        runner=analysis.retry_limit_study,
        scalable={"repetitions": 100},
        group="extension",
        scenario=ScenarioSpec(system="wlan", workload="saturated",
                              retry_limit=True),
    ))
    register(Experiment(
        name="ext-onoff",
        runner=analysis.onoff_cross_study,
        scalable={"repetitions": 150},
        group="extension",
        scenario=ScenarioSpec(system="wlan", workload="train",
                              cross_traffic="onoff"),
    ))


_register_builtins()

#: Experiments whose batches the dispatcher can route to a vectorized
#: numpy kernel (``--backend vector`` / the ``auto`` fast path).
#: *Derived* from the declared scenarios and the kernels' capabilities
#: — never hand-maintained; ``tools/check_backend_coverage.py`` holds
#: it against ``benchmarks/results/backend_coverage.json`` so coverage
#: can only grow.
VECTOR_EXPERIMENTS = frozenset(
    experiment.name for experiment in _EXPERIMENTS.values()
    if "vector" in experiment.backends)
