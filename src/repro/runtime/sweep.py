"""Parameter-sweep parsing and grid expansion.

``python -m repro sweep fig6 --param repetitions=100,400,1600`` runs
one experiment at several parameter points.  This module owns the two
pure pieces: parsing ``name=v1,v2,...`` specifications and expanding
several of them into the Cartesian grid of override dicts.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence, Tuple, Union

Value = Union[int, float, str]


def parse_value(text: str) -> Value:
    """Interpret one sweep value: int if possible, else float, else str.

    Scientific notation (``5e6``) parses as float, which is what every
    rate-style kwarg expects.  Non-finite spellings (``nan``, ``inf``,
    ``-infinity`` ...) are rejected outright: a NaN smuggled into
    runner kwargs poisons every downstream statistic *and* the cache
    key (NaN != NaN breaks content-addressing), so it must fail at the
    parse, with the offending text in the message.
    """
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        return text
    if not math.isfinite(value):
        raise ValueError(
            f"non-finite sweep value {text!r}; sweep parameters must "
            "be finite numbers (or plain strings)")
    return value


def parse_param_spec(spec: str) -> Tuple[str, List[Value]]:
    """Parse one ``--param name=v1,v2,...`` specification."""
    name, sep, rest = spec.partition("=")
    name = name.strip()
    values = [parse_value(v) for v in rest.split(",") if v.strip()]
    if not sep or not name or not values:
        raise ValueError(
            f"malformed sweep parameter {spec!r}; "
            "expected name=value[,value...]")
    return name, values


def expand_grid(specs: Sequence[Tuple[str, Sequence[Value]]]
                ) -> List[Dict[str, Value]]:
    """Cartesian product of parsed specs, as runner-override dicts.

    Points iterate with the *last* parameter fastest, matching the
    order the ``--param`` flags were given.
    """
    seen = set()
    for name, values in specs:
        if name in seen:
            raise ValueError(f"duplicate sweep parameter {name!r}")
        if not values:
            raise ValueError(f"sweep parameter {name!r} has no values")
        seen.add(name)
    names = [name for name, _ in specs]
    grids = [values for _, values in specs]
    return [dict(zip(names, combo))
            for combo in itertools.product(*grids)]
