"""Parameter sweeps: grid expansion, batch-fused planning, refinement.

``python -m repro sweep fig6 --param repetitions=100,400,1600`` runs
one experiment at several parameter points.  This module owns every
pure piece of that pipeline:

* parsing ``name=v1,v2,...`` specifications and expanding several of
  them into the Cartesian grid of override dicts (:func:`expand_grid`
  is a *generator* — a 10^6-point grid never materialises before
  scheduling; :func:`grid_size` counts points with arithmetic);
* :class:`SweepPlan` — cross-point batch fusion.  Grid points are
  grouped by their *resolved* backend and kernel (one dispatch
  resolution per distinct requested backend; the group key is
  :func:`repro.backends.dispatch.fusion_key`) and streamed
  out in fused execution windows: each window fans its points across
  the worker pool in one supervised fan-out
  (:func:`repro.runtime.executor.map_batched`) instead of paying
  per-point process spawning, per-point dispatch and per-point JSON
  fsync.  Every point still executes exactly the kwargs a standalone
  ``repro run`` would resolve — per-point seed streams come from the
  same :func:`~repro.runtime.executor.derive_seeds` scheme inside the
  runner — so fused results are bit-identical to per-point runs
  (pinned by ``tests/test_sweep_plan.py``);
* :func:`run_plan` — the execution engine: windows flow into a
  :class:`~repro.runtime.store.SweepStore` (columnar chunks, one per
  window) with the manifest journalled per window, and a resumed run
  skips exactly the points whose journal record *and* store row are
  intact under the current code version;
* adaptive refinement (:func:`run_adaptive`) — ``sweep --adapt N``
  runs the coarse grid, then iteratively places new points where the
  response curve's curvature (second divided difference of the chosen
  ``--metric``) is largest, reusing the planner for each wave.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.backends import Resolution, dispatch
from repro.runtime import faults
from repro.runtime.executor import map_batched
from repro.runtime.manifest import Manifest, PointRecord, point_id
from repro.runtime.store import SweepStore

Value = Union[int, float, str]

#: Environment variable overriding the fused execution window size.
WINDOW_ENV = "REPRO_SWEEP_WINDOW"

#: Points per fused execution window when nothing else is configured:
#: large enough to amortise one supervised fan-out and one store chunk
#: over hundreds of points, small enough that a crash loses at most a
#: fraction of a second of work.
DEFAULT_WINDOW = 512


def parse_value(text: str) -> Value:
    """Interpret one sweep value: int if possible, else float, else str.

    Scientific notation (``5e6``) parses as float, which is what every
    rate-style kwarg expects.  Non-finite spellings (``nan``, ``inf``,
    ``-infinity`` ...) are rejected outright: a NaN smuggled into
    runner kwargs poisons every downstream statistic *and* the cache
    key (NaN != NaN breaks content-addressing), so it must fail at the
    parse, with the offending text in the message.
    """
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        return text
    if not math.isfinite(value):
        raise ValueError(
            f"non-finite sweep value {text!r}; sweep parameters must "
            "be finite numbers (or plain strings)")
    return value


def parse_param_spec(spec: str) -> Tuple[str, List[Value]]:
    """Parse one ``--param name=v1,v2,...`` specification."""
    name, sep, rest = spec.partition("=")
    name = name.strip()
    values = [parse_value(v) for v in rest.split(",") if v.strip()]
    if not sep or not name or not values:
        raise ValueError(
            f"malformed sweep parameter {spec!r}; "
            "expected name=value[,value...]")
    return name, values


def _validate_specs(specs: Sequence[Tuple[str, Sequence[Value]]]) -> None:
    """Shared eager validation for :func:`expand_grid`/:func:`grid_size`."""
    seen = set()
    for name, values in specs:
        if name in seen:
            raise ValueError(f"duplicate sweep parameter {name!r}")
        if not values:
            raise ValueError(f"sweep parameter {name!r} has no values")
        seen.add(name)


def grid_size(specs: Sequence[Tuple[str, Sequence[Value]]]) -> int:
    """Number of points :func:`expand_grid` will yield — by arithmetic,
    never by materialising the product."""
    _validate_specs(specs)
    return math.prod(len(values) for _, values in specs)


def expand_grid(specs: Sequence[Tuple[str, Sequence[Value]]]
                ) -> Iterator[Dict[str, Value]]:
    """Cartesian product of parsed specs, as runner-override dicts.

    A *generator*: points stream out one at a time (the last parameter
    fastest, matching the order the ``--param`` flags were given), so
    a million-point grid costs one dict of working memory, not a list
    of a million.  Spec validation still happens eagerly, at the call.
    """
    _validate_specs(specs)
    names = [name for name, _ in specs]
    grids = [values for _, values in specs]

    def generate() -> Iterator[Dict[str, Value]]:
        for combo in itertools.product(*grids):
            yield dict(zip(names, combo))

    return generate()


def point_label(overrides: Dict[str, Value]) -> str:
    """The human label of one grid point (``"a=1, b=2"``)."""
    return ", ".join(f"{k}={v}" for k, v in overrides.items())


def resolve_window(window: Optional[int] = None) -> int:
    """Normalise a window-size request (arg > env > default)."""
    if window is None:
        raw = os.environ.get(WINDOW_ENV)
        if raw is not None:
            try:
                window = int(raw)
            except ValueError:
                raise ValueError(
                    f"invalid {WINDOW_ENV}={raw!r}; expected an integer")
        else:
            return DEFAULT_WINDOW
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return window


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlannedPoint:
    """One grid point, fully resolved and ready to execute."""

    index: int
    overrides: Dict[str, Value]
    label: str
    kwargs: Dict[str, object]
    point_id: str
    #: ``(family, kernel)`` of the dispatch resolution — the fusion key.
    group: Tuple[str, str]


@dataclass(frozen=True)
class PlanWindow:
    """One fused execution window: same-resolution points, one fan-out."""

    group: Tuple[str, str]
    resolution: Resolution
    points: List[PlannedPoint]

    @property
    def label(self) -> str:
        """``family/kernel`` display label of the fused group."""
        return "/".join(self.group)


class SweepPlan:
    """Group grid points by resolved backend, stream fused windows.

    Dispatch is resolved once per *distinct requested backend* — never
    per point — because resolution is a pure function of (scenario,
    requested) and the sweep's scenario is a property of the
    experiment.  The resolved base kwargs are likewise computed once
    per group and merged with each point's overrides, which is exactly
    what :meth:`Experiment.kwargs_for` produces for that point (a
    point overriding ``backend`` itself takes the slow full-resolution
    path, so validation semantics never change).
    """

    def __init__(self, experiment, points: Iterable[Dict[str, Value]],
                 *, scale: float = 1.0, seed: Optional[int] = None,
                 backend: str = "auto") -> None:
        self.experiment = experiment
        self.requested = backend or "auto"
        self._points = points
        #: requested backend -> ((family, kernel), Resolution, base kwargs)
        self._memo: Dict[str, Tuple[Tuple[str, str], Resolution,
                                    Dict[str, object]]] = {}
        self._scale = scale
        self._seed = seed
        #: Fused-group point tallies, filled as the plan streams
        #: (``--report`` reads this after execution).
        self.group_counts: Dict[str, int] = {}
        #: The resolution handed to ``_annotate_backend`` — only an
        #: ``auto`` request carries one, mirroring ``Experiment.run``.
        self.auto_resolution: Optional[Resolution] = (
            experiment.resolve_backend("auto")
            if self.requested == "auto" else None)

    def _resolve_group(self, requested: str) -> Tuple[
            Tuple[str, str], Resolution, Dict[str, object]]:
        """Memoised (group key, resolution, base kwargs) per request."""
        hit = self._memo.get(requested)
        if hit is None:
            resolution = self.experiment.resolve_backend(requested)
            base = self.experiment.kwargs_for(
                scale=self._scale, seed=self._seed, backend=requested)
            hit = (dispatch.fusion_key(resolution), resolution, base)
            self._memo[requested] = hit
        return hit

    def planned(self) -> Iterator[PlannedPoint]:
        """Stream the grid as resolved :class:`PlannedPoint` records."""
        for index, overrides in enumerate(self._points):
            requested = str(overrides.get("backend", self.requested))
            key, _resolution, base = self._resolve_group(requested)
            if "backend" in overrides:
                # The override may carry its own validation semantics
                # (unsupported family, single-backend experiment);
                # take the full per-point path the CLI loop takes.
                kwargs = self.experiment.kwargs_for(
                    scale=self._scale, seed=self._seed,
                    overrides=overrides, backend=self.requested)
            else:
                kwargs = dict(base)
                kwargs.update(overrides)
            label = point_label(overrides)
            yield PlannedPoint(
                index=index, overrides=dict(overrides), label=label,
                kwargs=kwargs,
                point_id=point_id(self.experiment.name, kwargs),
                group=key)

    def resolution_for(self, group: Tuple[str, str]) -> Resolution:
        """The memoised resolution behind a group key."""
        for key, resolution, _base in self._memo.values():
            if key == group:
                return resolution
        raise KeyError(group)

    def windows(self, window: Optional[int] = None
                ) -> Iterator[PlanWindow]:
        """Stream fused execution windows (per-group, size-bounded).

        Points buffer per fused group as the grid streams; a group's
        buffer flushes as a window when it reaches the window size,
        and every residue flushes at exhaustion — so peak memory is
        ``O(groups x window)`` regardless of grid size.
        """
        window = resolve_window(window)
        buffers: Dict[Tuple[str, str], List[PlannedPoint]] = {}
        order: List[Tuple[str, str]] = []
        for point in self.planned():
            self.group_counts["/".join(point.group)] = \
                self.group_counts.get("/".join(point.group), 0) + 1
            if point.group not in buffers:
                buffers[point.group] = []
                order.append(point.group)
            buffers[point.group].append(point)
            if len(buffers[point.group]) >= window:
                yield PlanWindow(point.group,
                                 self.resolution_for(point.group),
                                 buffers[point.group])
                buffers[point.group] = []
        for key in order:
            if buffers[key]:
                yield PlanWindow(key, self.resolution_for(key),
                                 buffers[key])


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class WindowOutcome:
    """What one fused window produced (progress + report rows)."""

    group: str
    wave: int
    outcomes: List[Dict[str, object]]
    resumed: int
    executed: int
    elapsed_s: float


def _execute_point(experiment, point: PlannedPoint,
                   resolution: Optional[Resolution]) -> Dict[str, object]:
    """Run one planned point; always returns a picklable outcome row.

    The runner call is exactly what ``Experiment.run`` performs for
    these kwargs (same seeds, same kernels, same annotation), minus
    the per-point cache/scope ceremony the fused engine amortises at
    the window level — which is why the payload is bit-identical to a
    standalone run.  Exceptions become ``error`` rows instead of
    aborting the window.
    """
    start = time.perf_counter()
    try:
        result = experiment.runner(**point.kwargs)
    except Exception as exc:  # aggregate, never abort the batch
        return {"point_id": point.point_id, "label": point.label,
                "status": "error", "elapsed_s":
                time.perf_counter() - start, "error": str(exc),
                "payload": "", "failed_checks": [], "backend": None,
                "overrides": point.overrides}
    experiment._annotate_backend(result, point.kwargs, resolution)
    return {
        "point_id": point.point_id, "label": point.label,
        "status": "done" if result.all_checks_pass else "failed",
        "elapsed_s": time.perf_counter() - start, "error": "",
        "payload": json.dumps(result.to_dict()),
        "failed_checks": list(result.failed_checks),
        "backend": result.meta.get("backend"),
        "overrides": point.overrides,
    }


def run_plan(plan: SweepPlan, *, jobs: Optional[int] = None,
             store: Optional[SweepStore] = None,
             manifest: Optional[Manifest] = None,
             refresh: bool = False, window: Optional[int] = None,
             wave: int = 0,
             processed_before: int = 0) -> Iterator[WindowOutcome]:
    """Execute a plan window by window; yield progress as it lands.

    Per window: resumable points (journal record ``done`` *and* a
    ``done`` store row under the current code version) are served
    without execution; the rest fan out across the worker pool in one
    supervised batch; the results land in the store as one columnar
    chunk, then the manifest journals the window in one append — so a
    SIGKILL at any instant loses at most one un-flushed window, and
    the next ``--resume`` re-executes only those points.
    """
    experiment = plan.experiment
    if store is not None and store.experiment != experiment.name:
        raise ValueError(
            f"store {store.root} belongs to experiment "
            f"{store.experiment!r}, not {experiment.name!r}")
    completed = store.completed() if store is not None \
        and not refresh else set()
    processed = processed_before
    for plan_window in plan.windows(window):
        start = time.perf_counter()
        to_run: List[PlannedPoint] = []
        outcomes: List[Dict[str, object]] = []
        for point in plan_window.points:
            record = manifest.get(point.point_id) \
                if manifest is not None else None
            journal_done = manifest is None or (
                record is not None and record.status == "done")
            if point.point_id in completed and journal_done:
                outcomes.append({
                    "point_id": point.point_id, "label": point.label,
                    "status": "done", "elapsed_s": 0.0, "error": "",
                    "payload": "", "failed_checks": [],
                    "backend": None, "overrides": point.overrides,
                    "resumed": True})
            else:
                to_run.append(point)
        executed: List[Dict[str, object]] = []
        for _chunk, results in map_batched(
                lambda point: _execute_point(
                    experiment, point, plan.auto_resolution),
                to_run, jobs=jobs, window=len(to_run) or None):
            executed.extend(results)
        for outcome in executed:
            outcome["resumed"] = False
        if store is not None and executed:
            store.append([
                {"point_id": outcome["point_id"],
                 "label": outcome["label"],
                 "status": outcome["status"],
                 "elapsed_s": outcome["elapsed_s"],
                 "error": outcome["error"],
                 "payload": outcome["payload"],
                 **{param: outcome["overrides"].get(param)
                    for param in store.params}}
                for outcome in executed])
            store.flush()
        if manifest is not None and executed:
            manifest.record_many([
                PointRecord(point_id=str(outcome["point_id"]),
                            status=str(outcome["status"]),
                            label=str(outcome["label"]),
                            error=str(outcome["error"]) or None)
                for outcome in executed])
        outcomes.extend(executed)
        processed += len(outcomes)
        yield WindowOutcome(
            group=plan_window.label, wave=wave, outcomes=outcomes,
            resumed=len(outcomes) - len(executed),
            executed=len(executed),
            elapsed_s=time.perf_counter() - start)
        faults.maybe_kill_run(processed)


# ----------------------------------------------------------------------
# Adaptive refinement
# ----------------------------------------------------------------------

def point_metric(result: ExperimentResult,
                 metric: Optional[str] = None) -> float:
    """Scalar refinement signal of one result: mean of a series.

    ``metric`` names one of the result's series (default: the first) —
    the same names ``--report`` tables carry — and the scalar is its
    mean, so a rate-response experiment refines on the mean measured
    rate at each probing point.
    """
    names = list(result.series)
    if not names:
        raise ValueError("result has no series to take a metric from")
    chosen = metric if metric is not None else names[0]
    if chosen not in result.series:
        raise ValueError(
            f"unknown metric {chosen!r}; result has series: "
            f"{', '.join(names)}")
    return float(np.mean(np.asarray(result.series[chosen], dtype=float)))


def refine_candidates(xs: Sequence[float], ys: Sequence[float],
                      count: int,
                      min_gap: Optional[float] = None) -> List[float]:
    """Where to sample next: midpoints flanking high-curvature points.

    Curvature at each interior grid point is the second divided
    difference of ``ys`` over the (generally non-uniform) ``xs``;
    candidates are the midpoints of the two intervals flanking the
    highest-curvature points, deduplicated and kept ``min_gap`` apart
    (default: 1e-4 of the x span) so refinement converges instead of
    stacking points on a singularity.  Returns at most ``count``
    values, best-scored first; empty when the curve is flat or has
    fewer than three points.
    """
    order = np.argsort(np.asarray(xs, dtype=float))
    xs = np.asarray(xs, dtype=float)[order]
    ys = np.asarray(ys, dtype=float)[order]
    if len(xs) < 3 or count < 1:
        return []
    if min_gap is None:
        span = float(xs[-1] - xs[0])
        min_gap = span * 1e-4 if span > 0 else 0.0
    scores = []
    for i in range(1, len(xs) - 1):
        h1 = xs[i] - xs[i - 1]
        h2 = xs[i + 1] - xs[i]
        if h1 <= 0 or h2 <= 0:
            continue
        d2 = 2.0 * (ys[i - 1] / (h1 * (h1 + h2))
                    - ys[i] / (h1 * h2)
                    + ys[i + 1] / (h2 * (h1 + h2)))
        scores.append((abs(d2), i))
    scores.sort(key=lambda item: (-item[0], item[1]))
    chosen: List[float] = []
    taken = list(xs)
    for score, i in scores:
        if score == 0.0 or len(chosen) >= count:
            break
        for candidate in ((xs[i - 1] + xs[i]) / 2.0,
                          (xs[i] + xs[i + 1]) / 2.0):
            if len(chosen) >= count:
                break
            if all(abs(candidate - other) > min_gap for other in taken):
                chosen.append(float(candidate))
                taken.append(float(candidate))
    return chosen


def _adapt_axis(specs: Sequence[Tuple[str, Sequence[Value]]]
                ) -> Tuple[str, Dict[str, Value]]:
    """The one refinable parameter, plus the fixed values of the rest.

    Refinement needs a 1-D response curve: exactly one ``--param``
    with several values, all numeric; every other parameter pinned to
    a single value.
    """
    multi = [(name, values) for name, values in specs if len(values) > 1]
    if len(multi) != 1:
        raise ValueError(
            "--adapt needs exactly one --param with multiple values "
            f"(the refinement axis); got {len(multi)}")
    axis, values = multi[0]
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in values):
        raise ValueError(
            f"--adapt axis {axis!r} must be numeric; got {values!r}")
    fixed = {name: values[0] for name, values in specs
             if name != axis}
    return axis, fixed


def run_adaptive(experiment,
                 specs: Sequence[Tuple[str, Sequence[Value]]], *,
                 adapt: int, metric: Optional[str] = None,
                 scale: float = 1.0, seed: Optional[int] = None,
                 backend: str = "auto", jobs: Optional[int] = None,
                 store: SweepStore = None,
                 manifest: Optional[Manifest] = None,
                 refresh: bool = False,
                 window: Optional[int] = None,
                 max_waves: int = 4) -> Iterator[WindowOutcome]:
    """Coarse grid, then curvature-guided refinement waves.

    Wave 0 is the declared grid; each later wave reads the response
    curve back from the store (axis value vs :func:`point_metric` of
    each ``done`` payload), asks :func:`refine_candidates` for up to
    ``ceil(adapt / max_waves)`` new axis values, and executes them as
    a fresh :class:`SweepPlan` — same fusion, same store, same
    journal, so an interrupted adaptive sweep resumes mid-wave like
    any other.  Stops after ``adapt`` added points, ``max_waves``
    waves, or when the curve goes flat, whichever is first.
    """
    if store is None:
        raise ValueError("adaptive refinement requires a sweep store "
                         "(the waves read the response curve from it)")
    if adapt < 1:
        raise ValueError(f"adapt must be >= 1, got {adapt}")
    axis, fixed = _adapt_axis(specs)
    base_plan = SweepPlan(experiment, expand_grid(specs), scale=scale,
                          seed=seed, backend=backend)
    processed = 0
    for outcome in run_plan(base_plan, jobs=jobs, store=store,
                            manifest=manifest, refresh=refresh,
                            window=window, wave=0):
        processed += len(outcome.outcomes)
        yield outcome
    added = 0
    per_wave = max(1, math.ceil(adapt / max_waves))
    for wave in range(1, max_waves + 1):
        if added >= adapt:
            break
        frame = store.frame(columns=[axis, "status", "payload"],
                            where=dict(fixed) if fixed else None)
        xs, ys = [], []
        for x, status, blob in zip(frame[axis], frame["status"],
                                   frame["payload"]):
            if str(status) != "done" or not str(blob):
                continue
            result = ExperimentResult.from_dict(json.loads(str(blob)))
            xs.append(float(x))
            ys.append(point_metric(result, metric))
        candidates = refine_candidates(xs, ys,
                                       min(per_wave, adapt - added))
        if not candidates:
            break
        overrides = [dict(fixed, **{axis: candidate})
                     for candidate in sorted(candidates)]
        plan = SweepPlan(experiment, overrides, scale=scale, seed=seed,
                         backend=backend)
        for outcome in run_plan(plan, jobs=jobs, store=store,
                                manifest=manifest, refresh=refresh,
                                window=window, wave=wave,
                                processed_before=processed):
            processed += len(outcome.outcomes)
            yield outcome
        added += len(candidates)
