"""Fault injection for the runtime's failure-protocol tests.

Every robustness contract in this repository — worker-crash retry,
cache-corruption quarantine, torn-journal recovery, mid-sweep kill +
``--resume`` — is *tested*, not assumed, by injecting the fault it
defends against and asserting the declared recovery.  This module is
the single switchboard those injections go through.

Activation is by environment variable so the faults reach forked
worker processes and ``python -m repro`` subprocesses without any
plumbing::

    REPRO_FAULTS="crash-shard=0" python -m repro run fig6 --jobs 2

``REPRO_FAULTS`` holds comma-separated ``name=value`` clauses:

``crash-shard=K``
    The worker process executing shard ``K`` dies abruptly
    (``os._exit``) on its *first* attempt — the retry must succeed.
``crash-shard=K:always``
    ... on *every* attempt — the executor must exhaust its retries
    and fall back to in-process execution.
``slow-shard=K:SECONDS``
    The worker for shard ``K`` sleeps before doing any work — drives
    the ``--shard-timeout`` path.
``cache-truncate=1`` / ``cache-bitflip=1``
    Every cache entry is truncated to half its length / has one byte
    flipped *after* the atomic publish — simulates on-disk corruption
    that checksum-on-read must quarantine.
``kill-after-points=N``
    The process SIGKILLs itself after recording ``N`` sweep/run-all
    points — simulates a hard mid-flight crash for ``--resume`` tests.

When ``REPRO_FAULTS`` is unset every hook returns after one
dictionary lookup on ``os.environ`` — zero overhead on the production
path, and nothing here is imported outside the hook call sites.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: Environment variable holding the active fault clauses.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status a fault-crashed worker dies with (any non-zero works;
#: a distinctive value makes chaos-test failures self-explaining).
CRASH_EXIT_CODE = 23


def parse_clauses(raw: str) -> Dict[str, str]:
    """Parse a ``REPRO_FAULTS`` value into a clause dict.

    Malformed clauses (no ``=``) raise ``ValueError`` — a typo in a
    chaos test must fail loudly, never silently inject nothing.
    """
    clauses: Dict[str, str] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep or not name.strip():
            raise ValueError(
                f"malformed {FAULTS_ENV} clause {part!r}; "
                "expected name=value")
        clauses[name.strip()] = value.strip()
    return clauses


def active_clauses() -> Dict[str, str]:
    """The currently injected faults (empty dict when off)."""
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return {}
    return parse_clauses(raw)


@contextmanager
def injected(spec: str) -> Iterator[None]:
    """Activate fault clauses for the duration of the block.

    Sets ``REPRO_FAULTS`` in ``os.environ`` (so forked workers and
    subprocesses inherit it) and restores the previous value on exit.

    >>> with injected("crash-shard=0"):
    ...     map_ordered(task, items, jobs=2)         # doctest: +SKIP
    """
    parse_clauses(spec)  # validate eagerly
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = spec
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous


# ----------------------------------------------------------------------
# Hooks.  Each is called from exactly one production site and begins
# with the cheap is-anything-injected guard.
# ----------------------------------------------------------------------

def _crash_spec() -> Optional[Tuple[int, bool]]:
    """``(shard, always)`` of the crash-shard clause, if present."""
    value = active_clauses().get("crash-shard")
    if value is None:
        return None
    index, _, mode = value.partition(":")
    return int(index), mode == "always"


def maybe_crash_worker(shard_index: int, attempt: int) -> None:
    """Die abruptly if a crash is injected for this shard/attempt.

    ``os._exit`` (not an exception): the point is to simulate a
    worker killed out from under the pool — no unwinding, no result,
    just a dead process and an EOF on its result pipe.
    """
    if not os.environ.get(FAULTS_ENV):
        return
    spec = _crash_spec()
    if spec is None:
        return
    index, always = spec
    if shard_index == index and (always or attempt == 0):
        os._exit(CRASH_EXIT_CODE)


def maybe_slow_shard(shard_index: int) -> None:
    """Sleep before shard work if a slow-shard fault is injected."""
    if not os.environ.get(FAULTS_ENV):
        return
    value = active_clauses().get("slow-shard")
    if value is None:
        return
    index, _, seconds = value.partition(":")
    if shard_index == int(index):
        time.sleep(float(seconds or "1"))


def maybe_corrupt_cache_entry(path: os.PathLike) -> None:
    """Truncate or bit-flip a just-published cache entry.

    Runs *after* the atomic rename, so it models media/filesystem
    corruption rather than a torn write — exactly what
    checksum-on-read exists to catch.
    """
    if not os.environ.get(FAULTS_ENV):
        return
    clauses = active_clauses()
    data = None
    if clauses.get("cache-truncate"):
        data = _read(path)[: max(1, os.path.getsize(path) // 2)]
    elif clauses.get("cache-bitflip"):
        data = bytearray(_read(path))
        data[len(data) // 2] ^= 0x40
        data = bytes(data)
    if data is not None:
        with open(path, "wb") as handle:
            handle.write(data)


def maybe_kill_run(points_done: int) -> None:
    """SIGKILL the current process after N completed sweep points.

    The hardest crash there is — no cleanup handlers, no flushes —
    which is precisely what the manifest + atomic cache writes must
    survive for ``--resume`` to reconstruct the run.
    """
    if not os.environ.get(FAULTS_ENV):
        return
    value = active_clauses().get("kill-after-points")
    if value is None:
        return
    if points_done >= int(value):
        os.kill(os.getpid(), signal.SIGKILL)


def _read(path: os.PathLike) -> bytes:
    """Read a file's bytes (tiny helper for the corruption hooks)."""
    with open(path, "rb") as handle:
        return handle.read()


def describe() -> List[str]:
    """Human-readable list of active clauses (chaos-test logging)."""
    return [f"{name}={value}" for name, value in active_clauses().items()]
