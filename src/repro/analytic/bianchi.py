"""Bianchi's saturation model of the IEEE 802.11 DCF.

G. Bianchi, "Performance Analysis of the IEEE 802.11 Distributed
Coordination Function", IEEE JSAC 2000 (reference [8] of the paper).

The model computes, for ``n`` saturated stations, the per-station
transmission probability ``tau`` and conditional collision probability
``p`` from the fixed point::

    tau = 2 (1 - 2p) / ((1 - 2p)(W + 1) + p W (1 - (2p)^m))
    p   = 1 - (1 - tau)^(n - 1)

with ``W = cw_min + 1`` and ``m`` backoff stages, and from them the
per-slot channel state probabilities and the saturation throughput.
It is used to predict the *fair share* of the wireless medium — the
paper's achievable throughput B when every contender is backlogged —
and to calibrate the event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams


@dataclass
class BianchiSolution:
    """Fixed point and derived quantities of the Bianchi model."""

    n_stations: int
    tau: float
    collision_probability: float
    ptr: float
    ps: float
    throughput_per_station_bps: float
    total_throughput_bps: float
    mean_slot_duration: float
    mean_access_delay: float


class BianchiModel:
    """Saturation analysis of a DCF BSS with homogeneous stations.

    Parameters
    ----------
    phy:
        PHY/MAC constants.
    size_bytes:
        Network-layer packet size used by every station.
    """

    def __init__(self, phy: Optional[PhyParams] = None,
                 size_bytes: int = 1500) -> None:
        self.phy = phy if phy is not None else PhyParams.dot11b()
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        self.size_bytes = int(size_bytes)
        self.airtime = AirtimeModel(self.phy)

    # ------------------------------------------------------------------

    def _tau_of_p(self, p: float) -> float:
        w = self.phy.cw_min + 1
        m = self.phy.max_backoff_stage
        if p >= 0.5 - 1e-12:
            # The (2p)^m geometric sum degenerates; expand directly.
            denom = (1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m)
            if abs(denom) < 1e-15:
                denom = 1e-15
            return 2 * (1 - 2 * p) / denom
        return (2 * (1 - 2 * p)
                / ((1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m)))

    def solve(self, n_stations: int, tol: float = 1e-12,
              max_iter: int = 10_000) -> BianchiSolution:
        """Solve the fixed point by bisection on ``p`` and derive rates."""
        if n_stations < 1:
            raise ValueError(f"need at least one station, got {n_stations}")
        if n_stations == 1:
            tau = self._tau_of_p(0.0)
            p = 0.0
        else:
            # f(p) = p - (1 - (1 - tau(p))^(n-1)) is increasing in p at
            # the fixed point; bisection on [0, 1) is robust.
            lo, hi = 0.0, 0.999999
            for _ in range(max_iter):
                mid = (lo + hi) / 2
                tau = self._tau_of_p(mid)
                implied = 1 - (1 - tau) ** (n_stations - 1)
                if implied > mid:
                    lo = mid
                else:
                    hi = mid
                if hi - lo < tol:
                    break
            p = (lo + hi) / 2
            tau = self._tau_of_p(p)

        n = n_stations
        ptr = 1 - (1 - tau) ** n
        ps = (n * tau * (1 - tau) ** (n - 1) / ptr) if ptr > 0 else 0.0
        ps = min(1.0, max(0.0, ps))
        t_success = (self.airtime.success_duration(self.size_bytes)
                     + self.phy.difs)
        t_collision = (self.airtime.collision_duration(
            [self.size_bytes, self.size_bytes]) + self.phy.difs)
        sigma = self.phy.slot_time
        mean_slot = ((1 - ptr) * sigma
                     + ptr * ps * t_success
                     + ptr * (1 - ps) * t_collision)
        payload_bits = self.size_bytes * 8
        total = ptr * ps * payload_bits / mean_slot
        # Mean MAC access delay of a packet under saturation: one
        # successful delivery per station per 1/(throughput/packet)
        # interval (renewal argument).
        per_station = total / n
        mean_access_delay = payload_bits / per_station if per_station else float("inf")
        return BianchiSolution(
            n_stations=n,
            tau=tau,
            collision_probability=p,
            ptr=ptr,
            ps=ps,
            throughput_per_station_bps=per_station,
            total_throughput_bps=total,
            mean_slot_duration=mean_slot,
            mean_access_delay=mean_access_delay,
        )

    # ------------------------------------------------------------------

    def fair_share(self, n_stations: int) -> float:
        """Per-station saturation throughput — the fair share Bf.

        For the probe-plus-one-contender scenarios of figures 1 and 16
        this is ``fair_share(2)``.
        """
        return self.solve(n_stations).throughput_per_station_bps

    def capacity(self) -> float:
        """Single-station saturation throughput (the capacity C)."""
        return self.solve(1).throughput_per_station_bps

    def collision_fraction(self, n_stations: int) -> float:
        """Fraction of channel acquisitions that are collisions.

        Useful to validate the event simulator's collision counter:
        ``collisions / (collisions + successes)`` should approach
        ``(ptr - n tau (1-tau)^(n-1)) / ptr`` ... expressed via ps:
        ``1 - ps``.
        """
        return 1.0 - self.solve(n_stations).ps
