"""Bandwidth metric definitions (section 2 of the paper).

Three metrics describe a CSMA/CA link:

* **capacity** ``C`` — the rate a lone station achieves
  (:meth:`repro.mac.frames.AirtimeModel.link_capacity`);
* **available bandwidth** ``A`` — the part of C not used by
  cross-traffic;
* **achievable throughput** ``B`` (equation (2)) —
  ``B = sup { r_i : r_o / r_i = 1 }``, the fair share the probing flow
  can extract.  On a FIFO link B coincides with A; on CSMA/CA links it
  generally does not.
"""

from __future__ import annotations

import numpy as np


def available_bandwidth(capacity_bps: float, cross_rate_bps: float) -> float:
    """Available bandwidth ``A = C - cross rate`` (clipped at zero).

    ``cross_rate_bps`` is the aggregate network-layer throughput of the
    cross-traffic in the absence of probing.
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    if cross_rate_bps < 0:
        raise ValueError(
            f"cross rate must be non-negative, got {cross_rate_bps}")
    return max(0.0, capacity_bps - cross_rate_bps)


def achievable_throughput_from_curve(input_rates: np.ndarray,
                                     output_rates: np.ndarray,
                                     tolerance: float = 0.05) -> float:
    """Empirical achievable throughput from a measured rate-response curve.

    Implements equation (2): the largest probed input rate whose output
    rate matches it within ``tolerance`` (relative).  Rates need not be
    sorted; the curve should include at least one conforming point.
    """
    ri = np.asarray(input_rates, dtype=float)
    ro = np.asarray(output_rates, dtype=float)
    if ri.shape != ro.shape or ri.ndim != 1:
        raise ValueError("input and output rates must be equal-length 1-D")
    if len(ri) == 0:
        raise ValueError("empty curve")
    if np.any(ri <= 0):
        raise ValueError("input rates must be positive")
    conforming = ro / ri >= 1.0 - tolerance
    if not np.any(conforming):
        raise ValueError(
            "no point on the curve satisfies ro/ri ~= 1; "
            "probe at lower rates")
    return float(np.max(ri[conforming]))


def fluid_achievable_throughput(capacity_bps: float, cross_rate_bps: float,
                                fair_share_bps: float) -> float:
    """Fluid prediction of B for one contending cross-traffic flow.

    When the cross flow's offered rate is below the fair share it never
    saturates, and a backlogged prober can take the remaining capacity,
    ``C - cross``; once the cross flow saturates, both flows are
    backlogged and the prober gets its fair share.  Hence::

        B(cross) = max(fair_share, C - cross)

    This is the "fluid response (actual)" line of figure 16.
    """
    if fair_share_bps <= 0 or fair_share_bps > capacity_bps:
        raise ValueError("need 0 < fair_share <= capacity")
    return max(fair_share_bps,
               available_bandwidth(capacity_bps, cross_rate_bps))
