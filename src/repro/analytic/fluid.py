"""Fluid airtime model for unsaturated heterogeneous DCF stations.

Bianchi's model covers the fully saturated case; the paper's scenarios
mix saturated probes with unsaturated cross-traffic of different
packet sizes (e.g. figure 9's 40/576/1000/1500-byte contenders).  This
module predicts per-station throughput there with a fluid argument:

* each transmitted packet of station ``i`` occupies the channel for an
  *effective airtime* ``T_i`` (DIFS + mean backoff + DATA + SIFS + ACK);
* an unsaturated station consumes airtime at its offered packet rate;
* DCF gives backlogged stations equal long-run *transmission
  opportunities*, so saturated stations share the residual airtime at
  equal packet rates.

Water-filling over "who is saturated" yields the fixed point.
Collision overhead is neglected (a few percent at the station counts
studied here — the Bianchi-calibration ablation quantifies the gap),
which makes the model slightly optimistic but keeps it closed-form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams


@dataclass(frozen=True)
class StationOffer:
    """One station's offered load.

    ``rate_bps = inf`` (or any huge value) models a backlogged station,
    e.g. the probing flow when computing its achievable throughput.
    """

    rate_bps: float
    size_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.rate_bps < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate_bps}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")

    @property
    def packet_rate(self) -> float:
        """Offered packets per second."""
        return self.rate_bps / (self.size_bytes * 8)


class FluidAirtimeModel:
    """Water-filling airtime allocation across DCF stations."""

    def __init__(self, phy: Optional[PhyParams] = None) -> None:
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.airtime = AirtimeModel(self.phy)

    def effective_airtime(self, size_bytes: int) -> float:
        """Channel time consumed per delivered packet.

        DIFS + mean initial backoff + DATA + SIFS + ACK — the
        saturation renewal cycle of a lone station, which is also the
        per-packet airtime cost in the fluid picture.
        """
        return self.airtime.saturation_cycle(size_bytes)

    def achieved_throughputs(self,
                             offers: Sequence[StationOffer]) -> np.ndarray:
        """Per-station achieved throughput in bit/s.

        Unsaturated stations get their offered rate; saturated stations
        split the residual airtime at equal packet rates.
        """
        if len(offers) == 0:
            raise ValueError("need at least one station")
        airtimes = np.array([self.effective_airtime(o.size_bytes)
                             for o in offers])
        offered_packet_rates = np.array([o.packet_rate for o in offers])
        sizes = np.array([o.size_bytes for o in offers], dtype=float)

        saturated = np.zeros(len(offers), dtype=bool)
        for _ in range(len(offers) + 1):
            unsat_airtime = float(np.sum(
                offered_packet_rates[~saturated] * airtimes[~saturated]))
            residual = max(0.0, 1.0 - unsat_airtime)
            sat_airtimes = airtimes[saturated]
            if np.any(saturated):
                equal_rate = residual / float(np.sum(sat_airtimes))
            else:
                equal_rate = np.inf
            # A station is saturated if it offers more than the equal
            # share it would get when backlogged.
            new_saturated = offered_packet_rates >= equal_rate * 0.999999
            if np.array_equal(new_saturated, saturated):
                break
            # Water-filling only ever adds stations to the saturated
            # set when the system is overloaded; recompute from the
            # union to guarantee convergence.
            saturated = saturated | new_saturated
        packet_rates = np.where(saturated,
                                np.minimum(offered_packet_rates, equal_rate),
                                offered_packet_rates)
        # If the unsaturated load alone exceeds the channel, scale it
        # down proportionally (heavily overloaded corner case).
        total_airtime = float(np.sum(packet_rates * airtimes))
        if total_airtime > 1.0:
            packet_rates = packet_rates / total_airtime
        return packet_rates * sizes * 8

    def achievable_throughput(self, probe_size_bytes: int,
                              cross_offers: Sequence[StationOffer]) -> float:
        """Achievable throughput B of a backlogged probe.

        The probe is added as a saturated station; its achieved rate is
        the fluid prediction of the paper's B for arbitrary
        heterogeneous contention (figure 16's "fluid response" line is
        the one-contender special case).
        """
        offers: List[StationOffer] = [
            StationOffer(float("inf"), probe_size_bytes)]
        offers.extend(cross_offers)
        return float(self.achieved_throughputs(offers)[0])

    def utilization(self, offers: Sequence[StationOffer]) -> float:
        """Fraction of channel airtime consumed by ``offers``."""
        achieved = self.achieved_throughputs(offers)
        airtimes = np.array([self.effective_airtime(o.size_bytes)
                             for o in offers])
        sizes = np.array([o.size_bytes for o in offers], dtype=float)
        packet_rates = achieved / (sizes * 8)
        return float(np.clip(np.sum(packet_rates * airtimes), 0.0, 1.0))
