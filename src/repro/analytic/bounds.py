"""Transient-state bounds on the expected output dispersion.

Section 6 of the paper derives upper and lower bounds on ``E[g_O]`` for
a probing train of ``n`` packets whose access delays are still in their
transient regime, as a function of:

* the per-index mean access delays ``E[mu_i]`` (``mu_means``),
* the input gap ``g_I``,
* the mean FIFO cross-traffic utilization ``u_fifo``,
* the correction term ``kappa(n)`` of equation (21).

Key quantities, with ``n = len(mu_means)``::

    mean_head = (1/(n-1)) sum_{i=1}^{n-1} E[mu_i]
    mean_tail = (1/(n-1)) sum_{i=2}^{n}   E[mu_i]

For an access delay that increases with the packet index (the transient
of section 4), ``mean_head <= mean_tail <= E[mu_n]`` (equation (35)),
which places the transient curve's knee *above* the steady-state
achievable throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate(mu_means: np.ndarray, input_gap: float, u_fifo: float) -> np.ndarray:
    mu = np.asarray(mu_means, dtype=float)
    if mu.ndim != 1 or len(mu) < 2:
        raise ValueError("need the per-index mean access delays of >= 2 packets")
    if np.any(mu <= 0):
        raise ValueError("mean access delays must be positive")
    if input_gap < 0:
        raise ValueError(f"input gap must be non-negative, got {input_gap}")
    if not 0 <= u_fifo < 1:
        raise ValueError(f"u_fifo must be in [0, 1), got {u_fifo}")
    return mu


def kappa(mu_means: np.ndarray, workload_drift: float = 0.0) -> float:
    """The correction term of equation (21).

    ``kappa(n) = (E[W(a_n)] - E[W(a_1)])/(n-1) + (E[mu_n] - E[mu_1])/(n-1)``.

    With workload stability the first term vanishes in the limit; pass
    a non-zero ``workload_drift`` (= ``E[W(a_n)] - E[W(a_1)]``) to keep
    it for finite-horizon studies.
    """
    mu = np.asarray(mu_means, dtype=float)
    if len(mu) < 2:
        raise ValueError("need at least two packets")
    n = len(mu)
    return (workload_drift + (mu[-1] - mu[0])) / (n - 1)


def mean_head(mu_means: np.ndarray) -> float:
    """``(1/(n-1)) sum_{i=1}^{n-1} E[mu_i]``."""
    mu = np.asarray(mu_means, dtype=float)
    return float(np.mean(mu[:-1]))

def mean_tail(mu_means: np.ndarray) -> float:
    """``(1/(n-1)) sum_{i=2}^{n} E[mu_i]``."""
    mu = np.asarray(mu_means, dtype=float)
    return float(np.mean(mu[1:]))


@dataclass
class DispersionBounds:
    """Bounds on E[g_O] at one input gap, with their active regions."""

    input_gap: float
    lower: float
    upper: float
    lower_region: str
    upper_region: str

    def contains(self, value: float, slack: float = 0.0) -> bool:
        """Whether ``value`` lies within [lower - slack, upper + slack]."""
        return self.lower - slack <= value <= self.upper + slack


def output_gap_bounds(input_gap: float, mu_means: np.ndarray,
                      u_fifo: float = 0.0,
                      workload_drift: float = 0.0) -> DispersionBounds:
    """Evaluate the transient bounds (equations (27), (29) and (30)).

    Parameters
    ----------
    input_gap:
        The probing input gap ``g_I``.
    mu_means:
        Per-index mean access delays ``E[mu_i]``, ``i = 1..n``.
    u_fifo:
        Mean utilization of the FIFO queue by cross-traffic
        (``u_bar_fifo``); zero reproduces the no-FIFO case of section
        6.2 (equations (33)–(34)).
    workload_drift:
        Optional ``E[W(a_n)] - E[W(a_1)]`` term of ``kappa``.

    Returns
    -------
    DispersionBounds
        With the active region labels, e.g. ``"high-rate"`` /
        ``"low-rate"`` for the lower bound and ``"region-1/2/3"`` for
        the upper bound.
    """
    mu = _validate(mu_means, input_gap, u_fifo)
    n = len(mu)
    k = kappa(mu, workload_drift)
    head = mean_head(mu)
    tail = mean_tail(mu)

    # --- closed form (27): the FIFO queue never empties during the train.
    if input_gap <= tail and input_gap <= (tail - k) / (1 - u_fifo):
        closed = tail + u_fifo * input_gap
        return DispersionBounds(input_gap=input_gap, lower=closed,
                                upper=closed, lower_region="closed-form",
                                upper_region="closed-form")

    # --- lower bound, equation (29).
    lower_knee = (tail - k) / (1 - u_fifo)
    if input_gap >= lower_knee:
        lower = input_gap + k
        lower_region = "low-rate"
    else:
        lower = tail + u_fifo * input_gap
        lower_region = "high-rate"

    # --- upper bound, equation (30).
    if u_fifo > 0:
        upper_knee = (head + k) / u_fifo
    else:
        upper_knee = np.inf
    if input_gap >= upper_knee:
        upper = input_gap + head + k
        upper_region = "region-1"
    elif input_gap >= tail:
        # The paper's region-2 value (1 + u_fifo) g_I neglects the
        # O(kappa) edge term of equation (21); with E[R_n] >= 0 any
        # sound upper bound must be at least g_I + kappa (otherwise it
        # would cross the paper's own lower bound, eq. (33)).  Raise it
        # accordingly.
        upper = max((u_fifo + 1) * input_gap, input_gap + k)
        upper_region = "region-2"
    else:
        upper = tail + u_fifo * input_gap
        upper_region = "region-3"

    return DispersionBounds(input_gap=input_gap, lower=min(lower, upper),
                            upper=upper,
                            lower_region=lower_region,
                            upper_region=upper_region)


def output_gap_bounds_strict(input_gap: float, mu_means: np.ndarray,
                             workload_drift: float = 0.0) -> DispersionBounds:
    """Sample-path-sound bounds from equations (21) and (23).

    The paper's piecewise bounds (29)-(30) contain the term
    ``(1 + u_fifo) g_I`` (from equation (28)), derived under a
    steady-window approximation of ``u~fifo(d_1, d_n)``; during a strong
    transient the measured ``E[g_O]`` exceeds it by up to
    ``kappa + E[R_n]/(n-1)`` — indeed the paper's own lower bound
    ``g_I + kappa`` (eq. (33)) crosses it.  For no-FIFO-cross-traffic
    sample paths, equation (21) is an exact identity::

        E[g_O] = g_I + E[R_n]/(n-1) + kappa(n)

    and equation (23) brackets ``R_n`` path-wise, giving the always-valid
    (in expectation, by Jensen on the max) bounds::

        g_I + max(0, sum_{i<n}(E[mu_i] - g_I))/(n-1) + kappa  <=  E[g_O]
        E[g_O]  <=  g_I + mean_head + kappa
    """
    mu = _validate(mu_means, input_gap, 0.0)
    n = len(mu)
    k = kappa(mu, workload_drift)
    head_sum = float(np.sum(mu[:-1]))
    lower = input_gap + max(0.0, (head_sum - (n - 1) * input_gap)) / (n - 1) + k
    upper = input_gap + head_sum / (n - 1) + k
    return DispersionBounds(input_gap=input_gap, lower=lower, upper=upper,
                            lower_region="eq21+23-lower",
                            upper_region="eq21+23-upper")


def transient_achievable_throughput(size_bytes: int, mu_means: np.ndarray,
                                    u_fifo: float = 0.0) -> float:
    """Equations (31)/(36): achievable throughput of an n-packet train.

    ``L / B = (1/n) sum_i E[mu_i] / (1 - u_fifo)``.  Because the early
    ``mu_i`` are smaller than their steady-state value, B here is
    *larger* than the steady-state achievable throughput — short trains
    can move data faster than long flows.
    """
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    mu = np.asarray(mu_means, dtype=float)
    if len(mu) == 0 or np.any(mu <= 0):
        raise ValueError("need positive mean access delays")
    if not 0 <= u_fifo < 1:
        raise ValueError(f"u_fifo must be in [0, 1), got {u_fifo}")
    mean_service = float(np.mean(mu)) / (1 - u_fifo)
    return size_bytes * 8 / mean_service


def steady_state_achievable_throughput(size_bytes: int,
                                       steady_access_delay: float,
                                       u_fifo: float = 0.0) -> float:
    """Equations (32)/(37): the n -> infinity limit of B.

    ``L / B -> E[mu_infinity] / (1 - u_fifo)``.
    """
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    if steady_access_delay <= 0:
        raise ValueError("steady-state access delay must be positive")
    if not 0 <= u_fifo < 1:
        raise ValueError(f"u_fifo must be in [0, 1), got {u_fifo}")
    return size_bytes * 8 * (1 - u_fifo) / steady_access_delay
