"""Analytical models.

* :mod:`repro.analytic.metrics` — bandwidth metric definitions
  (capacity, available bandwidth, achievable throughput, equation (2));
* :mod:`repro.analytic.bianchi` — Bianchi's saturation model of the
  802.11 DCF, used to predict fair shares / achievable throughput and
  to calibrate the simulator;
* :mod:`repro.analytic.rate_response` — steady-state rate-response
  curves: FIFO (eq. 1), CSMA/CA (eq. 3), and the paper's complete model
  with both cross-traffic types (eqs. 4–5), plus the dispersion-domain
  restatement (eq. 20);
* :mod:`repro.analytic.bounds` — the transient-state sample-path bounds
  on the expected output dispersion (eqs. 21–34).
"""

from repro.analytic.metrics import (
    achievable_throughput_from_curve,
    available_bandwidth,
    fluid_achievable_throughput,
)
from repro.analytic.bianchi import BianchiModel, BianchiSolution
from repro.analytic.fluid import FluidAirtimeModel, StationOffer
from repro.analytic.rate_response import (
    complete_rate_response,
    csma_rate_response,
    dispersion_rate_response,
    fifo_rate_response,
)
from repro.analytic.bounds import (
    DispersionBounds,
    kappa,
    output_gap_bounds,
    output_gap_bounds_strict,
    transient_achievable_throughput,
)

__all__ = [
    "BianchiModel",
    "BianchiSolution",
    "DispersionBounds",
    "FluidAirtimeModel",
    "StationOffer",
    "achievable_throughput_from_curve",
    "available_bandwidth",
    "complete_rate_response",
    "csma_rate_response",
    "dispersion_rate_response",
    "fifo_rate_response",
    "fluid_achievable_throughput",
    "kappa",
    "output_gap_bounds",
    "output_gap_bounds_strict",
    "transient_achievable_throughput",
]
