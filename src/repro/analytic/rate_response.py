"""Steady-state rate-response curves.

The rate response curve relates the input rate ``r_i`` of a probing
flow to its output rate ``r_o`` through a hop:

* :func:`fifo_rate_response` — the classical single-bit-carrier FIFO
  model (equation (1));
* :func:`csma_rate_response` — contention-only CSMA/CA link,
  ``r_o = min(r_i, B)`` (equation (3), from Bredel & Fidler);
* :func:`complete_rate_response` — the paper's complete model with both
  FIFO and contending cross-traffic (equations (4)–(5));
* :func:`dispersion_rate_response` — the same relation restated for the
  expected output *gap* (equation (20)).

All functions are vectorized over ``r_i`` / ``g_I``.
"""

from __future__ import annotations

import numpy as np


def fifo_rate_response(input_rate: np.ndarray, capacity: float,
                       available_bandwidth: float) -> np.ndarray:
    """Equation (1): r_o = min(r_i, C r_i / (r_i + C - A)).

    ``capacity`` is C, ``available_bandwidth`` is A <= C.  Below A the
    flow is undisturbed; above it the FIFO queue shares C between the
    probe and the (fluid) cross-traffic proportionally to their rates.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 0 <= available_bandwidth <= capacity:
        raise ValueError("need 0 <= A <= C")
    ri = np.asarray(input_rate, dtype=float)
    if np.any(ri < 0):
        raise ValueError("input rates must be non-negative")
    shared = capacity * ri / (ri + capacity - available_bandwidth)
    return np.minimum(ri, shared)


def csma_rate_response(input_rate: np.ndarray,
                       achievable_throughput: float) -> np.ndarray:
    """Equation (3): r_o = min(r_i, B) for a contention-only link."""
    if achievable_throughput <= 0:
        raise ValueError(
            f"B must be positive, got {achievable_throughput}")
    ri = np.asarray(input_rate, dtype=float)
    if np.any(ri < 0):
        raise ValueError("input rates must be non-negative")
    return np.minimum(ri, achievable_throughput)


def complete_rate_response(input_rate: np.ndarray, fair_share: float,
                           u_fifo: float) -> np.ndarray:
    """Equations (4)-(5): both FIFO and contending cross-traffic.

    ``fair_share`` is Bf — the achievable throughput the probe would
    get with no FIFO cross-traffic; ``u_fifo`` is the mean fraction of
    time the FIFO cross-traffic uses the system.  The achievable
    throughput of the full system is ``B = Bf (1 - u_fifo)``; above it
    the probe shares Bf with the FIFO cross-traffic::

        r_o = r_i                              r_i <= B
        r_o = Bf r_i / (r_i + u_fifo Bf)       r_i >= B
    """
    if fair_share <= 0:
        raise ValueError(f"Bf must be positive, got {fair_share}")
    if not 0 <= u_fifo < 1:
        raise ValueError(f"u_fifo must be in [0, 1), got {u_fifo}")
    ri = np.asarray(input_rate, dtype=float)
    if np.any(ri < 0):
        raise ValueError("input rates must be non-negative")
    b = fair_share * (1 - u_fifo)
    shared = np.divide(fair_share * ri, ri + u_fifo * fair_share,
                       out=np.zeros_like(ri, dtype=float),
                       where=(ri + u_fifo * fair_share) > 0)
    return np.where(ri <= b, ri, shared)


def achievable_throughput_complete(fair_share: float, u_fifo: float) -> float:
    """Equation (5): B = Bf (1 - u_fifo)."""
    if fair_share <= 0:
        raise ValueError(f"Bf must be positive, got {fair_share}")
    if not 0 <= u_fifo < 1:
        raise ValueError(f"u_fifo must be in [0, 1), got {u_fifo}")
    return fair_share * (1 - u_fifo)


def dispersion_rate_response(input_gap: np.ndarray, size_bytes: int,
                             fair_share: float, u_fifo: float) -> np.ndarray:
    """Equation (20): the steady-state expected output gap.

    For probing packets of ``size_bytes`` (L bits = 8 L bytes)::

        E[g_O] = g_I                       g_I >= L / B
        E[g_O] = L / Bf + u_fifo g_I       g_I <= L / B

    with ``B = Bf (1 - u_fifo)``.
    """
    if size_bytes <= 0:
        raise ValueError(f"size must be positive, got {size_bytes}")
    if fair_share <= 0:
        raise ValueError(f"Bf must be positive, got {fair_share}")
    if not 0 <= u_fifo < 1:
        raise ValueError(f"u_fifo must be in [0, 1), got {u_fifo}")
    gi = np.asarray(input_gap, dtype=float)
    if np.any(gi < 0):
        raise ValueError("input gaps must be non-negative")
    bits = size_bytes * 8
    b = fair_share * (1 - u_fifo)
    knee = bits / b
    loaded = bits / fair_share + u_fifo * gi
    return np.where(gi >= knee, gi, loaded)
