"""A wired FIFO hop with constant capacity.

This is the reference system of the bandwidth-measurement literature
(equation (1) of the paper): a single bit carrier of capacity ``C``
multiplexing probe and cross-traffic in FIFO order.  The hop is
trace-driven: given the merged arrivals it applies the Lindley
recursion with deterministic service times ``L / C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.queueing.lindley import BusyPeriods, lindley_recursion
from repro.traffic.packets import Packet, PacketRecord


@dataclass
class FifoResult:
    """Sample path of a FIFO-hop run."""

    records: List[PacketRecord]
    capacity_bps: float
    busy: BusyPeriods

    def by_flow(self, flow: str) -> List[PacketRecord]:
        """Records of a given flow, in arrival order."""
        return [r for r in self.records if r.packet.flow == flow]

    def throughput_bps(self, t0: float, t1: float,
                       flow: Optional[str] = None) -> float:
        """Network-layer throughput of departures within ``(t0, t1]``."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
        bits = sum(r.packet.size_bits for r in self.records
                   if (flow is None or r.packet.flow == flow)
                   and t0 < r.departure <= t1)
        return bits / (t1 - t0)

    def output_gap(self, flow: str = "probe") -> float:
        """Mean output dispersion g_O = (d_n - d_1)/(n-1) of a flow."""
        departures = [r.departure for r in self.by_flow(flow)]
        if len(departures) < 2:
            raise ValueError("need at least two packets to compute a gap")
        return (departures[-1] - departures[0]) / (len(departures) - 1)

    def utilization(self, t0: float, t1: float) -> float:
        """Busy fraction of the hop over ``(t0, t1]``."""
        return self.busy.utilization(t0, t1)


class FifoHop:
    """Constant-rate FIFO link (the wired baseline).

    Parameters
    ----------
    capacity_bps:
        Link capacity C in bit/s.
    overhead_bytes:
        Optional per-packet overhead added to the service time (e.g.
        layer-2 framing); zero by default so that C is exactly the
        network-layer capacity, as assumed by equation (1).
    """

    def __init__(self, capacity_bps: float, overhead_bytes: int = 0) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if overhead_bytes < 0:
            raise ValueError(
                f"overhead must be non-negative, got {overhead_bytes}")
        self.capacity_bps = float(capacity_bps)
        self.overhead_bytes = int(overhead_bytes)

    def service_time(self, packet: Packet) -> float:
        """Transmission time of ``packet`` on this link."""
        bits = (packet.size_bytes + self.overhead_bytes) * 8
        return bits / self.capacity_bps

    def run(self, arrivals: Sequence[Tuple[float, Packet]]) -> FifoResult:
        """Serve ``arrivals`` (merged across flows) in FIFO order.

        Simultaneous arrivals are served in the order given (ties are
        kept stable), matching the fluid model's indifference to
        intra-instant ordering.
        """
        ordered = sorted(enumerate(arrivals), key=lambda x: (x[1][0], x[0]))
        times = np.array([t for _, (t, _) in ordered], dtype=float)
        packets = [p for _, (_, p) in ordered]
        services = np.array([self.service_time(p) for p in packets])
        starts, departures = lindley_recursion(times, services)
        records = []
        for i, packet in enumerate(packets):
            record = PacketRecord(packet, arrival=float(times[i]),
                                  hol=float(starts[i]),
                                  departure=float(departures[i]))
            records.append(record)
        busy = BusyPeriods.from_sample_path(times, starts, departures)
        return FifoResult(records=records, capacity_bps=self.capacity_bps,
                          busy=busy)
