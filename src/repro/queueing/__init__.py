"""Wired FIFO hop and trace-driven queueing substrate.

This package replaces two pieces of the paper's validation setup:

* the reference *wired* FIFO link whose rate-response curve (equation
  (1)) the paper contrasts against — :class:`repro.queueing.fifo.FifoHop`;
* the Matlab queueing simulator that "convolves a series of packet
  arrivals with a series of service times" —
  :class:`repro.queueing.trace.TraceDrivenQueue`, built on the Lindley
  recursion.

It also implements the sample-path processes of section 5.1: the
hop-workload process ``W(t)``, the FIFO utilization ``u_fifo``, and the
intrusion residual ``R_i``.
"""

from repro.queueing.lindley import BusyPeriods, lindley_recursion
from repro.queueing.workload import (
    WorkloadProcess,
    intrusion_residual_recursive,
    residual_bounds,
)
from repro.queueing.fifo import FifoHop, FifoResult
from repro.queueing.trace import TraceDrivenQueue, TraceQueueResult

__all__ = [
    "BusyPeriods",
    "FifoHop",
    "FifoResult",
    "TraceDrivenQueue",
    "TraceQueueResult",
    "WorkloadProcess",
    "intrusion_residual_recursive",
    "lindley_recursion",
    "residual_bounds",
]
