"""Trace-driven queue — the paper's Matlab queueing simulator.

From appendix A: *"The queuing simulator convolves a series of packet
arrivals with a series of service times in order to measure several
metrics such as the queuing length distribution and the output
dispersion (inter-arrival) of packets."*

:class:`TraceDrivenQueue` does exactly that: it takes arrival instants
and per-packet service times (constants, arrays, or a sampler drawing
from a measured access-delay distribution) and produces the FIFO sample
path, queue-length trajectory and output dispersions.  Feeding it
access-delay samples measured on the DCF simulator isolates the
queueing component of the probing process from the contention
component, as the paper's Matlab tool did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.queueing.lindley import BusyPeriods, lindley_recursion

ServiceSpec = Union[float, Sequence[float], Callable[[int, np.random.Generator], float]]


@dataclass
class TraceQueueResult:
    """Sample path produced by :class:`TraceDrivenQueue`."""

    arrivals: np.ndarray
    services: np.ndarray
    starts: np.ndarray
    departures: np.ndarray
    busy: BusyPeriods

    @property
    def waiting_times(self) -> np.ndarray:
        """Queueing delay of each packet (start - arrival)."""
        return self.starts - self.arrivals

    @property
    def sojourn_times(self) -> np.ndarray:
        """Total system time of each packet (departure - arrival)."""
        return self.departures - self.arrivals

    @property
    def output_gaps(self) -> np.ndarray:
        """Inter-departure times (dispersion samples)."""
        return np.diff(self.departures)

    @property
    def output_gap(self) -> float:
        """Train-level output dispersion (d_n - d_1)/(n - 1)."""
        if len(self.departures) < 2:
            raise ValueError("need at least two packets")
        return float(
            (self.departures[-1] - self.departures[0])
            / (len(self.departures) - 1))

    def queue_length_at(self, times: np.ndarray) -> np.ndarray:
        """Number of packets in system at each time (arrived, not departed)."""
        times = np.asarray(times, dtype=float)
        arrived = np.searchsorted(self.arrivals, times, side="right")
        departed = np.searchsorted(np.sort(self.departures), times,
                                   side="right")
        return (arrived - departed).astype(float)

    def queue_length_distribution(self, t0: float, t1: float,
                                  samples: int = 2048) -> np.ndarray:
        """Empirical distribution of the queue length over ``[t0, t1]``.

        Returns an array ``p`` where ``p[k]`` is the fraction of sampled
        instants with exactly ``k`` packets in the system.
        """
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
        grid = np.linspace(t0, t1, samples)
        lengths = self.queue_length_at(grid).astype(int)
        counts = np.bincount(lengths)
        return counts / counts.sum()


class TraceDrivenQueue:
    """Convolves arrivals with service times through a FIFO queue.

    Parameters
    ----------
    services:
        One of: a scalar (deterministic service), a sequence aligned
        with the arrivals, or a callable ``f(index, rng) -> float``
        sampling the service of the ``index``-th packet — the hook used
        to replay *measured, index-dependent* access-delay
        distributions, i.e. the transient regime.
    """

    def __init__(self, services: ServiceSpec) -> None:
        self.services = services

    def _materialize(self, n: int,
                     rng: Optional[np.random.Generator]) -> np.ndarray:
        if callable(self.services):
            if rng is None:
                rng = np.random.default_rng()
            return np.array([self.services(i, rng) for i in range(n)])
        if np.isscalar(self.services):
            value = float(self.services)
            if value < 0:
                raise ValueError(f"service time must be >= 0, got {value}")
            return np.full(n, value)
        services = np.asarray(self.services, dtype=float)
        if len(services) != n:
            raise ValueError(
                f"got {len(services)} service times for {n} arrivals")
        return services

    def run(self, arrivals: Sequence[float],
            rng: Optional[np.random.Generator] = None) -> TraceQueueResult:
        """Push ``arrivals`` through the queue and return the sample path."""
        arrivals = np.asarray(arrivals, dtype=float)
        services = self._materialize(len(arrivals), rng)
        starts, departures = lindley_recursion(arrivals, services)
        busy = BusyPeriods.from_sample_path(arrivals, starts, departures)
        return TraceQueueResult(arrivals=arrivals, services=services,
                                starts=starts, departures=departures,
                                busy=busy)
