"""Lindley recursion and busy-period machinery for a FIFO server.

For a work-conserving FIFO single server fed with arrivals ``a_i`` and
per-packet service times ``s_i``::

    start_i     = max(a_i, d_{i-1})
    d_i         = start_i + s_i

Everything else in this package (workload processes, utilizations,
intrusion residuals) is derived from these sample paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def lindley_recursion(arrivals: np.ndarray,
                      services: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compute FIFO service starts and departures.

    Parameters
    ----------
    arrivals:
        Non-decreasing arrival instants.
    services:
        Positive service times, one per arrival.

    Returns
    -------
    (starts, departures):
        Arrays of the same length.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError(
            f"shape mismatch: {arrivals.shape} vs {services.shape}")
    if arrivals.ndim != 1:
        raise ValueError("expected 1-D arrays")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals must be non-decreasing")
    if np.any(services < 0):
        raise ValueError("service times must be non-negative")
    n = len(arrivals)
    starts = np.empty(n)
    departures = np.empty(n)
    previous_departure = -np.inf
    for i in range(n):
        start = arrivals[i] if arrivals[i] > previous_departure \
            else previous_departure
        starts[i] = start
        previous_departure = start + services[i]
        departures[i] = previous_departure
    return starts, departures


@dataclass
class BusyPeriods:
    """Merged busy intervals of a FIFO server sample path.

    Built from ``(starts, departures)`` of the Lindley recursion
    together with the arrivals (a busy period starts at an arrival that
    finds the server idle).
    """

    intervals: List[Tuple[float, float]]

    @classmethod
    def from_sample_path(cls, arrivals: np.ndarray, starts: np.ndarray,
                         departures: np.ndarray) -> "BusyPeriods":
        """Merge per-packet service spans into maximal busy intervals."""
        arrivals = np.asarray(arrivals, dtype=float)
        departures = np.asarray(departures, dtype=float)
        intervals: List[Tuple[float, float]] = []
        for i in range(len(arrivals)):
            begin, end = arrivals[i], departures[i]
            if intervals and begin <= intervals[-1][1] + 1e-15:
                last_begin, last_end = intervals[-1]
                intervals[-1] = (last_begin, max(last_end, end))
            else:
                intervals.append((begin, end))
        return cls(intervals)

    def busy_time(self, t0: float, t1: float) -> float:
        """Total busy time within ``(t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got ({t0}, {t1})")
        total = 0.0
        for begin, end in self.intervals:
            lo = max(begin, t0)
            hi = min(end, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, t0: float, t1: float) -> float:
        """Busy fraction of ``(t0, t1]`` — the paper's u_fifo(t0, t1)."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
        return self.busy_time(t0, t1) / (t1 - t0)

    def contains(self, t: float) -> bool:
        """Whether the server is busy at time ``t`` (right-continuous)."""
        for begin, end in self.intervals:
            if begin <= t < end:
                return True
            if begin > t:
                break
        return False
