"""Lindley recursion and busy-period machinery for a FIFO server.

For a work-conserving FIFO single server fed with arrivals ``a_i`` and
per-packet service times ``s_i``::

    start_i     = max(a_i, d_{i-1})
    d_i         = start_i + s_i

Everything else in this package (workload processes, utilizations,
intrusion residuals) is derived from these sample paths.

Both entry points are closed-form vectorized: unrolling the recursion
gives ``d_i = max_{j <= i} (a_j + sum_{k=j..i} s_k)``, which factors
into a cumulative service sum plus a running maximum of
``a_j - cumsum(s)_{j-1}`` — one :func:`numpy.maximum.accumulate` pass
instead of a per-packet Python loop.  :func:`lindley_batch` applies
the same formulation to whole ``(repetitions, n)`` workload batches
at once (the vector probe-train backend's FIFO drain stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def _lindley_cummax(arrivals: np.ndarray,
                    services: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative-max Lindley solve along the last axis (no checks).

    Starts are recovered as ``max(a_i, d_{i-1})`` rather than
    ``d_i - s_i`` so an unqueued packet's service start equals its
    arrival *exactly* (the subtraction would lose an ulp to the
    cumulative sum).
    """
    if arrivals.shape[-1] == 0:
        return arrivals.astype(float), arrivals.astype(float)
    from repro.sim import jit as _jit
    if _jit.active_tier() == "jit":
        shape = arrivals.shape
        arr = np.ascontiguousarray(
            arrivals.reshape(-1, shape[-1]), dtype=float)
        srv = np.ascontiguousarray(
            services.reshape(-1, shape[-1]), dtype=float)
        starts = np.empty_like(arr)
        departures = np.empty_like(arr)
        _jit._lindley_core(arr, srv, starts, departures)
        return starts.reshape(shape), departures.reshape(shape)
    cum = np.cumsum(services, axis=-1)
    offset = arrivals - cum + services
    departures = cum + np.maximum.accumulate(offset, axis=-1)
    previous = np.empty_like(departures)
    previous[..., 0] = -np.inf
    previous[..., 1:] = departures[..., :-1]
    return np.maximum(arrivals, previous), departures


def lindley_recursion(arrivals: np.ndarray,
                      services: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compute FIFO service starts and departures.

    Parameters
    ----------
    arrivals:
        Non-decreasing arrival instants.
    services:
        Positive service times, one per arrival.

    Returns
    -------
    (starts, departures):
        Arrays of the same length.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError(
            f"shape mismatch: {arrivals.shape} vs {services.shape}")
    if arrivals.ndim != 1:
        raise ValueError("expected 1-D arrays")
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals must be non-decreasing")
    if np.any(services < 0):
        raise ValueError("service times must be non-negative")
    return _lindley_cummax(arrivals, services)


def lindley_batch(arrivals: np.ndarray,
                  services: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Batched Lindley recursion over ``(repetitions, n)`` workloads.

    Row ``r`` is one independent FIFO sample path; the returned
    ``(starts, departures)`` have the same shape.  Rows may be padded
    at the tail with ``inf`` arrivals (zero service) — padded slots
    depart at ``inf`` without disturbing the finite prefix, which is
    how ragged repetition batches are packed into one rectangle.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError(
            f"shape mismatch: {arrivals.shape} vs {services.shape}")
    if arrivals.ndim != 2:
        raise ValueError("expected 2-D (repetitions, n) arrays")
    finite = np.isfinite(arrivals)
    with np.errstate(invalid="ignore"):  # inf-padded tails diff to nan
        if np.any(np.diff(arrivals, axis=1)[finite[:, 1:]] < 0):
            raise ValueError("arrivals must be non-decreasing within a row")
    if np.any(services < 0):
        raise ValueError("service times must be non-negative")
    return _lindley_cummax(arrivals, services)


@dataclass
class BusyPeriods:
    """Merged busy intervals of a FIFO server sample path.

    Built from ``(starts, departures)`` of the Lindley recursion
    together with the arrivals (a busy period starts at an arrival that
    finds the server idle).
    """

    intervals: List[Tuple[float, float]]

    def _bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(begins, ends)`` arrays, read fresh from the public list."""
        if not self.intervals:
            return np.empty(0), np.empty(0)
        bounds = np.asarray(self.intervals, dtype=float)
        return bounds[:, 0], bounds[:, 1]

    @classmethod
    def from_sample_path(cls, arrivals: np.ndarray, starts: np.ndarray,
                         departures: np.ndarray) -> "BusyPeriods":
        """Merge per-packet service spans into maximal busy intervals.

        An arrival later than the running maximum of the previous
        departures (beyond a 1 fs merge tolerance) opens a new busy
        period; everything else extends the current one.  The merge is
        pure interval arithmetic — a boundary mask plus one
        :func:`numpy.maximum.reduceat` — with no per-packet loop.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        departures = np.asarray(departures, dtype=float)
        if len(arrivals) == 0:
            return cls([])
        prev_end = np.maximum.accumulate(departures)[:-1]
        new = np.concatenate([[True], arrivals[1:] > prev_end + 1e-15])
        boundaries = np.flatnonzero(new)
        begins = arrivals[boundaries]
        ends = np.maximum.reduceat(departures, boundaries)
        return cls(list(zip(begins.tolist(), ends.tolist())))

    def busy_time(self, t0: float, t1: float) -> float:
        """Total busy time within ``(t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got ({t0}, {t1})")
        begins, ends = self._bounds()
        overlap = np.minimum(ends, t1) - np.maximum(begins, t0)
        return float(np.clip(overlap, 0.0, None).sum())

    def utilization(self, t0: float, t1: float) -> float:
        """Busy fraction of ``(t0, t1]`` — the paper's u_fifo(t0, t1)."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
        return self.busy_time(t0, t1) / (t1 - t0)

    def contains(self, t: float) -> bool:
        """Whether the server is busy at time ``t`` (right-continuous)."""
        begins, ends = self._bounds()
        idx = int(np.searchsorted(begins, t, side="right")) - 1
        return idx >= 0 and t < ends[idx]
