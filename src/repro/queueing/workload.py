"""Sample-path processes of section 5.1 of the paper.

:class:`WorkloadProcess` evaluates the hop-workload ``W(t)`` (unfinished
work in the queue, in seconds of service) of a FIFO sample path, its
utilization process and averages.  The module also implements the
intrusion residual ``R_i`` of equations (13)–(14) and its bounds from
equation (23).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.queueing.lindley import BusyPeriods, lindley_recursion


class WorkloadProcess:
    """The hop-workload process ``W(t)`` of a FIFO sample path.

    For a work-conserving FIFO server, the unfinished work just after
    time ``t`` equals ``max(0, d_k - t)`` where ``d_k`` is the departure
    of the *last packet arrived no later than* ``t``.

    Parameters
    ----------
    arrivals / services:
        The cross-traffic sample path (the process is defined for the
        cross-traffic *only* in the paper; superpositions are handled
        by building the process over the merged flow).
    """

    def __init__(self, arrivals: np.ndarray, services: np.ndarray) -> None:
        self.arrivals = np.asarray(arrivals, dtype=float)
        self.services = np.asarray(services, dtype=float)
        self.starts, self.departures = lindley_recursion(
            self.arrivals, self.services)
        self.busy = BusyPeriods.from_sample_path(
            self.arrivals, self.starts, self.departures)

    def __call__(self, t: float) -> float:
        """Workload ``W(t)`` just after ``t`` (right-continuous)."""
        return float(self.at(np.array([t]))[0])

    def at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized ``W(t)``, right-continuous (arrival at t counts)."""
        times = np.asarray(times, dtype=float)
        if len(self.arrivals) == 0:
            return np.zeros_like(times)
        idx = np.searchsorted(self.arrivals, times, side="right") - 1
        last_departure = np.where(idx >= 0,
                                  self.departures[np.clip(idx, 0, None)],
                                  -np.inf)
        return np.maximum(0.0, last_departure - times)

    def before(self, t: float) -> float:
        """Workload ``W(t^-)`` just *before* ``t`` (an arrival exactly
        at ``t`` is excluded) — used for the intrusion residual, which
        the paper defines at ``a_i^-``."""
        if len(self.arrivals) == 0:
            return 0.0
        idx = int(np.searchsorted(self.arrivals, t, side="left")) - 1
        if idx < 0:
            return 0.0
        return max(0.0, float(self.departures[idx]) - t)

    def utilization(self, t0: float, t1: float) -> float:
        """u_fifo(t0, t1): busy fraction of ``(t0, t1]`` (equation (9))."""
        return self.busy.utilization(t0, t1)

    def mean_utilization(self) -> float:
        """Limiting-average utilization over the whole sample path.

        Approximates the paper's ``u_bar_fifo`` (equation (8)) over the
        finite horizon from the first arrival to the last departure.
        """
        if len(self.arrivals) == 0:
            return 0.0
        t0 = float(self.arrivals[0])
        t1 = float(self.departures[-1])
        if t1 <= t0:
            return 0.0
        return self.busy.utilization(t0, t1)

    def offered_workload(self, t0: float, t1: float) -> float:
        """X(t1) - X(t0): service time arriving within ``(t0, t1]``."""
        mask = (self.arrivals > t0) & (self.arrivals <= t1)
        return float(np.sum(self.services[mask]))

    def averaging_function(self, t0: float, t1: float) -> float:
        """Y(t0, t1) of equation (10): offered workload per unit time."""
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got ({t0}, {t1})")
        return self.offered_workload(t0, t1) / (t1 - t0)


def intrusion_residual_recursive(
        access_delays: np.ndarray, input_gap: float,
        utilizations: Optional[np.ndarray] = None) -> np.ndarray:
    """The intrusion residual ``R_i`` via the recursion of equation (14).

    ``R_1 = 0`` and for ``i > 1``::

        R_i = max(0, mu_{i-1} + R_{i-1} - (1 - u_fifo(a_{i-1}, a_i)) g_I)

    Parameters
    ----------
    access_delays:
        The ``mu_i`` experienced by each probing packet.
    input_gap:
        The probing input gap ``g_I``.
    utilizations:
        ``u_fifo(a_{i-1}, a_i)`` for each gap (length ``n - 1``); zeros
        (no FIFO cross-traffic) when omitted.
    """
    mu = np.asarray(access_delays, dtype=float)
    n = len(mu)
    if n == 0:
        return np.array([])
    if input_gap < 0:
        raise ValueError(f"input gap must be non-negative, got {input_gap}")
    if utilizations is None:
        utilizations = np.zeros(n - 1)
    utilizations = np.asarray(utilizations, dtype=float)
    if len(utilizations) != n - 1:
        raise ValueError(
            f"need {n - 1} gap utilizations, got {len(utilizations)}")
    residual = np.zeros(n)
    for i in range(1, n):
        free_gap = (1.0 - utilizations[i - 1]) * input_gap
        residual[i] = max(0.0, mu[i - 1] + residual[i - 1] - free_gap)
    return residual


def residual_bounds(access_delays: np.ndarray,
                    input_gap: float) -> Tuple[float, float]:
    """Bounds of equation (23) on the last packet's residual ``R_n``.

    Returns ``(lower, upper)`` where::

        max(0, sum_{i<n}(mu_i - g_I))  <=  R_n  <=  sum_{i<n} mu_i

    The lower bound assumes the probing train found an empty FIFO
    queue; the upper bound assumes enough cross-traffic workload that
    every probing packet queued behind its predecessor.
    """
    mu = np.asarray(access_delays, dtype=float)
    if len(mu) < 2:
        raise ValueError("need at least two packets")
    if input_gap < 0:
        raise ValueError(f"input gap must be non-negative, got {input_gap}")
    head = mu[:-1]
    lower = max(0.0, float(np.sum(head - input_gap)))
    upper = float(np.sum(head))
    return lower, upper
