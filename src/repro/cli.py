"""Command-line interface.

Run any of the paper's experiments from a shell::

    python -m repro list
    python -m repro info
    python -m repro run fig6 --scale 0.5 --seed 7
    python -m repro run all --scale 0.25

``run`` prints the experiment's series table (the same rows the paper's
figure plots) and exits non-zero if any qualitative shape check fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro import analysis
from repro.analytic.bianchi import BianchiModel
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams

#: experiment name -> (runner, scalable kwargs with base values)
REGISTRY: Dict[str, Tuple[Callable, Dict[str, int]]] = {
    "fig1": (analysis.fig1_rate_response, {"repetitions": 3}),
    "fig4": (analysis.fig4_complete_picture, {"repetitions": 3}),
    "fig6": (analysis.fig6_mean_access_delay, {"repetitions": 400}),
    "fig7": (analysis.fig7_delay_histograms, {"repetitions": 500}),
    "fig8": (analysis.fig8_ks_and_queue, {"repetitions": 400}),
    "fig9": (analysis.fig9_ks_complex, {"repetitions": 400}),
    "fig10": (analysis.fig10_transient_duration, {"repetitions": 300}),
    "fig13": (analysis.fig13_short_trains, {"repetitions": 80}),
    "fig15": (analysis.fig15_short_trains_fifo, {"repetitions": 80}),
    "fig16": (analysis.fig16_packet_pair, {"pair_repetitions": 400}),
    "fig17": (analysis.fig17_mser, {"repetitions": 150}),
    "eq1": (analysis.eq1_fifo_rate_response, {"repetitions": 40}),
    "bounds": (analysis.bounds_consistency, {"repetitions": 300}),
    "ablation-bianchi": (analysis.ablation_bianchi_calibration, {}),
    "ablation-immediate-access": (analysis.ablation_immediate_access,
                                  {"repetitions": 250}),
    "ablation-ks": (analysis.ablation_ks_methods, {"repetitions": 300}),
    "ablation-rts": (analysis.ablation_rts_cts, {"repetitions": 200}),
    "ablation-truncation": (analysis.ablation_truncation_heuristics,
                            {"repetitions": 150}),
    "ext-tool-convergence": (analysis.tool_convergence_study,
                             {"repetitions": 10}),
    "ext-b-vs-n": (analysis.transient_b_vs_n, {"repetitions": 300}),
    "ext-topp": (analysis.topp_on_wlan_study, {"repetitions": 8}),
    "ext-multihop": (analysis.multihop_access_path_study,
                     {"repetitions": 20}),
}


def scaled_kwargs(base: Dict[str, int], scale: float,
                  seed: Optional[int]) -> Dict[str, object]:
    """Apply the repetition scale and optional seed override."""
    kwargs: Dict[str, object] = {
        key: max(2, int(round(value * scale)))
        for key, value in base.items()
    }
    if seed is not None:
        kwargs["seed"] = seed
    return kwargs


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the experiment registry."""
    print("Available experiments:")
    for name, (runner, base) in REGISTRY.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<26} {doc}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    """Print the link calibration summary."""
    phy = PhyParams.dot11b()
    airtime = AirtimeModel(phy)
    bianchi = BianchiModel(phy, 1500)
    print("802.11b DCF link (1500-byte packets, long preamble):")
    print(f"  slot {phy.slot_time * 1e6:.0f} us, SIFS "
          f"{phy.sifs * 1e6:.0f} us, DIFS {phy.difs * 1e6:.0f} us, "
          f"CW {phy.cw_min}..{phy.cw_max}")
    print(f"  DATA airtime {airtime.data_airtime(1500) * 1e6:.0f} us, "
          f"ACK {airtime.ack_airtime() * 1e6:.0f} us")
    print(f"  capacity C            {bianchi.capacity() / 1e6:6.3f} Mb/s")
    for n in (2, 3, 4, 5):
        print(f"  fair share, {n} stations "
              f"{bianchi.fair_share(n) / 1e6:6.3f} Mb/s "
              f"(collision fraction "
              f"{bianchi.collision_fraction(n):.3f})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment (or all) and print its table."""
    names: List[str]
    if args.experiment == "all":
        names = list(REGISTRY)
    elif args.experiment in REGISTRY:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    failed = []
    for name in names:
        runner, base = REGISTRY[name]
        result = runner(**scaled_kwargs(base, args.scale, args.seed))
        print(result.table())
        print()
        if not result.all_checks_pass:
            failed.append(name)
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Impact of Transient CSMA/CA Access "
                    "Delays on Active Bandwidth Measurements' (IMC'09)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments") \
        .set_defaults(func=cmd_list)
    sub.add_parser("info", help="print link calibration summary") \
        .set_defaults(func=cmd_info)
    run = sub.add_parser("run", help="run an experiment")
    run.add_argument("experiment",
                     help="experiment name (see 'list'), or 'all'")
    run.add_argument("--scale", type=float, default=1.0,
                     help="repetition-count multiplier (default 1.0)")
    run.add_argument("--seed", type=int, default=None,
                     help="override the experiment seed")
    run.set_defaults(func=cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
