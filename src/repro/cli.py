"""Command-line interface.

Run any of the paper's experiments from a shell::

    python -m repro list
    python -m repro info
    python -m repro run fig6 --jobs 4 --seed 7
    python -m repro run ext-saturation --backend vector
    python -m repro run fig8 --explain-backend
    python -m repro run all --scale 0.25 --report summary.json
    python -m repro sweep fig6 --param repetitions=100,400,1600
    python -m repro sweep fig6 --param rate=2e6,4e6 --manifest m.jsonl
    python -m repro sweep fig6 --param rate=2e6,4e6 --resume m.jsonl
    python -m repro sweep ext-saturation --param n_stations=5,10,20,35 \\
        --store atlas/ --adapt 16 --metric throughput_mbps
    python -m repro cache ls
    python -m repro cache clear
    python -m repro cache stats --store atlas/

``run`` prints the experiment's series table (the same rows the paper's
figure plots) and exits non-zero if any qualitative shape check fails
or any experiment errors; failures are aggregated and reported at the
end, never aborting the remaining experiments.  Results are cached on
disk keyed on (experiment, kwargs, code version) — a repeated
invocation is served from cache unless ``--no-cache`` or ``--refresh``
says otherwise.  ``--jobs N`` shards repetitions across N worker
processes with bit-identical output, and ``--chunk-reps N`` streams
vector-backend batches through the kernel N repetitions at a time —
also bit-identical, with peak memory bounded by the chunk.

The runtime is crash-safe: ``--manifest`` journals per-point progress
to an append-only JSONL file and ``--resume`` restarts an interrupted
``sweep``/``run all`` from it, serving completed points bit-identically
from the checksummed result cache and re-running only pending/failed
ones.  ``--retries``/``--shard-timeout`` govern worker-shard
supervision: a crashed, killed, or hung worker is retried with
exponential backoff and finally executed in-process, with every
recovery recorded in the result metadata — a lost worker degrades
throughput, never correctness or completeness.

Backend selection defaults to ``--backend auto``: the capability
dispatcher (:mod:`repro.backends`) picks the fastest kernel eligible
for each experiment's declared scenario — the numba-compiled ``jit``
tier when numba is importable, the numpy ``vector`` tier otherwise —
and records the resolved backend (plus any fallback or degradation
reason) in the result metadata and the cache key.  ``--backend
event`` / ``--backend vector`` / ``--backend jit`` force a family
(forcing a kernel tier on an ineligible experiment — or ``jit``
without numba installed — fails with the structured reason); ``run
EXPERIMENT --explain-backend`` prints the dispatch decision without
running anything.  ``run`` (including ``run all``) and ``sweep``
share the full flag set.  ``run EXPERIMENT --profile`` prints the
top-25 cumulative cProfile rows, and ``--profile-json PATH`` emits
the same table as structured JSON.

``sweep --store DIR`` engages the fused sweep engine for dense
parameter atlases: grid points are grouped by resolved backend/kernel
and executed in fused windows (one worker fan-out per window instead
of one per point), with results appended to a chunked columnar store
— parquet when pyarrow is importable, compressed npz otherwise.
Payloads are bit-identical to standalone ``run`` invocations.
``--adapt N`` follows the coarse grid with curvature-guided
refinement waves, and ``cache stats`` reports disk usage for the JSON
cache and any ``--store`` directories in one JSON document.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.analytic.bianchi import BianchiModel
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.runtime import faults, registry
from repro.runtime.cache import ResultCache
from repro.runtime.executor import chunked_reps, retry_policy
from repro.runtime.manifest import (Manifest, ManifestError, PointRecord,
                                    point_id)
from repro.runtime.registry import RunReport
from repro.runtime.store import StoreError, SweepStore
from repro.runtime.sweep import (SweepPlan, expand_grid, grid_size,
                                 parse_param_spec, run_adaptive,
                                 run_plan)


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the experiment registry, grouped."""
    print("Available experiments:")
    group = None
    for experiment in registry.experiments():
        if experiment.group != group:
            group = experiment.group
            print(f" {group}s:")
        note = ""
        if len(experiment.backends) > 1:
            note = f"  [backends: {', '.join(experiment.backends)}]"
        print(f"  {experiment.name:<26} {experiment.description}{note}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    """Print the link calibration summary."""
    phy = PhyParams.dot11b()
    airtime = AirtimeModel(phy)
    bianchi = BianchiModel(phy, 1500)
    print("802.11b DCF link (1500-byte packets, long preamble):")
    print(f"  slot {phy.slot_time * 1e6:.0f} us, SIFS "
          f"{phy.sifs * 1e6:.0f} us, DIFS {phy.difs * 1e6:.0f} us, "
          f"CW {phy.cw_min}..{phy.cw_max}")
    print(f"  DATA airtime {airtime.data_airtime(1500) * 1e6:.0f} us, "
          f"ACK {airtime.ack_airtime() * 1e6:.0f} us")
    print(f"  capacity C            {bianchi.capacity() / 1e6:6.3f} Mb/s")
    for n in (2, 3, 4, 5):
        print(f"  fair share, {n} stations "
              f"{bianchi.fair_share(n) / 1e6:6.3f} Mb/s "
              f"(collision fraction "
              f"{bianchi.collision_fraction(n):.3f})")
    return 0


def _cache_from(args: argparse.Namespace) -> Optional[ResultCache]:
    """Build the cache the run/sweep flags ask for (None = disabled)."""
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(root=getattr(args, "cache_dir", None))


def _print_report(report: RunReport) -> None:
    """Print one run's table plus its provenance line."""
    print(report.result.table())
    if report.cached:
        print(f"   [cache hit {report.cache_key}]")
    else:
        note = f"computed in {report.elapsed_s:.2f}s"
        if report.cache_key is not None:
            note += f", stored as {report.cache_key}"
        print(f"   [{note}]")
    print()


def _open_manifest(args: argparse.Namespace, command: str,
                   experiment: str) -> Optional[Manifest]:
    """Build the progress journal the run/sweep flags ask for.

    ``--resume PATH`` loads (and validates) an existing journal —
    completed points will be skipped; ``--manifest PATH`` starts a
    fresh one.  ``None`` means no journal was requested.
    """
    resume = getattr(args, "resume", None)
    if resume is not None:
        if getattr(args, "no_cache", False):
            raise ManifestError(
                "--resume serves completed points from the result "
                "cache and cannot work with --no-cache")
        loaded = Manifest.load(resume)
        loaded.require(command, experiment)
        return loaded
    path = getattr(args, "manifest", None)
    if path is None:
        return None
    return Manifest.create(
        path, command, experiment,
        invocation={"scale": args.scale, "seed": args.seed,
                    "backend": args.backend,
                    "params": list(getattr(args, "param", []) or [])})


def _resume_hit(experiment, kwargs: Dict[str, object],
                manifest: Optional[Manifest],
                cache: Optional[ResultCache]) -> Optional[RunReport]:
    """Serve a point the journal marks done, from the verified cache.

    The skip is only taken when the recorded cache key still matches
    the key derived under the *current* code version and the entry
    passes checksum verification — a resume after a code edit, cache
    wipe, or corruption re-runs the point instead of serving a stale
    or damaged result.  Failed/errored/pending points always re-run.
    """
    if manifest is None or cache is None:
        return None
    record = manifest.get(point_id(experiment.name, kwargs))
    if record is None or record.status != "done":
        return None
    key = cache.key_for(experiment.name, kwargs)
    if record.cache_key != key:
        return None
    hit = cache.load(experiment.name, key)
    if hit is None:
        return None
    return RunReport(result=hit, kwargs=kwargs, cached=True,
                     cache_key=key)


def _record_point(manifest: Optional[Manifest], experiment: str,
                  kwargs: Optional[Dict[str, object]], label: str,
                  status: str, cache_key: Optional[str] = None,
                  error: Optional[str] = None) -> None:
    """Append one point outcome to the journal (no-op without one).

    A point that failed before its kwargs could even be resolved has
    no stable identity; it is journalled under a label-derived id so
    the error is recorded, and re-runs simply never match it.
    """
    if manifest is None:
        return
    pid = point_id(experiment, kwargs) if kwargs is not None \
        else point_id(experiment, {"__label__": label})
    manifest.record(PointRecord(point_id=pid, status=status,
                                label=label, cache_key=cache_key,
                                error=error))


def _write_report(path: str, command: str, target: str,
                  records: List[Dict[str, object]],
                  extras: Optional[Dict[str, object]] = None) -> None:
    """Emit the structured per-point summary as JSON (atomically).

    ``extras`` merges additional top-level keys into the payload —
    the fused sweep engine adds ``store_path``, ``fused_groups`` and
    ``refinement_waves`` so CI assertions read one file.
    """
    counts: Dict[str, int] = {}
    for record in records:
        status = str(record["status"])
        counts[status] = counts.get(status, 0) + 1
    payload = {"command": command, "target": target,
               "counts": counts, "points": records}
    if extras:
        payload.update(extras)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def _run_point(experiment, args: argparse.Namespace,
               cache: Optional[ResultCache],
               manifest: Optional[Manifest],
               overrides: Optional[Dict[str, object]],
               label: str) -> Dict[str, object]:
    """Execute one point (or serve its resume hit); journal + record.

    The returned record is the ``--report`` row: experiment, label,
    final status (``done``/``failed``/``error``), provenance
    (cached/resumed/cache_key/elapsed), the failed check names, any
    shard-recovery actions the executor had to take, and the error
    string for crashed points.
    """
    record: Dict[str, object] = {
        "experiment": experiment.name, "label": label,
        "status": "error", "cached": False, "resumed": False,
        "cache_key": None, "elapsed_s": 0.0, "failed_checks": [],
        "failures": [], "error": None,
    }
    kwargs: Optional[Dict[str, object]] = None
    try:
        kwargs = experiment.kwargs_for(
            scale=args.scale, seed=args.seed, overrides=overrides,
            backend=args.backend)
        report = None if args.refresh else _resume_hit(
            experiment, kwargs, manifest, cache)
        if report is not None:
            record["resumed"] = True
        else:
            report = experiment.run(
                scale=args.scale, seed=args.seed, jobs=args.jobs,
                backend=args.backend, chunk_reps=args.chunk_reps,
                retries=args.retries, shard_timeout=args.shard_timeout,
                overrides=overrides, cache=cache, refresh=args.refresh)
    except Exception as exc:  # aggregate, don't abort the batch
        record["error"] = str(exc)
        _record_point(manifest, experiment.name, kwargs, label,
                      "error", error=str(exc))
        return record
    _print_report(report)
    record.update(
        status="done" if report.result.all_checks_pass else "failed",
        cached=report.cached, cache_key=report.cache_key,
        elapsed_s=report.elapsed_s,
        failed_checks=list(report.result.failed_checks),
        failures=list(report.failures),
        backend=report.result.meta.get("backend"))
    if not record["resumed"]:  # the journal already says done
        _record_point(manifest, experiment.name, kwargs, label,
                      str(record["status"]), cache_key=report.cache_key)
    return record


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment (or all) and print its table(s).

    Per-experiment failures — shape-check failures *and* runner
    exceptions — are collected and summarised at the end instead of
    aborting the remaining experiments.  With ``--manifest`` the
    per-experiment outcomes are journalled as they complete, and
    ``--resume`` skips the experiments a previous (crashed) run
    already finished; ``--report PATH`` emits the structured summary
    as JSON.
    """
    try:
        experiments = (registry.experiments() if args.experiment == "all"
                       else [registry.get(args.experiment)])
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if getattr(args, "explain_backend", False):
        return _explain_backends(experiments, args.backend)
    profile_json = getattr(args, "profile_json", None)
    profile = getattr(args, "profile", False) or profile_json is not None
    # Profiling a cache read would be meaningless: bypass the cache so
    # the table shows the simulation itself.
    cache = None if profile else _cache_from(args)
    try:
        manifest = _open_manifest(args, "run", args.experiment)
    except (ManifestError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    records: List[Dict[str, object]] = []
    failures: Dict[str, str] = {}
    profiles: List[Dict[str, object]] = []
    for experiment in experiments:
        name = experiment.name
        if profile:
            try:
                report = _profiled_run(experiment, args, profiles)
            except Exception as exc:
                print(f"== {name}: ERROR ==\n   {exc}\n",
                      file=sys.stderr)
                failures[name] = f"error: {exc}"
                continue
            _print_report(report)
            if not report.result.all_checks_pass:
                failures[name] = ("checks failed: " + ", ".join(
                    report.result.failed_checks))
            continue
        record = _run_point(experiment, args, cache, manifest,
                            overrides=None, label=name)
        records.append(record)
        if record["status"] == "error":
            print(f"== {name}: ERROR ==\n   {record['error']}\n",
                  file=sys.stderr)
            failures[name] = f"error: {record['error']}"
        elif record["status"] == "failed":
            failures[name] = ("checks failed: "
                              + ", ".join(record["failed_checks"]))
        faults.maybe_kill_run(len(records))
    if profile_json is not None:
        _write_profile_json(profile_json, args.experiment, profiles)
    if args.report is not None and not profile:
        _write_report(args.report, "run", args.experiment, records)
    if failures:
        print(f"{len(failures)}/{len(experiments)} experiments failed:",
              file=sys.stderr)
        for name, reason in failures.items():
            print(f"  {name}: {reason}", file=sys.stderr)
        return 1
    return 0


#: Entries kept in the printed hot-spot table and the JSON snapshot.
_PROFILE_TOP_N = 25


def _profiled_run(experiment, args: argparse.Namespace,
                  profiles: List[Dict[str, object]]) -> RunReport:
    """Run one experiment under cProfile and print the hot-spot table.

    The table (top 25 entries by cumulative time) goes to stdout right
    before the experiment's own report, so future perf work starts
    from measured hot paths instead of guesses.  Repetitions stay in
    this process (``jobs`` is forced to 1): the profiler cannot see
    into worker processes, and a sharded profile would show only pool
    bookkeeping.  The same top-25 rows are appended to ``profiles`` in
    structured form for ``--profile-json``.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        report = experiment.run(
            scale=args.scale, seed=args.seed, jobs=1,
            backend=args.backend, chunk_reps=args.chunk_reps)
    finally:
        profiler.disable()
    print(f"== {experiment.name}: cProfile (top {_PROFILE_TOP_N}, "
          "cumulative) ==")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP_N)
    entries: List[Dict[str, object]] = []
    for func in (stats.fcn_list or list(stats.stats))[:_PROFILE_TOP_N]:
        filename, line, name = func
        primitive, ncalls, tottime, cumtime, _callers = stats.stats[func]
        entries.append({
            "file": filename, "line": line, "function": name,
            "ncalls": ncalls, "primitive_calls": primitive,
            "tottime_s": tottime, "cumtime_s": cumtime,
        })
    profiles.append({
        "experiment": experiment.name,
        "backend": report.result.meta.get("backend"),
        "total_calls": stats.total_calls,
        "total_time_s": stats.total_tt,
        "entries": entries,
    })
    return report


def _write_profile_json(path: str, target: str,
                        profiles: List[Dict[str, object]]) -> None:
    """Emit the structured profile snapshot as JSON (atomically).

    One record per profiled experiment, each carrying the same top-N
    cumulative rows the printed table shows — file, line, function,
    call counts, tottime and cumtime — so perf dashboards and diffing
    scripts consume the profile without scraping stdout.
    """
    payload = {"target": target, "sort": "cumulative",
               "top": _PROFILE_TOP_N, "profiles": profiles}
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def _explain_backends(experiments, requested: str) -> int:
    """Print the dispatcher's per-scenario decision, without running.

    One line per experiment (rendered by
    :func:`repro.backends.dispatch.explain`, the single owner of the
    explanation format) — requested backend, resolved backend,
    concrete kernel, and the structured fallback reason whenever
    ``auto`` settles for the event engine.  A single-experiment query
    also prints every rejected kernel's capability mismatches.  Exits
    non-zero only when a *forced* backend cannot run some scenario
    (the decision, with its mismatches, is still printed).
    """
    from repro.backends import dispatch
    code = 0
    verbose = len(experiments) == 1
    for experiment in experiments:
        first, *detail = dispatch.explain(experiment.scenario,
                                          requested).splitlines()
        print(f"{experiment.name:<26} {first}")
        if verbose:
            for line in detail:
                print(line)
        if "-> ERROR" in first:
            code = 1
    return code


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run one experiment over a parameter grid and summarise.

    With ``--manifest`` every point's outcome is journalled as it
    completes; after a crash (or Ctrl-C, or SIGKILL) re-running with
    ``--resume MANIFEST`` skips the completed points — served
    bit-identically from the verified result cache — and re-runs only
    pending and failed ones.

    ``--store DIR`` switches to the fused sweep engine: grid points
    are grouped by resolved backend/kernel and executed in fused
    windows, with results landing in an append-only columnar store
    instead of one JSON cache entry per point — the path that makes
    10^5-point parameter atlases affordable.  ``--adapt N`` (fused
    only) follows the coarse grid with curvature-guided refinement
    waves along the one multi-valued ``--param`` axis, scoring points
    by ``--metric`` (a series name; default the first series).
    """
    try:
        experiment = registry.get(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        specs = [parse_param_spec(spec) for spec in args.param]
        total = grid_size(specs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.adapt is not None and args.store is None:
        print("--adapt requires --store (refinement waves read the "
              "response curve back from the columnar store)",
              file=sys.stderr)
        return 2
    if args.store is not None:
        return _cmd_sweep_fused(args, experiment, specs, total)
    cache = _cache_from(args)
    try:
        manifest = _open_manifest(args, "sweep", args.experiment)
    except (ManifestError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    records: List[Dict[str, object]] = []
    summary: List[str] = []
    failed = 0
    for overrides in expand_grid(specs):
        label = ", ".join(f"{k}={v}" for k, v in overrides.items())
        record = _run_point(experiment, args, cache, manifest,
                            overrides=overrides, label=label)
        records.append(record)
        if record["status"] == "error":
            print(f"== {args.experiment} [{label}]: ERROR ==\n"
                  f"   {record['error']}\n", file=sys.stderr)
            summary.append(f"  {label}: error: {record['error']}")
            failed += 1
        elif record["status"] == "failed":
            summary.append(
                f"  {label}: FAIL ("
                + ", ".join(record["failed_checks"]) + ")")
            failed += 1
        else:
            cached = " [cached]" if record["cached"] else ""
            resumed = " [resumed]" if record["resumed"] else ""
            summary.append(f"  {label}: PASS{cached}{resumed}")
        faults.maybe_kill_run(len(records))
    print(f"== sweep {args.experiment}: "
          f"{total - failed}/{total} points pass ==")
    for line in summary:
        print(line)
    if args.report is not None:
        _write_report(args.report, "sweep", args.experiment, records)
    return 1 if failed else 0


def _cmd_sweep_fused(args: argparse.Namespace, experiment,
                     specs, total: int) -> int:
    """The ``sweep --store`` engine: plan, fuse, store, refine.

    Progress prints one line per fused window (per-point lines only
    for failures — a dense atlas must not print a million rows); the
    journal defaults to ``<store>/manifest.jsonl`` when neither
    ``--manifest`` nor ``--resume`` names one, so every fused sweep is
    resumable by construction.
    """
    try:
        if args.resume is not None:
            store = SweepStore.open(args.store)
            manifest = Manifest.load(args.resume)
            manifest.require("sweep", args.experiment)
        else:
            store = SweepStore.create(
                args.store, args.experiment,
                params=[name for name, _ in specs])
            manifest = Manifest.create(
                args.manifest or os.path.join(args.store,
                                              "manifest.jsonl"),
                "sweep", args.experiment,
                invocation={"scale": args.scale, "seed": args.seed,
                            "backend": args.backend,
                            "params": list(args.param),
                            "store": str(args.store)})
    except (StoreError, ManifestError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    chunk_scope = chunked_reps(args.chunk_reps) \
        if args.chunk_reps is not None else None
    fault_scope = retry_policy(retries=args.retries,
                               shard_timeout=args.shard_timeout) \
        if args.retries is not None or args.shard_timeout is not None \
        else None
    records: List[Dict[str, object]] = []
    group_counts: Dict[str, int] = {}
    waves: Dict[int, Dict[str, object]] = {}
    failed = resumed = 0
    try:
        if args.adapt is not None:
            outcome_stream = run_adaptive(
                experiment, specs, adapt=args.adapt,
                metric=args.metric, scale=args.scale, seed=args.seed,
                backend=args.backend, jobs=args.jobs, store=store,
                manifest=manifest, refresh=args.refresh)
        else:
            plan = SweepPlan(experiment, expand_grid(specs),
                             scale=args.scale, seed=args.seed,
                             backend=args.backend)
            outcome_stream = run_plan(
                plan, jobs=args.jobs, store=store, manifest=manifest,
                refresh=args.refresh)
        if chunk_scope is not None:
            chunk_scope.__enter__()
        if fault_scope is not None:
            fault_scope.__enter__()
        try:
            for window in outcome_stream:
                wave_note = f"[wave {window.wave}] " \
                    if args.adapt is not None else ""
                print(f"{wave_note}[{window.group}] "
                      f"{len(window.outcomes)} points "
                      f"({window.resumed} resumed) "
                      f"in {window.elapsed_s:.2f}s")
                group_counts[window.group] = \
                    group_counts.get(window.group, 0) \
                    + len(window.outcomes)
                wave = waves.setdefault(
                    window.wave, {"wave": window.wave, "points": 0,
                                  "resumed": 0, "values": []})
                wave["points"] += len(window.outcomes)
                wave["resumed"] += window.resumed
                resumed += window.resumed
                for outcome in window.outcomes:
                    if window.wave > 0:
                        wave["values"].extend(
                            value for value
                            in outcome["overrides"].values()
                            if isinstance(value, float))
                    if outcome["status"] == "error":
                        print(f"  {outcome['label']}: ERROR: "
                              f"{outcome['error']}", file=sys.stderr)
                        failed += 1
                    elif outcome["status"] == "failed":
                        print(f"  {outcome['label']}: FAIL ("
                              + ", ".join(outcome["failed_checks"])
                              + ")")
                        failed += 1
                    records.append({
                        "experiment": args.experiment,
                        "label": outcome["label"],
                        "status": outcome["status"],
                        "resumed": bool(outcome.get("resumed")),
                        "point_id": outcome["point_id"],
                        "elapsed_s": outcome["elapsed_s"],
                        "failed_checks": outcome["failed_checks"],
                        "error": outcome["error"] or None,
                        "backend": outcome["backend"],
                        "wave": window.wave,
                        "group": window.group,
                    })
        finally:
            if fault_scope is not None:
                fault_scope.__exit__(None, None, None)
            if chunk_scope is not None:
                chunk_scope.__exit__(None, None, None)
            store.close()
    except (ManifestError, StoreError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    done = len(records) - failed
    print(f"== sweep {args.experiment}: {done}/{len(records)} points "
          f"pass ({resumed} resumed"
          + (f", {len(records) - total} refined" if args.adapt
             is not None else "") + ") ==")
    print(f"   [store {store.root}: {store.stats()['points']} points, "
          f"{store.format}]")
    if args.report is not None:
        _write_report(
            args.report, "sweep", args.experiment, records,
            extras={
                "store_path": str(store.root),
                "store": store.stats(),
                "fused_groups": group_counts,
                "refinement_waves": [
                    waves[wave] for wave in sorted(waves)],
            })
    return 1 if failed else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """``cache ls`` / ``cache clear`` / ``cache stats``.

    ``ls`` never trips over damage: malformed entry files and
    previously quarantined ones are skipped from the listing and
    reported (count + paths) instead of raising.  ``stats`` prints one
    JSON document covering the JSON result cache and any columnar
    sweep stores named with ``--store`` (repeatable).
    """
    cache = ResultCache(root=args.cache_dir)
    if args.action == "stats":
        payload: Dict[str, object] = {"cache": cache.stats()}
        stores = []
        for root in args.store or []:
            try:
                stores.append(SweepStore.open(root).stats())
            except StoreError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        payload["stores"] = stores
        print(json.dumps(payload, indent=2))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr"
              f"{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    entries, malformed = cache.scan()
    quarantined = cache.quarantined()
    if not entries and not malformed and not quarantined:
        print(f"cache {cache.root} is empty")
        return 0
    print(f"{len(entries)} cache entr"
          f"{'y' if len(entries) == 1 else 'ies'} in {cache.root}:")
    for entry in entries:
        staleness = "  (stale code version)" if entry.stale else ""
        rendered = ", ".join(f"{k}={v}" for k, v in entry.kwargs.items())
        print(f"  {entry.experiment:<26} {entry.key}  "
              f"{entry.size_bytes:>8} B{staleness}")
        print(f"    {rendered}")
    if malformed:
        print(f"{len(malformed)} malformed entr"
              f"{'y' if len(malformed) == 1 else 'ies'} skipped "
              "(will be quarantined and recomputed on use):")
        for path in malformed:
            print(f"  {path}")
    if quarantined:
        print(f"{len(quarantined)} quarantined entr"
              f"{'y' if len(quarantined) == 1 else 'ies'} "
              "(cache clear removes them):")
        for path in quarantined:
            print(f"  {path}")
    return 0


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``run`` and ``sweep``."""
    parser.add_argument("--scale", type=float, default=1.0,
                        help="repetition-count multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for repetition sharding "
                             "(0 = one per CPU; default $REPRO_JOBS or "
                             "1; results are identical for any job "
                             "count)")
    parser.add_argument("--chunk-reps", type=int, default=None,
                        help="stream vector-backend batches in chunks "
                             "of this many repetitions, folding each "
                             "chunk into the result as it completes "
                             "(peak memory scales with the chunk, not "
                             "the batch; default $REPRO_CHUNK_REPS or "
                             "dense; results are bit-identical at any "
                             "chunk size)")
    parser.add_argument("--backend",
                        choices=("auto", "event", "vector", "jit"),
                        default="auto",
                        help="repetition backend: 'auto' (default) "
                             "lets the capability dispatcher pick the "
                             "fastest eligible kernel per experiment "
                             "and records the choice in the result "
                             "meta; 'event' runs each repetition "
                             "through the event engine; 'vector' "
                             "forces the numpy batch kernel (fails "
                             "with the structured reason on "
                             "experiments it cannot model — see "
                             "'list' for which offer it); 'jit' "
                             "forces the numba-compiled kernel tier "
                             "(fails with the structured reason when "
                             "numba is not installed)")
    parser.add_argument("--retries", type=int, default=None,
                        help="attempts granted to a crashed or "
                             "timed-out worker shard before it falls "
                             "back to in-process execution (default "
                             "$REPRO_RETRIES or 2; recovery is "
                             "recorded in the result meta and can "
                             "never change results)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per worker shard "
                             "attempt; a shard over budget is killed "
                             "and retried like a crash (default "
                             "$REPRO_SHARD_TIMEOUT or unbounded)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="journal per-point progress to this "
                             "JSONL manifest (append-only, crash-"
                             "safe) so an interrupted invocation can "
                             "be resumed with --resume")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="resume from a progress manifest: "
                             "points it marks done are served bit-"
                             "identically from the result cache, "
                             "only pending/failed ones re-run; "
                             "progress keeps appending to the same "
                             "manifest")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the structured per-point "
                             "success/failure/retry summary as JSON "
                             "to PATH")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even on a cache hit (and "
                             "store the fresh result)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default $REPRO_CACHE_DIR "
                             "or ./.repro-cache)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Impact of Transient CSMA/CA Access "
                    "Delays on Active Bandwidth Measurements' (IMC'09)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments") \
        .set_defaults(func=cmd_list)
    sub.add_parser("info", help="print link calibration summary") \
        .set_defaults(func=cmd_info)
    run = sub.add_parser("run", help="run an experiment")
    run.add_argument("experiment",
                     help="experiment name (see 'list'), or 'all'")
    run.add_argument("--explain-backend", action="store_true",
                     help="print the backend dispatcher's decision "
                          "(resolved kernel and any fallback reason) "
                          "for the experiment(s) and exit without "
                          "running anything")
    run.add_argument("--profile", action="store_true",
                     help="run under cProfile and print the top-25 "
                          "cumulative hot spots before the report "
                          "(implies --no-cache and --jobs 1, so the "
                          "profile measures the simulation in this "
                          "process)")
    run.add_argument("--profile-json", default=None, metavar="PATH",
                     help="write the same top-25 cumulative profile "
                          "rows as structured JSON to PATH (implies "
                          "--profile)")
    _add_run_options(run)
    run.set_defaults(func=cmd_run)
    sweep = sub.add_parser(
        "sweep", help="run an experiment over a parameter grid")
    sweep.add_argument("experiment", help="experiment name (see 'list')")
    sweep.add_argument("--param", action="append", required=True,
                       metavar="NAME=V1,V2,...",
                       help="sweep values for one runner kwarg "
                            "(repeatable; grid = Cartesian product)")
    sweep.add_argument("--store", default=None, metavar="DIR",
                       help="run the fused sweep engine: group grid "
                            "points by resolved backend/kernel, "
                            "execute them as fused batches, and "
                            "append results to a columnar store at "
                            "DIR (parquet when pyarrow is installed, "
                            "compressed npz otherwise); with --resume "
                            "the store is reopened and completed "
                            "points are skipped")
    sweep.add_argument("--adapt", type=int, default=None, metavar="N",
                       help="after the coarse grid, add up to N "
                            "refinement points where the response "
                            "curve bends hardest (largest second "
                            "difference of --metric along the one "
                            "multi-valued --param axis); requires "
                            "--store")
    sweep.add_argument("--metric", default=None, metavar="SERIES",
                       help="result series scored by --adapt (mean of "
                            "the named series; default: the "
                            "experiment's first series)")
    _add_run_options(sweep)
    sweep.set_defaults(func=cmd_sweep)
    cache = sub.add_parser("cache", help="inspect the result cache")
    cache.add_argument("action", choices=("ls", "clear", "stats"),
                       help="list entries, delete them all, or print "
                            "JSON usage stats")
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default $REPRO_CACHE_DIR "
                            "or ./.repro-cache)")
    cache.add_argument("--store", action="append", default=None,
                       metavar="DIR",
                       help="also report this columnar sweep store in "
                            "'cache stats' (repeatable)")
    cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
