"""``python -m repro`` entry point.

Subcommands: ``list``, ``info``, ``run``, ``sweep``, ``cache`` — see
:mod:`repro.cli`.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
