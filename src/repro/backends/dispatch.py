"""Capability-matching backend dispatcher.

Given a :class:`repro.backends.spec.ScenarioSpec` and a requested
backend (``auto``, ``event``, ``vector`` or ``jit``), :func:`resolve`
picks the concrete :class:`repro.backends.base.Backend` that will
execute the batch:

* ``auto`` — the fastest eligible *and available* backend (the jit
  tier outranks the numpy kernels, which outrank the event engine);
  when every kernel is ineligible the event engine wins and the
  *reason* is recorded as :attr:`Resolution.fallback` instead of being
  swallowed, and when a faster tier is merely unavailable (numba
  missing) the pick degrades to the numpy tier with the reason
  recorded as :attr:`Resolution.degraded`;
* ``event`` / ``vector`` / ``jit`` — force the family; forcing a
  kernel family on an ineligible scenario raises
  :class:`BackendUnavailableError` carrying the structured
  :class:`~repro.backends.spec.CapabilityMismatch` records, and
  forcing ``jit`` without numba raises it with a dependency mismatch
  ("numba not installed").

Resolution is a pure function of ``(spec, requested)`` and the
installed optional dependencies — no clocks, no ambient job count — so
``auto`` picks the same backend under any ``--jobs`` value and on
every worker, which the result-cache key relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.backends.base import (
    Backend,
    CallerKernelBackend,
    EventBackend,
    FAMILIES,
    KERNEL_FAMILIES,
    LindleyJitBackend,
    LindleyVectorBackend,
    PathVectorBackend,
    ProbeTrainJitBackend,
    ProbeTrainVectorBackend,
    SaturatedJitBackend,
    SaturatedVectorBackend,
)
from repro.backends.spec import (
    CapabilityMismatch,
    EVENT_ONLY,
    ScenarioSpec,
)

#: Backend choices a caller may request (concrete families + auto).
REQUESTABLE = ("auto",) + FAMILIES

#: The singleton event backend (the universal fallback).
EVENT = EventBackend()

#: The synthetic backend behind a forced ``vector`` with no spec: the
#: caller vouches for its own kernel, but the run still flows through
#: a :class:`Resolution` (and the shared chunked execution path) so
#: result metadata always records a backend.  Never scanned by
#: ``auto`` — it is deliberately absent from :data:`BACKENDS`.
CALLER_KERNEL = CallerKernelBackend()

#: Every backend; ``auto`` scans these sorted by speed rank (the jit
#: tier first, then the numpy kernels, then the event engine).  The
#: declaration order matters twice: the path kernel precedes the
#: Lindley kernel so that, on a path scenario some hop disqualifies,
#: the nearest-miss tie break (:func:`_closest_reason`) surfaces the
#: hop's own detail sentence rather than the Lindley kernel's generic
#: system mismatch — and the jit twins sit *after* the numpy kernels
#: so the same tie break keeps preferring the numpy kernels' labels.
BACKENDS: Tuple[Backend, ...] = (
    ProbeTrainVectorBackend(),
    SaturatedVectorBackend(),
    PathVectorBackend(),
    LindleyVectorBackend(),
    ProbeTrainJitBackend(),
    SaturatedJitBackend(),
    LindleyJitBackend(),
    EVENT,
)


class BackendUnavailableError(ValueError):
    """A forced backend cannot run the scenario.

    ``mismatches`` maps each rejected kernel label to its structured
    :class:`~repro.backends.spec.CapabilityMismatch` records, so
    callers (and tests) can inspect *why* without parsing the message.
    """

    def __init__(self, message: str,
                 mismatches: Dict[str, Tuple[CapabilityMismatch, ...]]):
        super().__init__(message)
        self.mismatches = mismatches


@dataclass(frozen=True)
class Resolution:
    """Outcome of one dispatch decision."""

    requested: str
    backend: Backend
    #: Why ``auto`` fell back to the event engine (``None`` when a
    #: kernel was picked or the caller forced ``event``).
    fallback: Optional[str]
    #: Kernel label -> structured mismatches of every rejected kernel.
    rejected: Tuple[Tuple[str, Tuple[CapabilityMismatch, ...]], ...]
    #: Why ``auto`` skipped a faster-but-unavailable tier for this
    #: pick (e.g. the jit tier without numba); ``None`` when the
    #: fastest capable backend was also available.  Distinct from
    #: ``fallback``, which means "no kernel at all".
    degraded: Optional[str] = None

    @property
    def name(self) -> str:
        """CLI-facing family name of the chosen backend."""
        return self.backend.name

    @property
    def kernel(self) -> str:
        """Human label of the chosen kernel."""
        return self.backend.kernel

    def describe(self) -> str:
        """One line for ``--explain-backend`` output."""
        line = f"{self.requested} -> {self.name} ({self.kernel})"
        if self.fallback:
            line += f"  [fallback: {self.fallback}]"
        if self.degraded:
            line += f"  [degraded: {self.degraded}]"
        return line


def eligible(spec: ScenarioSpec, *,
             assume_available: bool = False) -> List[Backend]:
    """Backends that can run ``spec``, fastest-preference first.

    Ordered by :attr:`Backend.speed_rank` (stable, so declaration
    order breaks ties) — this ordering is what ``auto`` picks from.
    ``assume_available=True`` keeps backends whose optional dependency
    is missing: capability questions ("could this scenario ride the
    jit tier?") must answer the same on every machine, so coverage
    manifests and :func:`family_names` never depend on what happens to
    be installed here.
    """
    found = [backend for backend in BACKENDS
             if not backend.mismatches(spec)]
    if not assume_available:
        found = [backend for backend in found
                 if backend.unavailable_reason() is None]
    return sorted(found, key=lambda backend: backend.speed_rank)


def family_names(spec: ScenarioSpec) -> Tuple[str, ...]:
    """Supported CLI families for ``spec`` (``event`` always; first).

    This is what :attr:`repro.runtime.registry.Experiment.backends`
    derives its value from — the hand-maintained frozenset it replaced
    listed exactly these names.  Capability-only (missing optional
    dependencies do not shrink it): the answer is a property of the
    scenario, not of the machine.
    """
    names = {backend.name
             for backend in eligible(spec, assume_available=True)}
    return tuple(f for f in FAMILIES if f in names)


def _rejections(spec: ScenarioSpec) -> Tuple[
        Tuple[str, Tuple[CapabilityMismatch, ...]], ...]:
    """``(kernel label, mismatches)`` of every ineligible kernel."""
    out = []
    for backend in BACKENDS:
        if backend is EVENT:
            continue
        found = backend.mismatches(spec)
        if found:
            out.append((backend.kernel, tuple(found)))
    return tuple(out)


def _closest_reason(rejected) -> str:
    """The most informative single-line fallback reason.

    The kernel with the *fewest* mismatches was the nearest miss; its
    first mismatch names the one capability that kept the scenario on
    the event engine.
    """
    if not rejected:
        return ""
    _, mismatches = min(rejected, key=lambda item: len(item[1]))
    return str(mismatches[0])


def resolve(spec: Optional[ScenarioSpec], requested: str = "auto",
            *, trust_caller_kernel: bool = False) -> Resolution:
    """Pick the backend for ``spec``; see the module docstring.

    ``spec=None`` means "nothing declared": only the event engine is
    eligible (an undeclared scenario must never silently ride a
    kernel), so ``auto`` records that as the fallback reason and a
    forced ``vector`` raises.  ``trust_caller_kernel=True`` (the
    executor's batch path sets it) changes only the last case: a
    *forced* ``vector`` with no spec then resolves to the synthetic
    :data:`CALLER_KERNEL` backend — the caller vouches for the kernel
    it supplies with the batch, and routing that trust through a
    resolution (rather than bypassing dispatch, as the executor once
    did) keeps backend metadata recorded on every run.
    """
    if requested not in REQUESTABLE:
        raise ValueError(
            f"unknown backend {requested!r}; "
            f"expected one of {REQUESTABLE}")
    if spec is None:
        if requested == "vector" and trust_caller_kernel:
            return Resolution(requested, CALLER_KERNEL, None, ())
        spec = EVENT_ONLY
    rejected = _rejections(spec)
    if requested == "event":
        return Resolution(requested, EVENT, None, rejected)
    if requested in KERNEL_FAMILIES:
        capable = [backend
                   for backend in eligible(spec, assume_available=True)
                   if backend.name == requested]
        if not capable:
            reason = _closest_reason(rejected)
            raise BackendUnavailableError(
                f"no {requested} kernel supports this scenario: {reason}",
                dict(rejected))
        ready = [backend for backend in capable
                 if backend.unavailable_reason() is None]
        if not ready:
            # Capable but not runnable here: a missing optional
            # dependency, reported as a structured mismatch rather
            # than leaking an ImportError from the kernel.
            reason = capable[0].unavailable_reason()
            unavailable = {backend.kernel: (CapabilityMismatch(
                "dependency", "numba", "not installed", reason),)
                for backend in capable}
            raise BackendUnavailableError(
                f"the {requested} backend cannot run here: {reason}",
                unavailable)
        return Resolution(requested, ready[0], None, rejected)
    # auto: fastest capable-and-available kernel, else event + reason;
    # a capable-but-unavailable faster tier is recorded as degradation.
    capable = [backend
               for backend in eligible(spec, assume_available=True)
               if backend is not EVENT]
    ready = [backend for backend in capable
             if backend.unavailable_reason() is None]
    if ready:
        degraded = None
        if capable[0] is not ready[0]:
            degraded = (f"{capable[0].kernel} skipped: "
                        f"{capable[0].unavailable_reason()}")
        return Resolution(requested, ready[0], None, rejected, degraded)
    return Resolution(requested, EVENT, _closest_reason(rejected), rejected)


def fusion_key(resolution: Resolution) -> Tuple[str, str]:
    """The cross-point fusion key of one dispatch decision.

    Two sweep points may share an execution group exactly when their
    resolutions name the same backend family *and* concrete kernel —
    the pair the sweep planner groups grid points by.
    """
    return (resolution.name, resolution.kernel)


def group_by_resolution(spec: Optional[ScenarioSpec],
                        requests) -> Dict[Tuple[str, str], List[int]]:
    """Group request indices by their resolved ``(family, kernel)``.

    ``requests`` is a sequence of requested backend names (one per
    sweep point, say); each *distinct* request is resolved exactly
    once — resolution is a pure function of ``(spec, requested)``, so
    re-resolving per point would be pure overhead on a dense grid —
    and the result maps each fusion key to the indices it covers.
    A request no backend can satisfy raises
    :class:`BackendUnavailableError`, exactly like :func:`resolve`.
    """
    memo: Dict[str, Tuple[str, str]] = {}
    groups: Dict[Tuple[str, str], List[int]] = {}
    for index, requested in enumerate(requests):
        key = memo.get(requested)
        if key is None:
            key = fusion_key(resolve(spec, requested))
            memo[requested] = key
        groups.setdefault(key, []).append(index)
    return groups


def vector_mismatch_reason(spec: ScenarioSpec) -> Optional[str]:
    """Why no batch kernel runs ``spec`` (``None`` when one does).

    The structured replacement for the channel layer's old string
    matching: the returned sentence is ``str()`` of the nearest
    kernel's first :class:`CapabilityMismatch`.
    """
    resolution = resolve(spec, "auto")
    if resolution.name in KERNEL_FAMILIES:
        return None
    return resolution.fallback


def explain(spec: Optional[ScenarioSpec], requested: str = "auto") -> str:
    """Multi-line dispatch explanation (``--explain-backend``).

    Never raises: a forced-but-ineligible request renders the
    structured reasons instead.
    """
    try:
        resolution = resolve(spec, requested)
    except BackendUnavailableError as exc:
        lines = [f"{requested} -> ERROR: {exc}"]
        for kernel, mismatches in exc.mismatches.items():
            for mismatch in mismatches:
                lines.append(f"    {kernel}: {mismatch} "
                             f"[{mismatch.capability}: needs "
                             f"{mismatch.required}, supports "
                             f"{mismatch.supported}]")
        return "\n".join(lines)
    lines = [resolution.describe()]
    for kernel, mismatches in resolution.rejected:
        for mismatch in mismatches:
            lines.append(f"    {kernel}: {mismatch}")
    return "\n".join(lines)
