"""Capability-matching backend dispatcher.

Given a :class:`repro.backends.spec.ScenarioSpec` and a requested
backend (``auto``, ``event`` or ``vector``), :func:`resolve` picks the
concrete :class:`repro.backends.base.Backend` that will execute the
batch:

* ``auto`` — the fastest eligible backend (kernels outrank the event
  engine); when every kernel is ineligible the event engine wins and
  the *reason* is recorded as :attr:`Resolution.fallback` instead of
  being swallowed;
* ``event`` / ``vector`` — force the family; forcing ``vector`` on an
  ineligible scenario raises :class:`BackendUnavailableError` carrying
  the structured :class:`~repro.backends.spec.CapabilityMismatch`
  records.

Resolution is a pure function of ``(spec, requested)`` — no clocks, no
environment, no ambient job count — so ``auto`` picks the same backend
under any ``--jobs`` value and on every worker, which the result-cache
key relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.backends.base import (
    Backend,
    CallerKernelBackend,
    EventBackend,
    FAMILIES,
    LindleyVectorBackend,
    PathVectorBackend,
    ProbeTrainVectorBackend,
    SaturatedVectorBackend,
)
from repro.backends.spec import (
    CapabilityMismatch,
    EVENT_ONLY,
    ScenarioSpec,
)

#: Backend choices a caller may request (concrete families + auto).
REQUESTABLE = ("auto",) + FAMILIES

#: The singleton event backend (the universal fallback).
EVENT = EventBackend()

#: The synthetic backend behind a forced ``vector`` with no spec: the
#: caller vouches for its own kernel, but the run still flows through
#: a :class:`Resolution` (and the shared chunked execution path) so
#: result metadata always records a backend.  Never scanned by
#: ``auto`` — it is deliberately absent from :data:`BACKENDS`.
CALLER_KERNEL = CallerKernelBackend()

#: Every backend, fastest-preference first; ``auto`` scans this order.
#: The path kernel precedes the Lindley kernel so that, on a path
#: scenario some hop disqualifies, the nearest-miss tie break
#: (:func:`_closest_reason`) surfaces the hop's own detail sentence
#: rather than the Lindley kernel's generic system mismatch.
BACKENDS: Tuple[Backend, ...] = (
    ProbeTrainVectorBackend(),
    SaturatedVectorBackend(),
    PathVectorBackend(),
    LindleyVectorBackend(),
    EVENT,
)


class BackendUnavailableError(ValueError):
    """A forced backend cannot run the scenario.

    ``mismatches`` maps each rejected kernel label to its structured
    :class:`~repro.backends.spec.CapabilityMismatch` records, so
    callers (and tests) can inspect *why* without parsing the message.
    """

    def __init__(self, message: str,
                 mismatches: Dict[str, Tuple[CapabilityMismatch, ...]]):
        super().__init__(message)
        self.mismatches = mismatches


@dataclass(frozen=True)
class Resolution:
    """Outcome of one dispatch decision."""

    requested: str
    backend: Backend
    #: Why ``auto`` fell back to the event engine (``None`` when a
    #: kernel was picked or the caller forced ``event``).
    fallback: Optional[str]
    #: Kernel label -> structured mismatches of every rejected kernel.
    rejected: Tuple[Tuple[str, Tuple[CapabilityMismatch, ...]], ...]

    @property
    def name(self) -> str:
        """CLI-facing family name of the chosen backend."""
        return self.backend.name

    @property
    def kernel(self) -> str:
        """Human label of the chosen kernel."""
        return self.backend.kernel

    def describe(self) -> str:
        """One line for ``--explain-backend`` output."""
        line = f"{self.requested} -> {self.name} ({self.kernel})"
        if self.fallback:
            line += f"  [fallback: {self.fallback}]"
        return line


def eligible(spec: ScenarioSpec) -> List[Backend]:
    """Backends that can run ``spec``, fastest-preference first.

    Ordered by :attr:`Backend.speed_rank` (stable, so declaration
    order breaks ties) — this ordering is what ``auto`` picks from.
    """
    return sorted(
        (backend for backend in BACKENDS if not backend.mismatches(spec)),
        key=lambda backend: backend.speed_rank)


def family_names(spec: ScenarioSpec) -> Tuple[str, ...]:
    """Supported CLI families for ``spec`` (``event`` always; first).

    This is what :attr:`repro.runtime.registry.Experiment.backends`
    derives its value from — the hand-maintained frozenset it replaced
    listed exactly these names.
    """
    names = {backend.name for backend in eligible(spec)}
    return tuple(f for f in FAMILIES if f in names)


def _rejections(spec: ScenarioSpec) -> Tuple[
        Tuple[str, Tuple[CapabilityMismatch, ...]], ...]:
    """``(kernel label, mismatches)`` of every ineligible kernel."""
    out = []
    for backend in BACKENDS:
        if backend is EVENT:
            continue
        found = backend.mismatches(spec)
        if found:
            out.append((backend.kernel, tuple(found)))
    return tuple(out)


def _closest_reason(rejected) -> str:
    """The most informative single-line fallback reason.

    The kernel with the *fewest* mismatches was the nearest miss; its
    first mismatch names the one capability that kept the scenario on
    the event engine.
    """
    if not rejected:
        return ""
    _, mismatches = min(rejected, key=lambda item: len(item[1]))
    return str(mismatches[0])


def resolve(spec: Optional[ScenarioSpec], requested: str = "auto",
            *, trust_caller_kernel: bool = False) -> Resolution:
    """Pick the backend for ``spec``; see the module docstring.

    ``spec=None`` means "nothing declared": only the event engine is
    eligible (an undeclared scenario must never silently ride a
    kernel), so ``auto`` records that as the fallback reason and a
    forced ``vector`` raises.  ``trust_caller_kernel=True`` (the
    executor's batch path sets it) changes only the last case: a
    *forced* ``vector`` with no spec then resolves to the synthetic
    :data:`CALLER_KERNEL` backend — the caller vouches for the kernel
    it supplies with the batch, and routing that trust through a
    resolution (rather than bypassing dispatch, as the executor once
    did) keeps backend metadata recorded on every run.
    """
    if requested not in REQUESTABLE:
        raise ValueError(
            f"unknown backend {requested!r}; "
            f"expected one of {REQUESTABLE}")
    if spec is None:
        if requested == "vector" and trust_caller_kernel:
            return Resolution(requested, CALLER_KERNEL, None, ())
        spec = EVENT_ONLY
    rejected = _rejections(spec)
    if requested == "event":
        return Resolution(requested, EVENT, None, rejected)
    candidates = [backend for backend in eligible(spec)
                  if backend.name == "vector"]
    if requested == "vector":
        if not candidates:
            reason = _closest_reason(rejected)
            raise BackendUnavailableError(
                f"no vector kernel supports this scenario: {reason}",
                dict(rejected))
        return Resolution(requested, candidates[0], None, rejected)
    # auto: fastest eligible kernel, else the event engine + reason.
    if candidates:
        return Resolution(requested, candidates[0], None, rejected)
    return Resolution(requested, EVENT, _closest_reason(rejected), rejected)


def vector_mismatch_reason(spec: ScenarioSpec) -> Optional[str]:
    """Why no vector kernel runs ``spec`` (``None`` when one does).

    The structured replacement for the channel layer's old string
    matching: the returned sentence is ``str()`` of the nearest
    kernel's first :class:`CapabilityMismatch`.
    """
    resolution = resolve(spec, "auto")
    if resolution.name == "vector":
        return None
    return resolution.fallback


def explain(spec: Optional[ScenarioSpec], requested: str = "auto") -> str:
    """Multi-line dispatch explanation (``--explain-backend``).

    Never raises: a forced-but-ineligible request renders the
    structured reasons instead.
    """
    try:
        resolution = resolve(spec, requested)
    except BackendUnavailableError as exc:
        lines = [f"{requested} -> ERROR: {exc}"]
        for kernel, mismatches in exc.mismatches.items():
            for mismatch in mismatches:
                lines.append(f"    {kernel}: {mismatch} "
                             f"[{mismatch.capability}: needs "
                             f"{mismatch.required}, supports "
                             f"{mismatch.supported}]")
        return "\n".join(lines)
    lines = [resolution.describe()]
    for kernel, mismatches in resolution.rejected:
        for mismatch in mismatches:
            lines.append(f"    {kernel}: {mismatch}")
    return "\n".join(lines)
