"""The backend protocol and the concrete execution backends.

A :class:`Backend` is one way to resolve a repetition batch: it has a
CLI-facing ``name`` (the family users select with ``--backend``), a
human ``kernel`` label, a ``speed_rank`` (smaller = preferred by
``auto``), a declarative :meth:`Backend.capabilities` statement over
the :class:`repro.backends.spec.ScenarioSpec` vocabulary, and a
:meth:`Backend.run_batch` that executes a whole batch.

Five backends exist:

* :class:`EventBackend` — the discrete-event engine; supports every
  scenario and shards repetitions over worker processes;
* :class:`ProbeTrainVectorBackend` — :mod:`repro.sim.probe_vector`:
  probe trains (and steady CBR flows) through DCF contended by
  Poisson/CBR/on-off traffic, with RTS/CTS, retry limits and queue
  traces;
* :class:`SaturatedVectorBackend` — :mod:`repro.sim.vector`: the
  saturated Bianchi regime;
* :class:`LindleyVectorBackend` — the batched Lindley recursion for
  wired FIFO hops (:mod:`repro.queueing.lindley`);
* :class:`PathVectorBackend` — the multihop chain: the probe-train
  and Lindley kernels run per hop, each hop's departure matrix
  feeding the next hop's arrival process
  (:meth:`repro.path.network.NetworkPath.carry_batch`).

The four kernels share the CLI family name ``vector``; the dispatcher
picks among them per scenario, which is why the kernel label is
recorded separately in result metadata.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

from repro.backends.spec import Capabilities, ScenarioSpec

#: The CLI-facing backend families.
FAMILIES = ("event", "vector")


class Backend(abc.ABC):
    """One way of executing a repetition batch."""

    #: CLI-facing family name (``event`` or ``vector``).
    name: str = "event"
    #: Human label of the concrete kernel (``--explain-backend``, meta).
    kernel: str = "event engine"
    #: Dispatch preference; ``auto`` picks the smallest eligible rank.
    speed_rank: int = 100

    @abc.abstractmethod
    def capabilities(self) -> Capabilities:
        """What scenarios this backend can execute."""

    def mismatches(self, spec: ScenarioSpec):
        """Structured reasons ``spec`` does not fit (empty = eligible)."""
        return self.capabilities().mismatches(spec)

    def run_batch(self, repetitions: int, seed: int,
                  event_task: Optional[Callable[[int], Any]] = None,
                  batch_task: Optional[Callable[[int], Any]] = None):
        """Execute one repetition batch on this backend.

        ``event_task`` is a pure ``seed -> result`` per-repetition
        function; ``batch_task`` is a ``seed -> batch`` kernel that
        derives the same per-repetition seeds internally
        (:func:`repro.runtime.executor.derive_seeds`) and resolves
        every repetition in one pass.  Each backend consumes exactly
        one of the two.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}/{self.kernel}>"


class EventBackend(Backend):
    """The per-repetition event engine — supports everything."""

    name = "event"
    kernel = "event engine"
    speed_rank = 100

    def capabilities(self) -> Capabilities:
        """Every scenario axis, every value."""
        return Capabilities()

    def run_batch(self, repetitions: int, seed: int,
                  event_task: Optional[Callable[[int], Any]] = None,
                  batch_task: Optional[Callable[[int], Any]] = None):
        """Map ``event_task`` over the derived per-repetition seeds.

        Fans out across the ambient worker pool
        (:func:`repro.runtime.executor.parallel_jobs`); results come
        back in repetition order, bit-identical for any job count.
        """
        if event_task is None:
            raise ValueError("the event backend needs an event_task")
        # Imported lazily: repro.runtime sits above this layer.
        from repro.runtime.executor import derive_seeds, map_ordered
        return map_ordered(event_task, derive_seeds(seed, repetitions))


class _VectorBackend(Backend):
    """Shared ``run_batch`` of the numpy batch kernels."""

    name = "vector"
    speed_rank = 10

    def run_batch(self, repetitions: int, seed: int,
                  event_task: Optional[Callable[[int], Any]] = None,
                  batch_task: Optional[Callable[[int], Any]] = None):
        """Hand the whole batch to the kernel (``batch_task(seed)``)."""
        if batch_task is None:
            raise ValueError("this batch has no vector kernel; "
                             "run it with backend='event'")
        return batch_task(seed)


class ProbeTrainVectorBackend(_VectorBackend):
    """:mod:`repro.sim.probe_vector` — trains and steady CBR flows
    through contended DCF (FIFO cross-traffic may share the probe
    queue)."""

    kernel = "probe-train kernel"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """WLAN trains/steady flows; Poisson, CBR and on-off traffic
        (mixed across stations), RTS/CTS, retry limits, queue traces."""
        return Capabilities(
            systems=frozenset({"wlan"}),
            workloads=frozenset({"train", "steady-cbr"}),
            cross_traffic=frozenset(
                {"none", "poisson", "cbr", "onoff", "mixed"}),
            fifo_cross=frozenset({"none", "poisson", "cbr", "onoff"}),
            rts_cts=True, retry_limit=True, queue_traces=True)


class SaturatedVectorBackend(_VectorBackend):
    """:mod:`repro.sim.vector` — every station permanently backlogged
    (the Bianchi regime)."""

    kernel = "saturated-DCF kernel"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """Saturated WLAN batches (RTS/CTS and retry caps allowed)."""
        return Capabilities(
            systems=frozenset({"wlan"}),
            workloads=frozenset({"saturated"}),
            cross_traffic=frozenset({"none"}),
            fifo_cross=frozenset({"none"}),
            rts_cts=True, retry_limit=True, queue_traces=False)


class LindleyVectorBackend(_VectorBackend):
    """The batched Lindley recursion for wired FIFO hops.

    Replays the event path's exact sample paths, so any arrival model
    with a ``generate`` method is fine — the recursion only needs the
    merged (arrival, service) sequences.
    """

    kernel = "batched Lindley recursion"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """FIFO-hop trains with any replayable cross-traffic model."""
        return Capabilities(
            systems=frozenset({"fifo"}),
            workloads=frozenset({"train"}),
            rts_cts=False, retry_limit=False, queue_traces=False)


class PathVectorBackend(_VectorBackend):
    """Chained per-hop kernels for multihop paths.

    :meth:`repro.path.network.NetworkPath.carry_batch` runs the
    probe-train kernel on every WLAN hop and the batched Lindley
    recursion on every wired hop, feeding each hop's departure matrix
    to the next hop as its arrival process — the kernel analogue of
    the per-packet :meth:`repro.path.hops.PathHop.carry` chain.  Every
    hop must carry batch-sampleable cross-traffic (Poisson, CBR or
    on-off); the combined spec compiles the worst hop's traffic model,
    so one unsupported hop demotes the whole path to the event engine.
    """

    kernel = "multihop chain kernel"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """Path trains over batch-sampleable hops (RTS/CTS and retry
        caps allowed).

        Both traffic axes accept ``mixed``: each hop resolves its own
        generators, so different hops may carry different (individually
        supported) models — including each hop's own FIFO flow.
        """
        return Capabilities(
            systems=frozenset({"path"}),
            workloads=frozenset({"train"}),
            cross_traffic=frozenset(
                {"none", "poisson", "cbr", "onoff", "mixed"}),
            fifo_cross=frozenset(
                {"none", "poisson", "cbr", "onoff", "mixed"}),
            rts_cts=True, retry_limit=True, queue_traces=False)
