"""The backend protocol and the concrete execution backends.

A :class:`Backend` is one way to resolve a repetition batch: it has a
CLI-facing ``name`` (the family users select with ``--backend``), a
human ``kernel`` label, a ``speed_rank`` (smaller = preferred by
``auto``), a declarative :meth:`Backend.capabilities` statement over
the :class:`repro.backends.spec.ScenarioSpec` vocabulary, and a
:meth:`Backend.run_batch` that executes a whole batch.

Five backends exist:

* :class:`EventBackend` — the discrete-event engine; supports every
  scenario and shards repetitions over worker processes;
* :class:`ProbeTrainVectorBackend` — :mod:`repro.sim.probe_vector`:
  probe trains (and steady CBR flows) through DCF contended by
  Poisson/CBR/on-off traffic, with RTS/CTS, retry limits and queue
  traces;
* :class:`SaturatedVectorBackend` — :mod:`repro.sim.vector`: the
  saturated Bianchi regime;
* :class:`LindleyVectorBackend` — the batched Lindley recursion for
  wired FIFO hops (:mod:`repro.queueing.lindley`);
* :class:`PathVectorBackend` — the multihop chain: the probe-train
  and Lindley kernels run per hop, each hop's departure matrix
  feeding the next hop's arrival process
  (:meth:`repro.path.network.NetworkPath.carry_batch`).

The four kernels share the CLI family name ``vector``; the dispatcher
picks among them per scenario, which is why the kernel label is
recorded separately in result metadata.

On top of the numpy tier sits the optional ``jit`` family
(:class:`ProbeTrainJitBackend`, :class:`SaturatedJitBackend`,
:class:`LindleyJitBackend`): the same kernels with their hot cores
routed to the numba-compiled twins in :mod:`repro.sim.jit`.  Jit
backends rank ahead of the numpy tier (``speed_rank 5`` vs ``10``) but
declare an :meth:`Backend.unavailable_reason` when numba is missing,
so ``auto`` degrades to the numpy tier without user action.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.backends.spec import Capabilities, ScenarioSpec

#: The CLI-facing backend families.
FAMILIES = ("event", "vector", "jit")

#: The batch-kernel families (everything but the event engine); the
#: dispatcher treats a forced kernel family the same way — capability
#: scan first, then dependency availability.
KERNEL_FAMILIES = ("vector", "jit")


@dataclass(frozen=True)
class BatchRequest:
    """One repetition batch, described once, executed by any backend.

    The single-object replacement for the old dual-optional
    ``run_batch(event_task=…, batch_task=…)`` signature: a request
    names the batch (``repetitions``, ``seed``), the two task forms a
    backend may consume, the declarative scenario the dispatcher
    matches capabilities against, and the streaming knobs.

    Attributes
    ----------
    repetitions / seed:
        Batch size and the master seed the canonical per-repetition
        seeds derive from (``SeedSequence(seed).generate_state``).
    event_task:
        Pure ``rep_seed -> result`` function; the event backend maps
        it over the derived seeds.
    batch_task:
        ``seeds -> RepetitionBatch`` kernel entry: receives the
        per-repetition seed slice of the chunk it must resolve (the
        dense call passes the full seed array).  Kernels derive
        nothing from the batch size, so any contiguous slice
        reproduces exactly the dense run's rows.
    spec:
        Declarative :class:`~repro.backends.spec.ScenarioSpec` for the
        dispatcher; ``None`` means "nothing declared".
    chunk_reps:
        Streaming chunk size for the vector path; ``None`` defers to
        the ambient :func:`repro.runtime.executor.chunked_reps` scope
        (and the ``REPRO_CHUNK_REPS`` environment variable), and a
        value at or above ``repetitions`` runs dense.  Chunking never
        changes results (same seeds, row-wise fold), so it stays out
        of cache keys — an execution detail, like ``--jobs``.
    reducer:
        Zero-argument factory of a
        :class:`repro.core.batch.ChunkReducer`; each chunk's batch is
        folded into it and ``finalize()`` becomes the run's result.
        ``None`` folds with the batch class's own ``concat``
        (bit-identical to dense, but dense-sized).
    legacy_scalar_seed:
        Set by the deprecated-kwarg shim only: marks a ``batch_task``
        that still expects the *scalar* batch seed and derives the
        per-repetition seeds itself.  Such kernels cannot be chunked;
        they always run dense.
    """

    repetitions: int
    seed: int
    event_task: Optional[Callable[[int], Any]] = None
    batch_task: Optional[Callable[..., Any]] = None
    spec: Optional[ScenarioSpec] = None
    chunk_reps: Optional[int] = None
    reducer: Optional[Callable[[], Any]] = None
    legacy_scalar_seed: bool = False

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {self.repetitions}")
        if self.chunk_reps is not None and self.chunk_reps < 1:
            raise ValueError(
                f"chunk_reps must be >= 1, got {self.chunk_reps}")

    def with_chunk_reps(self, chunk_reps: Optional[int]) -> "BatchRequest":
        """A copy of this request with another chunk size."""
        return replace(self, chunk_reps=chunk_reps)

    def resolved_chunk_reps(self) -> Optional[int]:
        """The effective chunk size (explicit, else the ambient scope).

        ``None`` means dense.  A chunk size covering the whole batch
        is normalised to dense — one chunk *is* the dense run.
        """
        chunk = self.chunk_reps
        if chunk is None:
            # Imported lazily: repro.runtime sits above this layer.
            from repro.runtime.executor import active_chunk_reps
            chunk = active_chunk_reps()
        if chunk is None or chunk >= self.repetitions:
            return None
        return chunk


class Backend(abc.ABC):
    """One way of executing a repetition batch."""

    #: CLI-facing family name (``event`` or ``vector``).
    name: str = "event"
    #: Human label of the concrete kernel (``--explain-backend``, meta).
    kernel: str = "event engine"
    #: Dispatch preference; ``auto`` picks the smallest eligible rank.
    speed_rank: int = 100

    @abc.abstractmethod
    def capabilities(self) -> Capabilities:
        """What scenarios this backend can execute."""

    def mismatches(self, spec: ScenarioSpec):
        """Structured reasons ``spec`` does not fit (empty = eligible)."""
        return self.capabilities().mismatches(spec)

    def unavailable_reason(self) -> Optional[str]:
        """Why this backend cannot run *here* (``None`` = it can).

        Capability mismatches are about the scenario; this is about the
        environment — a missing optional dependency.  ``auto`` skips
        unavailable backends (recording the reason as degradation
        metadata), a forced family raises
        :class:`repro.backends.dispatch.BackendUnavailableError`.
        """
        return None

    def run_batch(self, request: "BatchRequest", *legacy_args,
                  **legacy_kwargs):
        """Execute one :class:`BatchRequest` on this backend.

        The event backend maps ``request.event_task`` over the derived
        per-repetition seeds; kernels hand ``request.batch_task`` the
        per-repetition seed slices of each chunk (the whole array when
        dense) and fold the chunk batches through the request's
        reducer.  Each backend consumes exactly one of the two tasks.

        The old ``run_batch(repetitions, seed, event_task=…,
        batch_task=…)`` calling convention still works for one release
        through :func:`coerce_request` (with a ``DeprecationWarning``);
        legacy ``batch_task`` callables keep receiving the scalar
        batch seed and always run dense.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}/{self.kernel}>"


class EventBackend(Backend):
    """The per-repetition event engine — supports everything."""

    name = "event"
    kernel = "event engine"
    speed_rank = 100

    def capabilities(self) -> Capabilities:
        """Every scenario axis, every value."""
        return Capabilities()

    def run_batch(self, request, *legacy_args, **legacy_kwargs):
        """Map the event task over the derived per-repetition seeds.

        Fans out across the ambient worker pool
        (:func:`repro.runtime.executor.parallel_jobs`); results come
        back in repetition order, bit-identical for any job count.
        The event engine is already per-repetition, so ``chunk_reps``
        is a no-op here — peak memory never exceeds one repetition
        plus the collected results.
        """
        request = coerce_request(request, *legacy_args, **legacy_kwargs)
        if request.event_task is None:
            raise ValueError("the event backend needs an event_task")
        # Imported lazily: repro.runtime sits above this layer.
        from repro.runtime.executor import derive_seeds, map_ordered
        return map_ordered(request.event_task,
                           derive_seeds(request.seed, request.repetitions))


def coerce_request(request, *legacy_args, **legacy_kwargs) -> BatchRequest:
    """Normalise a ``run_batch`` call to a :class:`BatchRequest`.

    The deprecated-kwarg shim: a caller still using the old
    ``run_batch(repetitions, seed, event_task=…, batch_task=…)``
    convention gets a ``DeprecationWarning`` and a request whose
    ``batch_task`` is marked :attr:`BatchRequest.legacy_scalar_seed`
    — legacy kernels expect the scalar batch seed and derive the
    per-repetition seeds themselves, so they run dense, never chunked.
    """
    if isinstance(request, BatchRequest):
        if legacy_args or legacy_kwargs:
            raise TypeError(
                "pass either a BatchRequest or the deprecated "
                "(repetitions, seed, event_task=, batch_task=) "
                "arguments, not both")
        return request
    warnings.warn(
        "run_batch(repetitions, seed, event_task=..., batch_task=...) "
        "is deprecated; pass a repro.backends.BatchRequest instead",
        DeprecationWarning, stacklevel=3)
    repetitions = int(request)
    if not legacy_args:
        raise TypeError("the deprecated calling convention needs "
                        "(repetitions, seed, ...)")
    seed = int(legacy_args[0])
    extras = list(legacy_args[1:])
    event_task = extras.pop(0) if extras \
        else legacy_kwargs.pop("event_task", None)
    batch_task = extras.pop(0) if extras \
        else legacy_kwargs.pop("batch_task", None)
    if extras or legacy_kwargs:
        raise TypeError(f"unexpected run_batch arguments: "
                        f"{extras or legacy_kwargs}")
    return BatchRequest(repetitions=repetitions, seed=seed,
                        event_task=event_task, batch_task=batch_task,
                        legacy_scalar_seed=batch_task is not None)


class _VectorBackend(Backend):
    """Shared chunk-capable ``run_batch`` of the numpy batch kernels."""

    name = "vector"
    speed_rank = 10

    def run_batch(self, request, *legacy_args, **legacy_kwargs):
        """Resolve the batch with the kernel, chunked when requested.

        Dense (the default): one ``batch_task(seeds)`` call with the
        full canonical per-repetition seed array.  Chunked
        (``chunk_reps`` on the request, or the ambient
        :func:`repro.runtime.executor.chunked_reps` scope): the seed
        array is sliced into contiguous chunks, each resolved by its
        own ``batch_task(seeds[lo:hi])`` call and folded into the
        request's reducer (default: the batch class's own ``concat``).
        The slices are taken from the *dense* derivation, so chunk
        boundaries never change which random universe a repetition
        index maps to — dense and chunked rows are bit-identical.

        Legacy scalar-seed kernels (the deprecated shim) always run
        dense: ``batch_task(seed)``.
        """
        request = coerce_request(request, *legacy_args, **legacy_kwargs)
        task = request.batch_task
        if task is None:
            raise ValueError("this batch has no vector kernel; "
                             "run it with backend='event'")
        if request.legacy_scalar_seed:
            return task(request.seed)
        # Imported lazily: repro.runtime sits above this layer.
        from repro.runtime.executor import derive_seeds
        seeds = derive_seeds(request.seed, request.repetitions)
        chunk = request.resolved_chunk_reps()
        if chunk is None and request.reducer is None:
            return task(seeds)
        bounds = _chunk_bounds(request.repetitions,
                               chunk or request.repetitions)
        reducer = request.reducer() if request.reducer is not None \
            else _ConcatFold()
        for lo, hi in bounds:
            reducer.update(task(seeds[lo:hi]), lo, hi)
        return reducer.finalize()


def _chunk_bounds(repetitions: int,
                  chunk_reps: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` chunk ranges (tail chunk may be short)."""
    return [(lo, min(lo + chunk_reps, repetitions))
            for lo in range(0, repetitions, chunk_reps)]


class _ConcatFold:
    """Duck-typed default reducer: fold chunks with ``concat``.

    Mirrors :class:`repro.core.batch.ConcatReducer` without importing
    it (``repro.core`` sits above this layer); the fold goes through
    the chunk class's own ``concat``, so any
    :class:`repro.core.batch.RepetitionBatch`-conformant object works.
    """

    def __init__(self) -> None:
        self._parts: List[Any] = []

    def update(self, batch: Any, lo: int, hi: int) -> None:
        """Keep one chunk."""
        self._parts.append(batch)

    def finalize(self) -> Any:
        """``concat`` the chunks (a single chunk passes through)."""
        if len(self._parts) == 1:
            return self._parts[0]
        return type(self._parts[0]).concat(self._parts)


class CallerKernelBackend(_VectorBackend):
    """Synthetic backend behind a forced ``vector`` with no spec.

    A caller forcing ``backend='vector'`` while declaring no
    :class:`~repro.backends.spec.ScenarioSpec` is trusted to know its
    ``batch_task`` is a real kernel.  Routing that trust through this
    backend (instead of bypassing the dispatcher, as the executor once
    did) keeps the invariant that *every* run flows through a
    :class:`repro.backends.dispatch.Resolution` — so result metadata
    always records a backend — and gives caller-supplied kernels the
    shared chunked execution path for free.  It never competes in
    ``auto`` scans: the dispatcher constructs its resolution
    explicitly and it is absent from the ``BACKENDS`` tuple.
    """

    kernel = "caller-supplied kernel"

    def capabilities(self) -> Capabilities:
        """Claims nothing — eligibility is asserted by the caller.

        Never consulted in practice (this backend is not scanned), but
        an empty claim keeps :meth:`mismatches` honest if it ever is.
        """
        return Capabilities(
            systems=frozenset(), workloads=frozenset(),
            cross_traffic=frozenset(), fifo_cross=frozenset(),
            rts_cts=False, retry_limit=False, queue_traces=False)


class ProbeTrainVectorBackend(_VectorBackend):
    """:mod:`repro.sim.probe_vector` — trains and steady CBR flows
    through contended DCF (FIFO cross-traffic may share the probe
    queue)."""

    kernel = "probe-train kernel"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """WLAN trains/steady flows; Poisson, CBR and on-off traffic
        (mixed across stations), RTS/CTS, retry limits, queue traces."""
        return Capabilities(
            systems=frozenset({"wlan"}),
            workloads=frozenset({"train", "steady-cbr"}),
            cross_traffic=frozenset(
                {"none", "poisson", "cbr", "onoff", "mixed"}),
            fifo_cross=frozenset({"none", "poisson", "cbr", "onoff"}),
            rts_cts=True, retry_limit=True, queue_traces=True)


class SaturatedVectorBackend(_VectorBackend):
    """:mod:`repro.sim.vector` — every station permanently backlogged
    (the Bianchi regime)."""

    kernel = "saturated-DCF kernel"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """Saturated WLAN batches (RTS/CTS and retry caps allowed)."""
        return Capabilities(
            systems=frozenset({"wlan"}),
            workloads=frozenset({"saturated"}),
            cross_traffic=frozenset({"none"}),
            fifo_cross=frozenset({"none"}),
            rts_cts=True, retry_limit=True, queue_traces=False)


class LindleyVectorBackend(_VectorBackend):
    """The batched Lindley recursion for wired FIFO hops.

    Replays the event path's exact sample paths, so any arrival model
    with a ``generate`` method is fine — the recursion only needs the
    merged (arrival, service) sequences.
    """

    kernel = "batched Lindley recursion"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """FIFO-hop trains with any replayable cross-traffic model."""
        return Capabilities(
            systems=frozenset({"fifo"}),
            workloads=frozenset({"train"}),
            rts_cts=False, retry_limit=False, queue_traces=False)


class PathVectorBackend(_VectorBackend):
    """Chained per-hop kernels for multihop paths.

    :meth:`repro.path.network.NetworkPath.carry_batch` runs the
    probe-train kernel on every WLAN hop and the batched Lindley
    recursion on every wired hop, feeding each hop's departure matrix
    to the next hop as its arrival process — the kernel analogue of
    the per-packet :meth:`repro.path.hops.PathHop.carry` chain.  Every
    hop must carry batch-sampleable cross-traffic (Poisson, CBR or
    on-off); the combined spec compiles the worst hop's traffic model,
    so one unsupported hop demotes the whole path to the event engine.
    """

    kernel = "multihop chain kernel"
    speed_rank = 10

    def capabilities(self) -> Capabilities:
        """Path trains over batch-sampleable hops (RTS/CTS and retry
        caps allowed).

        Both traffic axes accept ``mixed``: each hop resolves its own
        generators, so different hops may carry different (individually
        supported) models — including each hop's own FIFO flow.
        """
        return Capabilities(
            systems=frozenset({"path"}),
            workloads=frozenset({"train"}),
            cross_traffic=frozenset(
                {"none", "poisson", "cbr", "onoff", "mixed"}),
            fifo_cross=frozenset(
                {"none", "poisson", "cbr", "onoff", "mixed"}),
            rts_cts=True, retry_limit=True, queue_traces=False)


class _JitBackend(_VectorBackend):
    """Shared ``run_batch`` of the numba-accelerated kernel tier.

    A jit backend *is* its numpy counterpart with the hot core routed
    to the compiled twins in :mod:`repro.sim.jit` — same entry points,
    same seed discipline, same chunked execution; results are
    bit-identical (the compiled cores replicate the numpy arithmetic
    operation for operation).  The tier ranks ahead of the numpy
    kernels but declares itself unavailable without numba; kernels are
    warmed (compiled on tiny inputs) before the batch so compilation
    cost never lands inside a measured window.
    """

    name = "jit"
    speed_rank = 5

    def unavailable_reason(self) -> Optional[str]:
        """``"numba not installed"`` when the compiled tier cannot run."""
        # Imported lazily: keeps this layer import-light and lets tests
        # flip availability via sys.modules monkeypatching.
        from repro.sim import jit
        return jit.unavailable_reason()

    def run_batch(self, request, *legacy_args, **legacy_kwargs):
        """Run the numpy kernel's batch path on the jit tier."""
        from repro.sim import jit
        jit.warm_kernels()
        with jit.kernel_tier("jit"):
            return super().run_batch(request, *legacy_args,
                                     **legacy_kwargs)


class ProbeTrainJitBackend(_JitBackend, ProbeTrainVectorBackend):
    """The probe-train kernel with its event loop compiled."""

    kernel = "probe-train kernel (jit)"


class SaturatedJitBackend(_JitBackend, SaturatedVectorBackend):
    """The saturated-DCF kernel with its round loop compiled."""

    kernel = "saturated-DCF kernel (jit)"


class LindleyJitBackend(_JitBackend, LindleyVectorBackend):
    """The batched Lindley recursion with its solve compiled."""

    kernel = "batched Lindley recursion (jit)"
