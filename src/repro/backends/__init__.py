"""Capability-based backend dispatch.

The subsystem that decides *which execution engine runs a repetition
batch*: scenarios are described declaratively
(:class:`~repro.backends.spec.ScenarioSpec`), backends advertise what
they support (:class:`~repro.backends.base.Backend` /
:class:`~repro.backends.spec.Capabilities`), and the dispatcher
(:mod:`repro.backends.dispatch`) matches the two — ``auto`` picks the
fastest eligible kernel and records any fallback reason instead of
swallowing it.

Layering: this package sits between the simulation kernels and the
runtime.  It imports nothing from :mod:`repro.runtime`,
:mod:`repro.testbed` or :mod:`repro.analysis`; those layers call *into*
it (the event backend reaches the executor through a lazy import).
"""

from repro.backends.base import (
    Backend,
    BatchRequest,
    CallerKernelBackend,
    EventBackend,
    FAMILIES,
    KERNEL_FAMILIES,
    LindleyJitBackend,
    LindleyVectorBackend,
    PathVectorBackend,
    ProbeTrainJitBackend,
    ProbeTrainVectorBackend,
    SaturatedJitBackend,
    SaturatedVectorBackend,
    coerce_request,
)
from repro.backends.dispatch import (
    BACKENDS,
    BackendUnavailableError,
    CALLER_KERNEL,
    EVENT,
    REQUESTABLE,
    Resolution,
    eligible,
    explain,
    family_names,
    resolve,
    vector_mismatch_reason,
)
from repro.backends.spec import (
    Capabilities,
    CapabilityMismatch,
    EVENT_ONLY,
    ScenarioSpec,
)

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendUnavailableError",
    "BatchRequest",
    "CALLER_KERNEL",
    "CallerKernelBackend",
    "Capabilities",
    "CapabilityMismatch",
    "EVENT",
    "EVENT_ONLY",
    "EventBackend",
    "FAMILIES",
    "KERNEL_FAMILIES",
    "LindleyJitBackend",
    "LindleyVectorBackend",
    "PathVectorBackend",
    "ProbeTrainJitBackend",
    "ProbeTrainVectorBackend",
    "REQUESTABLE",
    "Resolution",
    "SaturatedJitBackend",
    "SaturatedVectorBackend",
    "ScenarioSpec",
    "coerce_request",
    "eligible",
    "explain",
    "family_names",
    "resolve",
    "vector_mismatch_reason",
]
