"""Declarative scenario descriptions for backend dispatch.

A :class:`ScenarioSpec` is the contract between an experiment (or a
:class:`repro.testbed.channel.Channel`) and the backend dispatcher: it
names every scenario property a kernel could be sensitive to — the
system under test, the probing workload, the cross-traffic model,
RTS/CTS, retry limits, queue-trace needs — without referencing any
concrete simulator object.  Backends advertise what they support as a
:class:`Capabilities` value over the same vocabulary, and the
dispatcher (:mod:`repro.backends.dispatch`) matches the two.

A failed match is never a bare string: :meth:`Capabilities.mismatches`
returns structured :class:`CapabilityMismatch` records naming the
capability, what the scenario requires and what the backend supports —
the dispatcher threads these into fallback reasons, error messages and
``--explain-backend`` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

#: Valid ``ScenarioSpec.system`` values.
SYSTEMS = ("wlan", "fifo", "path", "other")

#: Valid ``ScenarioSpec.workload`` values.  Packet pairs are trains of
#: two packets; ``steady-cbr`` is a CBR flow measured in steady state;
#: ``saturated`` is the Bianchi regime (every queue backlogged);
#: ``sequence`` shares one live system across trains.
WORKLOADS = ("train", "steady-cbr", "saturated", "sequence", "other")

#: Valid traffic-model values (``cross_traffic`` / ``fifo_cross``).
TRAFFIC_MODELS = ("none", "poisson", "cbr", "onoff", "mixed", "other")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything the dispatcher needs to know about one scenario.

    Attributes
    ----------
    system:
        What carries the probing traffic: a contended DCF BSS
        (``wlan``), a wired FIFO hop (``fifo``), a multi-hop path
        (``path``) or anything else (``other``).
    workload:
        The probing workload shape (see :data:`WORKLOADS`).
    cross_traffic:
        Traffic model of the contending stations.
    fifo_cross:
        Traffic model of cross-traffic sharing the probe sender's
        transmission queue (``none`` when there is none).
    rts_cts / retry_limit / queue_traces:
        Protocol and observability features the scenario needs.
    cross_detail / fifo_detail:
        Optional human sentence sharpening an unsupported traffic
        model (e.g. which station carries it); surfaced verbatim in
        mismatch messages.
    """

    system: str = "wlan"
    workload: str = "train"
    cross_traffic: str = "none"
    fifo_cross: str = "none"
    rts_cts: bool = False
    retry_limit: bool = False
    queue_traces: bool = False
    cross_detail: str = ""
    fifo_detail: str = ""

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; expected one of {SYSTEMS}")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {WORKLOADS}")
        for field_name in ("cross_traffic", "fifo_cross"):
            value = getattr(self, field_name)
            if value not in TRAFFIC_MODELS:
                raise ValueError(
                    f"unknown {field_name} {value!r}; "
                    f"expected one of {TRAFFIC_MODELS}")


#: The spec the dispatcher assumes when an experiment declares none:
#: nothing is known about the scenario, so only the event engine (which
#: supports everything) is eligible.
EVENT_ONLY = ScenarioSpec(system="other", workload="other",
                          cross_traffic="other")


@dataclass(frozen=True)
class CapabilityMismatch:
    """One reason a backend cannot run a scenario.

    ``str(mismatch)`` renders the human sentence (``detail``); the
    structured fields exist so tooling can group and test on them
    without parsing prose.
    """

    capability: str
    required: str
    supported: str
    detail: str

    def __str__(self) -> str:
        return self.detail


@dataclass(frozen=True)
class Capabilities:
    """What one backend supports, over the :class:`ScenarioSpec` axes.

    Set-valued axes name the accepted values; boolean axes state
    whether the feature is supported at all (the event engine supports
    everything, kernels typically nothing).
    """

    systems: FrozenSet[str] = frozenset(SYSTEMS)
    workloads: FrozenSet[str] = frozenset(WORKLOADS)
    cross_traffic: FrozenSet[str] = frozenset(TRAFFIC_MODELS)
    fifo_cross: FrozenSet[str] = frozenset(TRAFFIC_MODELS)
    rts_cts: bool = True
    retry_limit: bool = True
    queue_traces: bool = True

    def mismatches(self, spec: ScenarioSpec) -> List[CapabilityMismatch]:
        """Structured reasons ``spec`` does not fit; empty = eligible.

        Check order is stable (system, workload, queue traces, RTS,
        retry limit, cross-traffic, FIFO cross-traffic) so the *first*
        mismatch is deterministic — fallback reasons and legacy
        ``vector_unsupported_reason`` strings depend on it.
        """
        found: List[CapabilityMismatch] = []
        if spec.system not in self.systems:
            found.append(CapabilityMismatch(
                "system", spec.system, ", ".join(sorted(self.systems)),
                f"no batched kernel models the {spec.system!r} system"))
        if spec.workload not in self.workloads:
            found.append(CapabilityMismatch(
                "workload", spec.workload,
                ", ".join(sorted(self.workloads)),
                f"the {spec.workload!r} workload requires the event "
                "engine"))
        if spec.queue_traces and not self.queue_traces:
            found.append(CapabilityMismatch(
                "queue_traces", "true", "false",
                "queue traces require the event engine"))
        if spec.rts_cts and not self.rts_cts:
            found.append(CapabilityMismatch(
                "rts_cts", "true", "false",
                "RTS/CTS protection requires the event engine"))
        if spec.retry_limit and not self.retry_limit:
            found.append(CapabilityMismatch(
                "retry_limit", "true", "false",
                "a retry limit requires the event engine"))
        if spec.cross_traffic not in self.cross_traffic:
            detail = spec.cross_detail or (
                f"{spec.cross_traffic} cross-traffic has no batched "
                "sampler; run this scenario with backend='event'")
            found.append(CapabilityMismatch(
                "cross_traffic", spec.cross_traffic,
                ", ".join(sorted(self.cross_traffic)), detail))
        if spec.fifo_cross not in self.fifo_cross:
            detail = spec.fifo_detail or (
                f"{spec.fifo_cross} FIFO cross-traffic has no batched "
                "sampler; run this scenario with backend='event'")
            found.append(CapabilityMismatch(
                "fifo_cross", spec.fifo_cross,
                ", ".join(sorted(self.fifo_cross)), detail))
        return found
