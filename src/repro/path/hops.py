"""Path hops: wired FIFO links and DCF wireless links.

A hop consumes the probing packets' arrival instants (absolute path
time), merges them with its *local* cross-traffic (redrawn per
repetition — the usual one-hop-persistent cross-traffic assumption of
the multi-hop probing literature), and returns the departure instants
plus the hop's propagation delay.

Each hop type has two faces: the per-packet :meth:`PathHop.carry`
(event engine / exact FIFO replay) and the batched
:meth:`PathHop.carry_batch`, which forwards a whole ``(repetitions,
n)`` arrival matrix through the hop's vector kernel in one pass — the
building block :meth:`repro.path.network.NetworkPath.carry_batch`
chains into the multihop kernel.  :meth:`PathHop.scenario_fragment`
describes the hop to the backend dispatcher so eligibility is derived,
never assumed.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import ScenarioSpec
from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.queueing.fifo import FifoHop
from repro.queueing.lindley import lindley_batch
from repro.sim.probe_vector import (
    classify_cross_generator,
    classify_cross_stations,
    cross_spec_from_generator,
    fifo_size_mismatch_detail,
    simulate_probe_arrivals_batch,
)
from repro.traffic.packets import Packet


def _classify_generator(generator: Optional[object],
                        label: str) -> Tuple[str, str]:
    """``(traffic kind, detail)`` of one cross-traffic generator."""
    if generator is None:
        return "none", ""
    try:
        kind, _ = classify_cross_generator(generator)
    except ValueError as exc:
        return "other", f"{label}: {exc}"
    return kind, ""


class PathHop(abc.ABC):
    """One store-and-forward element of a network path."""

    #: Propagation delay added after the hop's transmission, seconds.
    prop_delay: float = 0.0

    @abc.abstractmethod
    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        """Forward ``arrivals`` (time-ordered) and return departures.

        The returned array aligns with ``arrivals`` (FIFO order is
        preserved by both hop types) and includes ``prop_delay``.
        """

    @abc.abstractmethod
    def nominal_capacity_bps(self, size_bytes: int) -> float:
        """The hop's capacity for ``size_bytes`` packets (planning aid)."""

    def carry_batch(self, times: np.ndarray, size_bytes: int,
                    rep_seeds: Sequence[int]) -> np.ndarray:
        """Forward a ``(repetitions, n)`` arrival matrix in one pass.

        Statistically equivalent to mapping :meth:`carry` over the
        repetitions (each repetition redraws this hop's cross-traffic
        from its own stream); hop types without a vector kernel raise
        ``ValueError``.
        """
        raise ValueError(
            f"{type(self).__name__} has no vector kernel; "
            "run with backend='event'")

    def scenario_fragment(self, size_bytes: int = 1500) -> ScenarioSpec:
        """This hop's contribution to the path's dispatch spec.

        The base class declares an unknown system, so paths containing
        custom hop types only ever run the event engine.
        """
        return ScenarioSpec(system="other", workload="train",
                            cross_traffic="other",
                            cross_detail=f"{type(self).__name__} has no "
                                         "batched hop kernel; run with "
                                         "backend='event'")


class WiredHop(PathHop):
    """A constant-rate FIFO link with optional local cross-traffic."""

    def __init__(self, capacity_bps: float,
                 cross_generator: Optional[object] = None,
                 prop_delay: float = 0.0,
                 warmup: float = 0.1) -> None:
        if prop_delay < 0 or warmup < 0:
            raise ValueError("prop_delay and warmup must be non-negative")
        self.hop = FifoHop(capacity_bps)
        self.cross_generator = cross_generator
        self.prop_delay = float(prop_delay)
        self.warmup = float(warmup)

    def nominal_capacity_bps(self, size_bytes: int) -> float:
        return self.hop.capacity_bps

    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        if len(arrivals) == 0:
            return np.array([])
        first = arrivals[0][0]
        last = arrivals[-1][0]
        merged: List[Tuple[float, Packet]] = list(arrivals)
        if self.cross_generator is not None:
            window_start = max(0.0, first - self.warmup)
            # Enough horizon for the probe span plus queue drain.
            horizon = (last - window_start
                       + self.warmup + 0.1)
            merged.extend(self.cross_generator.generate(
                horizon, rng, start=window_start))
        result = self.hop.run(merged)
        by_uid = {r.packet.uid: r.departure for r in result.records}
        return np.array([by_uid[p.uid] + self.prop_delay
                         for _, p in arrivals])

    def scenario_fragment(self, size_bytes: int = 1500) -> ScenarioSpec:
        """A wired FIFO hop.

        The batched replay calls the generator's own ``generate`` per
        repetition, so any model with one would work — but the
        path-level spec can only carry one traffic vocabulary, so the
        fragment classifies conservatively (an unclassifiable
        generator demotes the path to the event engine).
        """
        kind, detail = _classify_generator(self.cross_generator,
                                           "wired-hop cross-traffic")
        return ScenarioSpec(system="fifo", workload="train",
                            cross_traffic=kind, cross_detail=detail)

    def carry_batch(self, times: np.ndarray, size_bytes: int,
                    rep_seeds: Sequence[int]) -> np.ndarray:
        """All repetitions through one batched Lindley recursion.

        Each repetition replays :meth:`carry`'s exact mechanics (same
        warmup window, same generator call, same stable probe-first
        merge), so for *equal* rng streams the departures agree with
        the event path to float rounding — the per-packet Python loop
        of :class:`repro.queueing.fifo.FifoHop` becomes one
        ``(repetitions, n)`` cumulative-max pass.  Inside a chained
        path the per-hop seed derivations differ between backends, so
        the end-to-end contract is distributional (like the WLAN
        hops'), pinned by the multihop KS tests.
        """
        times = np.asarray(times, dtype=float)
        reps, n = times.shape
        probe_services = np.full(
            n, (size_bytes + self.hop.overhead_bytes) * 8
            / self.hop.capacity_bps)
        rep_times: List[np.ndarray] = []
        rep_services: List[np.ndarray] = []
        rep_pos: List[np.ndarray] = []
        for r, rep_seed in enumerate(rep_seeds):
            rng = np.random.default_rng(int(rep_seed))
            merged_t = times[r]
            merged_s = probe_services
            if self.cross_generator is not None:
                window_start = max(0.0, float(times[r, 0]) - self.warmup)
                horizon = (float(times[r, -1]) - window_start
                           + self.warmup + 0.1)
                schedule = self.cross_generator.generate(
                    horizon, rng, start=window_start)
                cross_bytes = np.fromiter(
                    (p.size_bytes for _, p in schedule), dtype=np.int64,
                    count=len(schedule))
                merged_t = np.concatenate([times[r], schedule.times])
                merged_s = np.concatenate(
                    [probe_services,
                     (cross_bytes + self.hop.overhead_bytes) * 8
                     / self.hop.capacity_bps])
            # Stable sort keeps probe packets ahead of simultaneous
            # cross arrivals, matching FifoHop.run's tie rule.
            order = np.argsort(merged_t, kind="stable")
            inverse = np.empty(len(order), dtype=np.int64)
            inverse[order] = np.arange(len(order))
            rep_times.append(merged_t[order])
            rep_services.append(merged_s[order])
            rep_pos.append(inverse[:n])
        width = max(len(t) for t in rep_times)
        arrivals = np.full((reps, width), np.inf)
        services = np.zeros((reps, width))
        probe_pos = np.zeros((reps, n), dtype=np.int64)
        for r in range(reps):
            arrivals[r, :len(rep_times[r])] = rep_times[r]
            services[r, :len(rep_services[r])] = rep_services[r]
            probe_pos[r] = rep_pos[r]
        _, departures = lindley_batch(arrivals, services)
        return (np.take_along_axis(departures, probe_pos, axis=1)
                + self.prop_delay)


class WlanHop(PathHop):
    """A DCF wireless link with contending (and FIFO) cross-traffic.

    The probing packets enter the wireless sender's transmission queue;
    ``cross_stations`` contend from other stations and ``fifo_cross``
    shares the sender's queue — exactly the paper's figure-3 model, now
    embedded in a longer path.
    """

    def __init__(self, cross_stations: Sequence[Tuple[str, object]] = (),
                 fifo_cross: Optional[object] = None,
                 phy: Optional[PhyParams] = None,
                 prop_delay: float = 0.0,
                 warmup: float = 0.2,
                 drain_rate_floor: float = 1e6,
                 retry_limit: Optional[int] = None,
                 rts_threshold: Optional[int] = None) -> None:
        if prop_delay < 0 or warmup < 0:
            raise ValueError("prop_delay and warmup must be non-negative")
        if drain_rate_floor <= 0:
            raise ValueError("drain_rate_floor must be positive")
        self.cross_stations = list(cross_stations)
        self.fifo_cross = fifo_cross
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.prop_delay = float(prop_delay)
        self.warmup = float(warmup)
        self.drain_rate_floor = drain_rate_floor
        self.retry_limit = retry_limit
        self.rts_threshold = rts_threshold
        self._scenario = WlanScenario(self.phy, retry_limit=retry_limit,
                                      rts_threshold=rts_threshold)

    def nominal_capacity_bps(self, size_bytes: int) -> float:
        from repro.mac.frames import AirtimeModel
        return AirtimeModel(self.phy).link_capacity(size_bytes)

    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        if len(arrivals) == 0:
            return np.array([])
        first = arrivals[0][0]
        last = arrivals[-1][0]
        # Shift the hop's local clock so cross-traffic can warm up
        # before the first probe packet arrives.
        offset = max(0.0, first - self.warmup)
        local_arrivals = [(t - offset, p) for t, p in arrivals]
        total_bytes = sum(p.size_bytes for _, p in arrivals)
        drain = total_bytes * 8 / self.drain_rate_floor
        horizon = (last - offset) + drain + 0.1
        specs = [StationSpec("probe", generator=self.fifo_cross,
                             arrivals=local_arrivals)]
        for name, generator in self.cross_stations:
            specs.append(StationSpec(name, generator=generator))
        result = self._scenario.run(
            specs, horizon=horizon, seed=int(rng.integers(0, 2 ** 31)))
        records = result.station("probe").records
        by_uid = {r.packet.uid: r for r in records}
        departures = []
        for _, packet in arrivals:
            record = by_uid[packet.uid]
            if not record.completed:
                raise RuntimeError("probe packet lost on wireless hop")
            departures.append(record.departure + offset + self.prop_delay)
        return np.array(departures)

    def scenario_fragment(self, size_bytes: int = 1500) -> ScenarioSpec:
        """Compile this hop's configuration, like the WLAN channel's
        :meth:`repro.testbed.channel.SimulatedWlanChannel.scenario_spec`
        (``size_bytes`` plays the probe train's role for the FIFO
        packet-size check)."""
        cross_kind, cross_detail = classify_cross_stations(
            self.cross_stations)
        fifo_kind, fifo_detail = _classify_generator(
            self.fifo_cross, "FIFO cross-traffic")
        if fifo_kind != "none" and fifo_kind != "other":
            fifo_size = getattr(self.fifo_cross, "size_bytes", size_bytes)
            if int(fifo_size) != int(size_bytes):
                fifo_kind = "other"
                fifo_detail = fifo_size_mismatch_detail(size_bytes,
                                                        fifo_size)
        return ScenarioSpec(
            system="wlan",
            workload="train",
            cross_traffic=cross_kind,
            fifo_cross=fifo_kind,
            rts_cts=self.rts_threshold is not None,
            retry_limit=self.retry_limit is not None,
            cross_detail=cross_detail,
            fifo_detail=fifo_detail,
        )

    def carry_batch(self, times: np.ndarray, size_bytes: int,
                    rep_seeds: Sequence[int]) -> np.ndarray:
        """All repetitions through one probe-train kernel pass.

        Mirrors :meth:`carry` per repetition: the hop's local clock is
        shifted so cross-traffic warms up before the first probe
        arrival, the arrival matrix rides the probe station's queue,
        and cross stations replay their batched sample paths.
        Statistically equivalent to the event hop (pinned by the
        multihop KS tests); departures include ``prop_delay``.
        """
        times = np.asarray(times, dtype=float)
        reps, n = times.shape
        offset = np.maximum(0.0, times[:, 0] - self.warmup)
        local = times - offset[:, None]
        drain = n * size_bytes * 8 / self.drain_rate_floor
        horizon = float(np.max(local[:, -1])) + drain + 0.1
        cross = [cross_spec_from_generator(generator)
                 for _, generator in self.cross_stations]
        fifo = (cross_spec_from_generator(self.fifo_cross)
                if self.fifo_cross is not None else None)
        batch = simulate_probe_arrivals_batch(
            local, size_bytes=size_bytes, seeds=np.asarray(rep_seeds),
            cross=cross, fifo_cross=fifo, horizon=horizon, phy=self.phy,
            rts_threshold=self.rts_threshold,
            retry_limit=self.retry_limit)
        return batch.recv_times + offset[:, None] + self.prop_delay
