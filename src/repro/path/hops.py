"""Path hops: wired FIFO links and DCF wireless links.

A hop consumes the probing packets' arrival instants (absolute path
time), merges them with its *local* cross-traffic (redrawn per
repetition — the usual one-hop-persistent cross-traffic assumption of
the multi-hop probing literature), and returns the departure instants
plus the hop's propagation delay.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.queueing.fifo import FifoHop
from repro.traffic.packets import Packet


class PathHop(abc.ABC):
    """One store-and-forward element of a network path."""

    #: Propagation delay added after the hop's transmission, seconds.
    prop_delay: float = 0.0

    @abc.abstractmethod
    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        """Forward ``arrivals`` (time-ordered) and return departures.

        The returned array aligns with ``arrivals`` (FIFO order is
        preserved by both hop types) and includes ``prop_delay``.
        """

    @abc.abstractmethod
    def nominal_capacity_bps(self, size_bytes: int) -> float:
        """The hop's capacity for ``size_bytes`` packets (planning aid)."""


class WiredHop(PathHop):
    """A constant-rate FIFO link with optional local cross-traffic."""

    def __init__(self, capacity_bps: float,
                 cross_generator: Optional[object] = None,
                 prop_delay: float = 0.0,
                 warmup: float = 0.1) -> None:
        if prop_delay < 0 or warmup < 0:
            raise ValueError("prop_delay and warmup must be non-negative")
        self.hop = FifoHop(capacity_bps)
        self.cross_generator = cross_generator
        self.prop_delay = float(prop_delay)
        self.warmup = float(warmup)

    def nominal_capacity_bps(self, size_bytes: int) -> float:
        return self.hop.capacity_bps

    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        if len(arrivals) == 0:
            return np.array([])
        first = arrivals[0][0]
        last = arrivals[-1][0]
        merged: List[Tuple[float, Packet]] = list(arrivals)
        if self.cross_generator is not None:
            window_start = max(0.0, first - self.warmup)
            # Enough horizon for the probe span plus queue drain.
            horizon = (last - window_start
                       + self.warmup + 0.1)
            merged.extend(self.cross_generator.generate(
                horizon, rng, start=window_start))
        result = self.hop.run(merged)
        by_uid = {r.packet.uid: r.departure for r in result.records}
        return np.array([by_uid[p.uid] + self.prop_delay
                         for _, p in arrivals])


class WlanHop(PathHop):
    """A DCF wireless link with contending (and FIFO) cross-traffic.

    The probing packets enter the wireless sender's transmission queue;
    ``cross_stations`` contend from other stations and ``fifo_cross``
    shares the sender's queue — exactly the paper's figure-3 model, now
    embedded in a longer path.
    """

    def __init__(self, cross_stations: Sequence[Tuple[str, object]] = (),
                 fifo_cross: Optional[object] = None,
                 phy: Optional[PhyParams] = None,
                 prop_delay: float = 0.0,
                 warmup: float = 0.2,
                 drain_rate_floor: float = 1e6,
                 retry_limit: Optional[int] = None,
                 rts_threshold: Optional[int] = None) -> None:
        if prop_delay < 0 or warmup < 0:
            raise ValueError("prop_delay and warmup must be non-negative")
        if drain_rate_floor <= 0:
            raise ValueError("drain_rate_floor must be positive")
        self.cross_stations = list(cross_stations)
        self.fifo_cross = fifo_cross
        self.phy = phy if phy is not None else PhyParams.dot11b()
        self.prop_delay = float(prop_delay)
        self.warmup = float(warmup)
        self.drain_rate_floor = drain_rate_floor
        self._scenario = WlanScenario(self.phy, retry_limit=retry_limit,
                                      rts_threshold=rts_threshold)

    def nominal_capacity_bps(self, size_bytes: int) -> float:
        from repro.mac.frames import AirtimeModel
        return AirtimeModel(self.phy).link_capacity(size_bytes)

    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        if len(arrivals) == 0:
            return np.array([])
        first = arrivals[0][0]
        last = arrivals[-1][0]
        # Shift the hop's local clock so cross-traffic can warm up
        # before the first probe packet arrives.
        offset = max(0.0, first - self.warmup)
        local_arrivals = [(t - offset, p) for t, p in arrivals]
        total_bytes = sum(p.size_bytes for _, p in arrivals)
        drain = total_bytes * 8 / self.drain_rate_floor
        horizon = (last - offset) + drain + 0.1
        specs = [StationSpec("probe", generator=self.fifo_cross,
                             arrivals=local_arrivals)]
        for name, generator in self.cross_stations:
            specs.append(StationSpec(name, generator=generator))
        result = self._scenario.run(
            specs, horizon=horizon, seed=int(rng.integers(0, 2 ** 31)))
        records = result.station("probe").records
        by_uid = {r.packet.uid: r for r in records}
        departures = []
        for _, packet in arrivals:
            record = by_uid[packet.uid]
            if not record.completed:
                raise RuntimeError("probe packet lost on wireless hop")
            departures.append(record.departure + offset + self.prop_delay)
        return np.array(departures)
