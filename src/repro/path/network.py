"""Network paths and the path channel adapter."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.path.hops import PathHop
from repro.testbed.channel import Channel, RawTrainResult
from repro.traffic.packets import Packet
from repro.traffic.probe import ProbeTrain


class NetworkPath:
    """An ordered chain of hops traversed by probing packets.

    Each hop sees the previous hop's departures as its arrivals; cross
    traffic is local to each hop (redrawn per repetition from
    independent substreams).
    """

    def __init__(self, hops: Sequence[PathHop]) -> None:
        if len(hops) == 0:
            raise ValueError("a path needs at least one hop")
        self.hops = list(hops)

    @property
    def n_hops(self) -> int:
        """Number of hops on the path."""
        return len(self.hops)

    def min_capacity_bps(self, size_bytes: int) -> float:
        """The narrowest hop's nominal capacity (the narrow link)."""
        return min(hop.nominal_capacity_bps(size_bytes)
                   for hop in self.hops)

    def base_delay(self) -> float:
        """Sum of propagation delays (zero-load, zero-size limit)."""
        return sum(hop.prop_delay for hop in self.hops)

    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        """Push packets through every hop; return final departures."""
        times = np.array([t for t, _ in arrivals], dtype=float)
        packets = [p for _, p in arrivals]
        for hop in self.hops:
            hop_rng = np.random.default_rng(rng.integers(0, 2 ** 31))
            times = hop.carry(list(zip(times, packets)), hop_rng)
        return times


class SimulatedPathChannel(Channel):
    """Adapts a :class:`NetworkPath` to the prober's channel interface.

    Every tool in :mod:`repro.core` — rate scans, packet pairs, TOPP
    regressions, chirps, MSER correction — runs end-to-end over the
    path through this adapter.
    """

    def __init__(self, path: NetworkPath, start: float = 0.5) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self.path = path
        self.start = float(start)

    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        rng = np.random.default_rng(seed)
        arrivals: List[Tuple[float, Packet]] = train.packets(
            start=self.start)
        departures = self.path.carry(arrivals, rng)
        return RawTrainResult(
            send_times=np.array([t for t, _ in arrivals]),
            recv_times=np.asarray(departures, dtype=float),
            size_bytes=train.size_bytes,
            access_delays=None,  # not observable end-to-end
        )
