"""Network paths and the path channel adapter."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import ScenarioSpec
from repro.path.hops import PathHop
from repro.sim.probe_vector import ProbeBatchResult
from repro.testbed.channel import Channel, RawTrainResult
from repro.traffic.packets import Packet
from repro.traffic.probe import ProbeTrain


def _combine_traffic(kinds: Sequence[str]) -> str:
    """Fold per-hop traffic kinds into one path-level vocabulary value."""
    distinct = set(kinds) - {"none"}
    if not distinct:
        return "none"
    if "other" in distinct:
        return "other"
    if len(distinct) == 1:
        return distinct.pop()
    return "mixed"


class NetworkPath:
    """An ordered chain of hops traversed by probing packets.

    Each hop sees the previous hop's departures as its arrivals; cross
    traffic is local to each hop (redrawn per repetition from
    independent substreams).
    """

    def __init__(self, hops: Sequence[PathHop]) -> None:
        if len(hops) == 0:
            raise ValueError("a path needs at least one hop")
        self.hops = list(hops)

    @property
    def n_hops(self) -> int:
        """Number of hops on the path."""
        return len(self.hops)

    def min_capacity_bps(self, size_bytes: int) -> float:
        """The narrowest hop's nominal capacity (the narrow link)."""
        return min(hop.nominal_capacity_bps(size_bytes)
                   for hop in self.hops)

    def base_delay(self) -> float:
        """Sum of propagation delays (zero-load, zero-size limit)."""
        return sum(hop.prop_delay for hop in self.hops)

    def carry(self, arrivals: Sequence[Tuple[float, Packet]],
              rng: np.random.Generator) -> np.ndarray:
        """Push packets through every hop; return final departures."""
        times = np.array([t for t, _ in arrivals], dtype=float)
        packets = [p for _, p in arrivals]
        for hop in self.hops:
            hop_rng = np.random.default_rng(rng.integers(0, 2 ** 31))
            times = hop.carry(list(zip(times, packets)), hop_rng)
        return times

    def carry_batch(self, times: np.ndarray, size_bytes: int,
                    rep_seeds: Sequence[int]) -> np.ndarray:
        """Chain every hop's vector kernel over a repetition batch.

        The kernel analogue of :meth:`carry`: each hop resolves the
        whole ``(repetitions, n)`` matrix in one batched pass
        (:meth:`repro.path.hops.PathHop.carry_batch`) and its
        departure matrix becomes the next hop's arrival process.
        Per-repetition, per-hop streams are derived from ``rep_seeds``
        so hop ``h`` redraws independent cross-traffic in every
        repetition, like the event chain's per-hop generators.
        """
        times = np.asarray(times, dtype=float)
        for h, hop in enumerate(self.hops):
            hop_seeds = [
                int(np.random.SeedSequence([int(s), h]).generate_state(1)[0])
                for s in rep_seeds]
            times = hop.carry_batch(times, size_bytes, hop_seeds)
        return times

    def scenario_spec(self, size_bytes: int = 1500) -> ScenarioSpec:
        """Fold the hops' fragments into one path-level spec.

        The per-axis combination is conservative: a single hop the
        kernels cannot model (unknown hop type, unsupported traffic)
        demotes the whole path — the dispatcher then explains which
        hop with the fragment's own detail sentence.
        """
        fragments = [hop.scenario_fragment(size_bytes)
                     for hop in self.hops]
        cross_kinds, fifo_kinds = [], []
        cross_detail = fifo_detail = ""
        rts = retry = False
        for k, fragment in enumerate(fragments):
            if fragment.system not in ("fifo", "wlan"):
                cross_kinds.append("other")
                cross_detail = cross_detail or (
                    fragment.cross_detail
                    or f"hop {k} ({type(self.hops[k]).__name__}) has no "
                       "batched hop kernel; run with backend='event'")
                continue
            cross_kinds.append(fragment.cross_traffic)
            if fragment.cross_traffic == "other" and not cross_detail:
                cross_detail = fragment.cross_detail
            fifo_kinds.append(fragment.fifo_cross)
            if fragment.fifo_cross == "other" and not fifo_detail:
                fifo_detail = fragment.fifo_detail
            rts = rts or fragment.rts_cts
            retry = retry or fragment.retry_limit
        return ScenarioSpec(
            system="path",
            workload="train",
            cross_traffic=_combine_traffic(cross_kinds),
            fifo_cross=_combine_traffic(fifo_kinds),
            rts_cts=rts,
            retry_limit=retry,
            cross_detail=cross_detail,
            fifo_detail=fifo_detail,
        )


class SimulatedPathChannel(Channel):
    """Adapts a :class:`NetworkPath` to the prober's channel interface.

    Every tool in :mod:`repro.core` — rate scans, packet pairs, TOPP
    regressions, chirps, MSER correction — runs end-to-end over the
    path through this adapter.
    """

    def __init__(self, path: NetworkPath, start: float = 0.5) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self.path = path
        self.start = float(start)

    def scenario_spec(self,
                      train: Optional[ProbeTrain] = None) -> ScenarioSpec:
        """The path's combined spec (see
        :meth:`repro.path.network.NetworkPath.scenario_spec`)."""
        size = train.size_bytes if train is not None else 1500
        return self.path.scenario_spec(size_bytes=size)

    def send_train(self, train: ProbeTrain, seed: int) -> RawTrainResult:
        rng = np.random.default_rng(seed)
        arrivals: List[Tuple[float, Packet]] = train.packets(
            start=self.start)
        departures = self.path.carry(arrivals, rng)
        return RawTrainResult(
            send_times=np.array([t for t, _ in arrivals]),
            recv_times=np.asarray(departures, dtype=float),
            size_bytes=train.size_bytes,
            access_delays=None,  # not observable end-to-end
        )

    def send_trains_batch(self, train: ProbeTrain, repetitions: int,
                          seed: int = 0) -> ProbeBatchResult:
        """One chained-kernel pass over the whole repetition batch.

        The multihop vector backend: every hop resolves the batch at
        once and feeds the next (statistically equivalent to mapping
        :meth:`send_train` over the derived per-repetition seeds; the
        per-repetition seed mapping is the executor's).  Access delays
        are not observable end-to-end, so the result carries NaNs
        there, like the event path's ``access_delays=None``.
        """
        if repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {repetitions}")
        # An ineligible path raises BackendUnavailableError (a
        # ValueError) with the structured capability mismatches.
        self.resolve_backend("vector", train=train)
        # Same derivation scheme as repro.runtime.executor.derive_seeds
        # (not imported: repro.runtime sits above the testbed layer).
        rep_seeds = np.random.SeedSequence(seed).generate_state(repetitions)
        send = np.broadcast_to(train.arrival_times(self.start),
                               (repetitions, train.n)).copy()
        recv = self.path.carry_batch(send, train.size_bytes,
                                     [int(s) for s in rep_seeds])
        return ProbeBatchResult(
            send_times=send,
            recv_times=recv,
            access_delays=np.full((repetitions, train.n), np.nan),
            size_bytes=train.size_bytes,
        )
