"""Multi-hop network paths.

The paper takes a strictly network-layer view precisely so its results
apply to end-to-end paths whose last mile is a CSMA/CA link (the
broadband-access scenario of its reference [3]).  This package builds
such paths: a chain of hops — wired FIFO links and/or DCF wireless
links, each with its own local cross-traffic and propagation delay —
that probing trains traverse hop by hop.

:class:`repro.path.network.SimulatedPathChannel` adapts a path to the
:class:`repro.testbed.channel.Channel` interface, so every tool in
:mod:`repro.core` (rate scans, packet pairs, TOPP, chirps, MSER
correction) runs end-to-end unchanged.
"""

from repro.path.hops import PathHop, WiredHop, WlanHop
from repro.path.network import NetworkPath, SimulatedPathChannel

__all__ = [
    "NetworkPath",
    "PathHop",
    "SimulatedPathChannel",
    "WiredHop",
    "WlanHop",
]
