"""Event-driven simulation engine.

The engine keeps a binary heap of :class:`Event` objects ordered by
``(time, priority, sequence)``.  Events can be cancelled after being
scheduled (lazy deletion: cancelled events stay in the heap and are
skipped when popped), which the DCF medium uses to invalidate contention
rounds when a new arrival changes the set of contending stations.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> sim.schedule(1.0, lambda: fired.append(sim.now))
Event(t=1.0, ...)
>>> sim.run()
>>> fired
[1.0]
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples include scheduling an event in the past or running a
    simulator whose clock would move backwards (which would indicate a
    corrupted heap).
    """


class EventCancelled(Exception):
    """Raised when interacting with an event that has been cancelled."""


class Event:
    """A scheduled callback.

    Instances are created through :meth:`Simulator.schedule`; user code
    normally only keeps a reference in order to be able to
    :meth:`cancel` the event later.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None]) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it.

        Cancelling an event that already fired raises
        :class:`EventCancelled` because it almost always indicates a
        stale reference bug in the caller.
        """
        if self.fired:
            raise EventCancelled("cannot cancel an event that already fired")
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """Whether the event is still going to fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else (
            "fired" if self.fired else "pending")
        return f"Event(t={self.time!r}, priority={self.priority}, {state})"


class Simulator:
    """A discrete-event simulator with a cancellable event heap.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (excludes cancelled events)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return sum(1 for event in self._heap if event.pending)

    def schedule(self, time: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run at absolute ``time``.

        ``priority`` breaks ties between simultaneous events: lower
        values fire first.  Scheduling in the past (beyond a small
        floating-point tolerance) raises :class:`SimulationError`.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}")
        event = Event(max(time, self._now), priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired and ``False`` if the heap was
        empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        if event.time < self._now - 1e-12:
            raise SimulationError(
                f"clock would move backwards: {event.time} < {self._now}")
        self._now = max(self._now, event.time)
        event.fired = True
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly
        ``until`` at the end of the run, even if the last event fired
        earlier, so that rate computations over a fixed horizon are
        well defined.

        This is the engine's hot loop (every simulated packet passes
        through it several times), so instead of delegating to
        :meth:`peek_time` + :meth:`step` it pops inline: the heap and
        ``heapq.heappop`` are bound to locals and lazily-deleted
        events are skipped on the raw ``cancelled`` flag — one
        attribute read per stale entry, no ``pending`` property call,
        no redundant head re-scan per event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                if max_events is not None and fired >= max_events:
                    break
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                event_time = event.time
                if until is not None and event_time > until:
                    break
                pop(heap)
                if event_time < self._now - 1e-12:
                    raise SimulationError(
                        f"clock would move backwards: "
                        f"{event_time} < {self._now}")
                if event_time > self._now:
                    self._now = event_time
                event.fired = True
                self._events_processed += 1
                event.callback()
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def clear(self) -> None:
        """Drop every pending event (the clock is preserved)."""
        self._heap.clear()
