"""Discrete-event simulation substrate.

This package provides the event engine on top of which the IEEE 802.11
DCF model (:mod:`repro.mac`) and the trace-driven queueing models
(:mod:`repro.queueing`) are built.  It plays the role that NS2 played in
the paper's validation setup.

The engine is deliberately small and explicit: a binary-heap scheduler
with cancellable events and a monotonically non-decreasing clock.

Alongside the engine live the numpy-vectorized batch backends, which
resolve whole repetition batches per array operation instead of one
event per Python call: :mod:`repro.sim.vector` for saturated
contention scenarios and :mod:`repro.sim.probe_vector` for complete
probe-train sessions (periodic train + Poisson cross-traffic + the
probe queue's FIFO drain); both share the airtime and slot-timing
constants of :mod:`repro.mac` and are held statistically equivalent
to the event engine by KS tests.  :mod:`repro.sim.delay_model` adds
batched access-delay *sampling* from the Bianchi/backoff
distributions for model-driven studies.  None of these are
re-exported here: they consume :mod:`repro.mac`, so importing them
from this package ``__init__`` would cycle the sim -> mac -> sim
layering — import the modules directly.
"""

from repro.sim.engine import Event, EventCancelled, Simulator, SimulationError

__all__ = ["Event", "EventCancelled", "Simulator", "SimulationError"]
