"""Discrete-event simulation substrate.

This package provides the event engine on top of which the IEEE 802.11
DCF model (:mod:`repro.mac`) and the trace-driven queueing models
(:mod:`repro.queueing`) are built.  It plays the role that NS2 played in
the paper's validation setup.

The engine is deliberately small and explicit: a binary-heap scheduler
with cancellable events and a monotonically non-decreasing clock.
"""

from repro.sim.engine import Event, EventCancelled, Simulator, SimulationError

__all__ = ["Event", "EventCancelled", "Simulator", "SimulationError"]
