"""Discrete-event simulation substrate.

This package provides the event engine on top of which the IEEE 802.11
DCF model (:mod:`repro.mac`) and the trace-driven queueing models
(:mod:`repro.queueing`) are built.  It plays the role that NS2 played in
the paper's validation setup.

The engine is deliberately small and explicit: a binary-heap scheduler
with cancellable events and a monotonically non-decreasing clock.

For saturated contention scenarios there is a second, numpy-vectorized
backend (:mod:`repro.sim.vector`) that resolves whole repetition
batches per array operation instead of one event per Python call; both
backends share the slot-timing constants of :mod:`repro.mac.timing`
and are held statistically equivalent by KS tests.  It is *not*
re-exported here: vector.py consumes :mod:`repro.mac.timing`, so
importing it from this package ``__init__`` would cycle the
sim -> mac -> sim layering — import :mod:`repro.sim.vector` directly.
"""

from repro.sim.engine import Event, EventCancelled, Simulator, SimulationError

__all__ = ["Event", "EventCancelled", "Simulator", "SimulationError"]
