"""Vectorized batched probe-train kernel.

:mod:`repro.sim.vector` batches the *saturated* corner of the DCF —
every station permanently backlogged.  The paper's headline results
(rate-response curves, transient access delays, short-train bias) live
in a richer regime: a probing station injects a periodic train into a
channel contended by Poisson cross-traffic, packets queue in the
probe's FIFO transmission buffer while DCF access delays outpace the
input gap, and the whole session is repeated over many independent
repetitions.  This module resolves those repetitions **in one
vectorized pass**.

The state of a batch is a handful of ``(repetitions, stations)``
arrays (station 0 is the probe sender, the rest are cross-traffic
contenders) plus the pre-drawn arrival sample paths.  One loop
iteration advances every repetition by exactly one *event*, which is
either

1. an **arrival to an idle station** — the packet is promoted to
   head-of-line; if the medium has been idle for at least DIFS it
   transmits immediately (the 802.11 rule behind the paper's whole
   transient), otherwise a backoff counter is drawn and the countdown
   starts at ``max(arrival, idle_start + DIFS)``; or
2. a **transmission** — the minimum countdown-expiry over the
   contenders fixes the instant; stations expiring within the shared
   tolerance win together; a lone winner is a success (departure =
   end of its DATA frame, the next queued packet is promoted at that
   instant), several winners are a collision (CW doubling, redraw);
   losers consume exactly the elapsed idle slots — the
   frozen-countdown rule — and every countdown restarts one DIFS
   after the busy period ends.

Time arithmetic comes from the same :class:`repro.mac.frames`
airtime model and :mod:`repro.mac.timing` constants the event backend
uses, so the two backends agree on every duration and only differ in
how they schedule the arithmetic.  The equivalence contract is
distributional, not bit-level: ``tests/test_probe_vector_backend.py``
holds KS distances between the backends' access-delay and output-gap
distributions under the repo's ``alpha = 0.01`` thresholds.

Beyond the Poisson-contended train, the same event loop carries the
paper's remaining scenarios: CBR cross-traffic
(:class:`CbrCrossSpec`, batched deterministic sample paths with an
optional phase-jitter stream), bursty on-off cross-traffic
(:class:`OnOffCrossSpec`, exponential ON/OFF periods around CBR
bursts), RTS/CTS protection (``rts_threshold``; the event medium's
exact success/collision airtime split), retry-capped transmissions
(``retry_limit``; the event medium's retry counter — a packet
colliding past the limit is abandoned at the end of the busy period
and the next one promoted there at backoff stage 0), queue traces
(``track_queues``; per-station arrival/departure paths that
reproduce the event engine's backlog step function by counting), a
steady-state mode with per-flow throughput windows
(:func:`simulate_steady_state_batch`), and an explicit-arrivals entry
(:func:`simulate_probe_arrivals_batch`) that lets the multihop
chaining layer feed one hop's departure matrix to the next.

Randomness is reproducible and batch-size independent: per-repetition
seeds follow the exact scheme of
:func:`repro.runtime.executor.derive_seeds`, each repetition owns a
private generator, and because every iteration advances each active
repetition by exactly one event, repetition ``r`` consumes the same
draws whether the batch holds 4 repetitions or 400.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.mac.timing import TIME_EPS, cw_table
from repro.sim import jit as _jit
from repro.sim.delay_model import cbr_arrival_paths, onoff_arrival_paths
from repro.sim.vector import _UniformBlocks


@dataclass(frozen=True)
class PoissonCrossSpec:
    """One Poisson cross-traffic contender of a probe-train batch.

    The kernel only needs the packet arrival rate and the (fixed)
    frame size; :meth:`from_generator` extracts both from a
    :class:`repro.traffic.generators.PoissonGenerator`.
    """

    packets_per_second: float
    size_bytes: int

    def __post_init__(self) -> None:
        if self.packets_per_second < 0:
            raise ValueError(
                f"rate must be non-negative, got {self.packets_per_second}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")

    @classmethod
    def from_generator(cls, generator: object) -> "PoissonCrossSpec":
        """Build a spec from a Poisson generator object.

        Anything exposing ``packets_per_second`` and ``size_bytes``
        qualifies; CBR traffic has its own :class:`CbrCrossSpec`,
        bursty on-off traffic its :class:`OnOffCrossSpec`, and
        unrecognised models must run on the event backend.
        """
        pps = getattr(generator, "packets_per_second", None)
        size = getattr(generator, "size_bytes", None)
        if pps is None or size is None:
            raise ValueError(
                f"{type(generator).__name__} is not Poisson-like "
                "(needs packets_per_second and size_bytes); "
                "run this scenario with backend='event'")
        return cls(packets_per_second=float(pps), size_bytes=int(size))

    def sample_paths(self, gens: Sequence[np.random.Generator],
                     horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """Per-repetition arrival paths over ``[0, horizon)``."""
        return _poisson_arrival_paths(gens, self.packets_per_second,
                                      horizon)


@dataclass(frozen=True)
class CbrCrossSpec:
    """One CBR cross-traffic contender of a probe-train batch.

    Deterministic inter-arrivals at the packet rate, optionally spread
    by a per-packet phase jitter of up to ``jitter`` seconds — the
    batched mirror of :class:`repro.traffic.generators.CBRGenerator`.
    """

    packets_per_second: float
    size_bytes: int
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.packets_per_second < 0:
            raise ValueError(
                f"rate must be non-negative, got {self.packets_per_second}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")
        if self.jitter < 0:
            raise ValueError(
                f"jitter must be non-negative, got {self.jitter}")

    @classmethod
    def from_generator(cls, generator: object) -> "CbrCrossSpec":
        """Build a spec from a CBR generator object.

        Anything exposing ``rate_bps``, ``size_bytes``, ``interval``
        and ``jitter`` (and no Poisson ``packets_per_second``)
        qualifies.
        """
        rate = getattr(generator, "rate_bps", None)
        size = getattr(generator, "size_bytes", None)
        jitter = getattr(generator, "jitter", None)
        if (rate is None or size is None or jitter is None
                or not hasattr(generator, "interval")
                or hasattr(generator, "packets_per_second")):
            raise ValueError(
                f"{type(generator).__name__} is not CBR-like "
                "(needs rate_bps, size_bytes, interval and jitter); "
                "run this scenario with backend='event'")
        return cls(packets_per_second=float(rate) / (int(size) * 8),
                   size_bytes=int(size), jitter=float(jitter))

    def sample_paths(self, gens: Sequence[np.random.Generator],
                     horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """Per-repetition arrival paths over ``[0, horizon)``."""
        return cbr_arrival_paths(gens, self.packets_per_second, horizon,
                                 jitter=self.jitter)


@dataclass(frozen=True)
class OnOffCrossSpec:
    """One exponential on-off cross-traffic contender of a batch.

    CBR emission at the peak packet rate during exponential ON
    periods, silence during exponential OFF periods, initial state
    drawn from the stationary duty cycle — the batched mirror of
    :class:`repro.traffic.generators.OnOffGenerator`.
    """

    peak_packets_per_second: float
    size_bytes: int
    mean_on: float
    mean_off: float

    def __post_init__(self) -> None:
        if self.peak_packets_per_second <= 0:
            raise ValueError(
                f"peak rate must be positive, "
                f"got {self.peak_packets_per_second}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")
        if self.mean_on <= 0 or self.mean_off < 0:
            raise ValueError("mean_on must be > 0 and mean_off >= 0")

    @classmethod
    def from_generator(cls, generator: object) -> "OnOffCrossSpec":
        """Build a spec from an on-off generator object.

        Anything exposing ``peak_rate_bps``, ``mean_on``, ``mean_off``
        and ``size_bytes`` qualifies.
        """
        peak = getattr(generator, "peak_rate_bps", None)
        size = getattr(generator, "size_bytes", None)
        mean_on = getattr(generator, "mean_on", None)
        mean_off = getattr(generator, "mean_off", None)
        if peak is None or size is None or mean_on is None \
                or mean_off is None:
            raise ValueError(
                f"{type(generator).__name__} is not on-off-like "
                "(needs peak_rate_bps, mean_on, mean_off and "
                "size_bytes); run this scenario with backend='event'")
        return cls(peak_packets_per_second=float(peak) / (int(size) * 8),
                   size_bytes=int(size), mean_on=float(mean_on),
                   mean_off=float(mean_off))

    def sample_paths(self, gens: Sequence[np.random.Generator],
                     horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """Per-repetition arrival paths over ``[0, horizon)``."""
        return onoff_arrival_paths(gens, self.peak_packets_per_second,
                                   self.mean_on, self.mean_off, horizon)


def cross_spec_from_generator(generator: object):
    """Classify a traffic generator into its batched sampler spec.

    Returns a :class:`PoissonCrossSpec`, :class:`CbrCrossSpec` or
    :class:`OnOffCrossSpec`; raises ``ValueError`` for traffic models
    without a batched sampler (trace replay and anything
    unrecognised) — those scenarios must run on the event backend.
    """
    for spec_cls in (PoissonCrossSpec, CbrCrossSpec, OnOffCrossSpec):
        try:
            return spec_cls.from_generator(generator)
        except ValueError:
            continue
    raise ValueError(
        f"{type(generator).__name__} has no batched arrival sampler "
        "(Poisson, CBR and on-off are supported); run this scenario "
        "with backend='event'")


_SPEC_KINDS = ((CbrCrossSpec, "cbr"), (OnOffCrossSpec, "onoff"),
               (PoissonCrossSpec, "poisson"))


def classify_cross_generator(generator: object):
    """``(traffic kind, spec)`` of a batch-sampleable generator.

    The single owner of the kind vocabulary the channel and path
    layers compile into :class:`repro.backends.ScenarioSpec` traffic
    axes; raises like :func:`cross_spec_from_generator` when no
    batched sampler exists.
    """
    spec = cross_spec_from_generator(generator)
    for spec_cls, kind in _SPEC_KINDS:
        if isinstance(spec, spec_cls):
            return kind, spec
    raise AssertionError(  # pragma: no cover - kinds mirror the specs
        f"unclassified spec {type(spec).__name__}")


def classify_cross_stations(stations: Sequence[Tuple[str, object]]):
    """Fold ``(name, generator)`` pairs into one traffic-axis value.

    The shared fold rule of the channel and path layers: ``none`` for
    an empty set, the single kind when every station agrees, ``mixed``
    otherwise, and ``other`` (with the offending station's detail
    sentence) as soon as one generator has no batched sampler.
    Returns ``(kind, detail)``.
    """
    folded = "none"
    for name, generator in stations:
        try:
            kind, _ = classify_cross_generator(generator)
        except ValueError as exc:
            return "other", f"cross station {name!r}: {exc}"
        folded = kind if folded in ("none", kind) else "mixed"
    return folded, ""


def fifo_size_mismatch_detail(probe_size: int, fifo_size: int) -> str:
    """The one sentence every layer uses for the FIFO size limit.

    The batched kernel merges FIFO cross-traffic into the probe
    station's queue under a single per-station frame size, so the two
    sizes must agree; this detail appears both in raised errors and in
    compiled :class:`repro.backends.ScenarioSpec` mismatches.
    """
    return ("the batched kernel requires FIFO cross-traffic packets of "
            f"the probe size ({probe_size} B), got {fifo_size} B; "
            "run with backend='event'")


def _pad_concat_rows(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Stack ``inf``-padded row blocks, re-padding to the widest.

    Each block's rows are valid up to some count and ``inf`` past it;
    the stacked array pads every row to the widest block, which is
    exactly the width a dense run over all rows would have produced —
    so chunked and dense traces are bit-identical.
    """
    width = max(block.shape[1] for block in blocks)
    rows = sum(block.shape[0] for block in blocks)
    out = np.full((rows, width), np.inf)
    lo = 0
    for block in blocks:
        out[lo:lo + block.shape[0], :block.shape[1]] = block
        lo += block.shape[0]
    return out


@dataclass
class QueueTraceBatch:
    """Arrival/departure sample paths of one station's queue, batched.

    The kernel computes both arrays anyway (arrivals are the pre-drawn
    sample paths, departures the success instants); keeping them turns
    the backlog into pure counting: at time ``t`` the station holds
    ``#{arrivals <= t} - #{departures <= t}`` packets (queued plus in
    service), exactly the right-continuous step function the event
    engine's :meth:`repro.mac.scenario.StationResult.queue_size_at`
    samples.  Rows are ``inf``-padded past each repetition's count.

    Conforms to :class:`repro.core.batch.RepetitionBatch` (one
    repetition per row) so chunked runs can fold traces row-wise.
    """

    arrivals: np.ndarray
    departures: np.ndarray

    @property
    def repetitions(self) -> int:
        """Number of repetitions (rows)."""
        return self.arrivals.shape[0]

    def per_rep(self) -> List["QueueTraceBatch"]:
        """The batch as single-repetition ``QueueTraceBatch`` objects."""
        return [QueueTraceBatch(arrivals=self.arrivals[r:r + 1],
                                departures=self.departures[r:r + 1])
                for r in range(self.repetitions)]

    @classmethod
    def concat(cls, parts: Sequence["QueueTraceBatch"]
               ) -> "QueueTraceBatch":
        """Fold row-compatible trace batches into one (row order kept)."""
        if not parts:
            raise ValueError("concat needs at least one part")
        return cls(
            arrivals=_pad_concat_rows([p.arrivals for p in parts]),
            departures=_pad_concat_rows([p.departures for p in parts]))

    def size_at(self, times: np.ndarray) -> np.ndarray:
        """Backlog sampled at ``times`` (``(repetitions, k)``)."""
        times = np.asarray(times, dtype=float)
        out = np.zeros(times.shape)
        for r in range(times.shape[0]):
            arrived = np.searchsorted(self.arrivals[r], times[r],
                                      side="right")
            departed = np.searchsorted(self.departures[r], times[r],
                                       side="right")
            out[r] = arrived - departed
        return out


def _concat_queue_traces(parts: Sequence[object]
                         ) -> Optional[List[QueueTraceBatch]]:
    """Station-wise fold of per-part queue-trace lists.

    ``None`` when no part carries traces; mixing traced and untraced
    parts (or different station counts) is a ``ValueError`` — such
    batches did not come from the same scenario.
    """
    traces = [part.queue_traces for part in parts]
    if all(trace is None for trace in traces):
        return None
    if any(trace is None for trace in traces):
        raise ValueError(
            "cannot concat batches with and without queue traces")
    stations = {len(trace) for trace in traces}
    if len(stations) != 1:
        raise ValueError(
            f"cannot concat batches with different cross-station "
            f"counts: {sorted(stations)}")
    return [QueueTraceBatch.concat([trace[c] for trace in traces])
            for c in range(stations.pop())]


@dataclass
class ProbeBatchResult:
    """Timestamps of a whole repetition batch of probe trains.

    The dense counterpart of ``repetitions`` individual
    :class:`repro.testbed.channel.RawTrainResult` objects: row ``r``
    holds repetition ``r``'s send instants ``a_i``, receive instants
    ``d_i`` (end of each probe DATA frame) and access delays ``mu_i``
    (head-of-line promotion to end of DATA).  ``queue_traces`` (only
    populated when queue tracking was requested) carries one
    :class:`QueueTraceBatch` per cross station, in declaration order —
    the batched counterpart of the event scenario's queue logs.

    Conforms to :class:`repro.core.batch.RepetitionBatch`: one
    repetition per row, ``per_rep``/``concat`` slice and fold row-wise
    (chunked execution concatenates these).
    """

    send_times: np.ndarray
    recv_times: np.ndarray
    access_delays: np.ndarray
    size_bytes: int
    queue_traces: Optional[List[QueueTraceBatch]] = None

    @property
    def repetitions(self) -> int:
        """Number of repetitions (rows)."""
        return self.send_times.shape[0]

    def per_rep(self) -> List["ProbeBatchResult"]:
        """The batch as single-repetition ``ProbeBatchResult`` objects."""
        return [ProbeBatchResult(
            send_times=self.send_times[r:r + 1],
            recv_times=self.recv_times[r:r + 1],
            access_delays=self.access_delays[r:r + 1],
            size_bytes=self.size_bytes,
            queue_traces=None if self.queue_traces is None else [
                QueueTraceBatch(arrivals=trace.arrivals[r:r + 1],
                                departures=trace.departures[r:r + 1])
                for trace in self.queue_traces],
        ) for r in range(self.repetitions)]

    @classmethod
    def concat(cls, parts: Sequence["ProbeBatchResult"]
               ) -> "ProbeBatchResult":
        """Fold row-compatible batches into one, preserving row order."""
        if not parts:
            raise ValueError("concat needs at least one part")
        if len({part.n for part in parts}) != 1:
            raise ValueError("cannot concat batches with different "
                             "train lengths")
        if len({part.size_bytes for part in parts}) != 1:
            raise ValueError("cannot concat batches with different "
                             "packet sizes")
        return cls(
            send_times=np.concatenate([p.send_times for p in parts]),
            recv_times=np.concatenate([p.recv_times for p in parts]),
            access_delays=np.concatenate(
                [p.access_delays for p in parts]),
            size_bytes=parts[0].size_bytes,
            queue_traces=_concat_queue_traces(parts),
        )

    @property
    def n(self) -> int:
        """Train length (columns)."""
        return self.send_times.shape[1]

    @property
    def output_gaps(self) -> np.ndarray:
        """Per-repetition train-level output gap (equation (16)).

        Same accessor shape as
        :attr:`repro.core.dispersion.TrainBatch.output_gaps`, so batch
        objects are interchangeable at estimator call sites.
        """
        d = self.recv_times
        return (d[:, -1] - d[:, 0]) / (self.n - 1)

    def delay_matrix(self) -> np.ndarray:
        """The ``(repetitions, packets)`` access-delay sample."""
        return self.access_delays


def _poisson_arrival_paths(gens: Sequence[np.random.Generator],
                           packets_per_second: float,
                           horizon: float) -> Tuple[np.ndarray, np.ndarray]:
    """Per-repetition Poisson arrival instants over ``[0, horizon)``.

    Returns ``(times, counts)`` where ``times`` is ``(reps, width)``
    padded with ``inf`` past each repetition's count.  Each repetition
    draws from its own generator (a fixed-size block plus a rare
    top-up), so its path is independent of the batch composition.
    """
    reps = len(gens)
    if packets_per_second <= 0 or horizon <= 0:
        return np.full((reps, 1), np.inf), np.zeros(reps, dtype=np.int64)
    mean = packets_per_second * horizon
    block = int(mean + 6.0 * math.sqrt(mean) + 16)
    rows: List[np.ndarray] = []
    counts = np.zeros(reps, dtype=np.int64)
    for r, gen in enumerate(gens):
        times = np.cumsum(gen.exponential(1.0 / packets_per_second,
                                          size=block))
        while times[-1] < horizon:  # pragma: no cover - ~6-sigma tail
            extra = gen.exponential(1.0 / packets_per_second, size=block)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        k = int(np.searchsorted(times, horizon, side="left"))
        rows.append(times[:k])
        counts[r] = k
    width = max(1, int(counts.max()))
    out = np.full((reps, width), np.inf)
    for r, row in enumerate(rows):
        out[r, :len(row)] = row
    return out, counts


def _merge_probe_queue(probe_times: np.ndarray, n_probe: int,
                       fifo_times: Optional[np.ndarray],
                       fifo_counts: Optional[np.ndarray]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge FIFO cross-traffic into the probe station's queue.

    Returns ``(arrivals, flow tags, counts)`` for station 0; tags are
    the probe packet index or ``-1`` for FIFO packets.  The stable
    sort keeps probe packets ahead of simultaneous FIFO arrivals,
    matching the event scheduler's insertion order.
    """
    reps = probe_times.shape[0]
    if fifo_times is None:
        probe_seq = np.broadcast_to(np.arange(n_probe),
                                    (reps, n_probe)).copy()
        return probe_times, probe_seq, np.full(reps, n_probe,
                                               dtype=np.int64)
    cat_t = np.concatenate([probe_times, fifo_times], axis=1)
    cat_q = np.concatenate(
        [np.broadcast_to(np.arange(n_probe), (reps, n_probe)),
         np.full(fifo_times.shape, -1, dtype=np.int64)], axis=1)
    order = np.argsort(cat_t, axis=1, kind="stable")
    probe_arr = np.take_along_axis(cat_t, order, axis=1)
    probe_seq = np.take_along_axis(cat_q, order, axis=1)
    return probe_arr, probe_seq, n_probe + fifo_counts


def simulate_probe_train_batch(
        n_probe: int,
        probe_gap: float,
        repetitions: int,
        *,
        size_bytes: int = 1500,
        cross: Sequence[object] = (),
        fifo_cross: Optional[object] = None,
        horizon: Optional[float] = None,
        phy: Optional[PhyParams] = None,
        warmup: float = 0.25,
        start_jitter: float = 0.01,
        seed: int = 0,
        seeds: Optional[np.ndarray] = None,
        immediate_access: bool = True,
        rts_threshold: Optional[int] = None,
        retry_limit: Optional[int] = None,
        track_queues: bool = False) -> ProbeBatchResult:
    """Simulate ``repetitions`` independent probe-train sessions at once.

    Each repetition mirrors one
    :meth:`repro.testbed.channel.SimulatedWlanChannel.send_train`
    call: cross-traffic warms the channel up for ``warmup`` seconds,
    the ``n_probe``-packet train (input gap ``probe_gap``) starts
    after an extra ``Uniform(0, start_jitter)`` delay, optional
    ``fifo_cross`` traffic shares the probe station's FIFO queue, and
    cross-traffic keeps flowing over ``[0, horizon)`` (default: the
    train window plus one second of drain headroom) while the probe
    queue drains through DCF contention.  ``cross`` and ``fifo_cross``
    take :class:`PoissonCrossSpec` / :class:`CbrCrossSpec` /
    :class:`OnOffCrossSpec` values; ``rts_threshold`` enables the
    RTS/CTS handshake, ``retry_limit`` caps per-packet transmission
    attempts (a probe packet lost at the limit raises, exactly like
    the event channel's lost-probe guard), and ``track_queues`` keeps
    per-cross-station queue traces
    (:attr:`ProbeBatchResult.queue_traces`).

    A repetition stops consuming events once its last probe packet has
    departed; the statistical contract with the event backend is
    enforced by the KS tests in ``tests/test_probe_vector_backend.py``.

    ``seeds`` overrides the internal per-repetition seed derivation
    with explicit values (one per repetition).  Chunked execution
    passes contiguous slices of the dense derivation here, which is
    what makes a chunk's rows bit-identical to the dense run's.
    """
    if n_probe < 2:
        raise ValueError(f"a train needs at least 2 packets, got {n_probe}")
    if probe_gap < 0:
        raise ValueError(f"gap must be non-negative, got {probe_gap}")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if warmup < 0 or start_jitter < 0:
        raise ValueError("warmup and start_jitter must be non-negative")

    cross = list(cross)
    if fifo_cross is not None and fifo_cross.size_bytes != size_bytes:
        raise ValueError(
            fifo_size_mismatch_detail(size_bytes, fifo_cross.size_bytes))
    train_span = (n_probe - 1) * probe_gap
    if horizon is None:
        horizon = warmup + start_jitter + train_span + 1.0

    reps = repetitions
    if seeds is None:
        # Same derivation scheme as repro.runtime.executor.derive_seeds
        # (not imported: repro.runtime sits above the simulation layer).
        seeds = np.random.SeedSequence(seed).generate_state(repetitions)
    elif len(seeds) != repetitions:
        raise ValueError(
            f"got {len(seeds)} seeds for {repetitions} repetitions")
    gens = [np.random.default_rng(int(s)) for s in seeds]

    # Per-repetition draw order mirrors the event channel: start
    # jitter first, then the traffic sample paths, then the backoff
    # stream — all from the repetition's private generator.
    if start_jitter > 0:
        jitter = np.array([gen.uniform(0, start_jitter) for gen in gens])
    else:
        jitter = np.zeros(reps)
    start = warmup + jitter
    probe_times = start[:, None] + np.arange(n_probe) * probe_gap

    cross_paths = [spec.sample_paths(gens, horizon) for spec in cross]
    if fifo_cross is not None:
        fifo_times, fifo_counts = fifo_cross.sample_paths(gens, horizon)
    else:
        fifo_times, fifo_counts = None, None
    probe_arr, probe_seq, probe_counts = _merge_probe_queue(
        probe_times, n_probe, fifo_times, fifo_counts)

    recv, delays, _, queues = _resolve_batch(
        probe_arr, probe_seq, probe_counts, cross_paths, n_probe,
        gens=gens, size_bytes=size_bytes,
        cross_sizes=[spec.size_bytes for spec in cross], phy=phy,
        immediate_access=immediate_access, rts_threshold=rts_threshold,
        retry_limit=retry_limit, track_queues=track_queues)

    if np.isnan(recv).any():
        raise RuntimeError("probe packets were lost")
    return ProbeBatchResult(
        send_times=probe_times,
        recv_times=recv,
        access_delays=delays,
        size_bytes=size_bytes,
        queue_traces=queues,
    )


def simulate_probe_arrivals_batch(
        probe_times: np.ndarray,
        *,
        size_bytes: int,
        seeds: np.ndarray,
        cross: Sequence[object] = (),
        fifo_cross: Optional[object] = None,
        horizon: Optional[float] = None,
        phy: Optional[PhyParams] = None,
        immediate_access: bool = True,
        rts_threshold: Optional[int] = None,
        retry_limit: Optional[int] = None) -> ProbeBatchResult:
    """Resolve a batch whose probe arrivals are explicit per-repetition.

    The multihop chaining entry point: ``probe_times`` is a
    ``(repetitions, n)`` matrix of arrival instants at *this* hop —
    typically the previous hop's departure matrix — and ``seeds`` the
    per-repetition streams (one uint32 each, the caller derives them
    per hop).  Everything else matches
    :func:`simulate_probe_train_batch`; there is no warmup or start
    jitter because the arrival process already encodes the probing
    schedule.
    """
    probe_times = np.asarray(probe_times, dtype=float)
    if probe_times.ndim != 2 or probe_times.shape[1] < 2:
        raise ValueError(
            f"probe_times must be (repetitions, n >= 2), got "
            f"{probe_times.shape}")
    if len(seeds) != probe_times.shape[0]:
        raise ValueError(
            f"need one seed per repetition, got {len(seeds)} for "
            f"{probe_times.shape[0]}")
    cross = list(cross)
    if fifo_cross is not None and fifo_cross.size_bytes != size_bytes:
        raise ValueError(
            fifo_size_mismatch_detail(size_bytes, fifo_cross.size_bytes))
    n_probe = probe_times.shape[1]
    if horizon is None:
        horizon = float(np.max(probe_times)) + 1.0

    seeds = np.asarray(seeds, dtype=np.uint64)
    gens = [np.random.default_rng(int(s)) for s in seeds]
    cross_paths = [spec.sample_paths(gens, horizon) for spec in cross]
    if fifo_cross is not None:
        fifo_times, fifo_counts = fifo_cross.sample_paths(gens, horizon)
    else:
        fifo_times, fifo_counts = None, None
    probe_arr, probe_seq, probe_counts = _merge_probe_queue(
        probe_times, n_probe, fifo_times, fifo_counts)

    recv, delays, _, _ = _resolve_batch(
        probe_arr, probe_seq, probe_counts, cross_paths, n_probe,
        gens=gens, size_bytes=size_bytes,
        cross_sizes=[spec.size_bytes for spec in cross], phy=phy,
        immediate_access=immediate_access, rts_threshold=rts_threshold,
        retry_limit=retry_limit)

    if np.isnan(recv).any():
        raise RuntimeError("probe packets were lost")
    return ProbeBatchResult(
        send_times=probe_times,
        recv_times=recv,
        access_delays=delays,
        size_bytes=size_bytes,
    )


def _resolve_batch(probe_arr: np.ndarray, probe_seq: np.ndarray,
                   probe_counts: np.ndarray,
                   cross_paths: Sequence[Tuple[np.ndarray, np.ndarray]],
                   n_probe: int, *,
                   gens: Sequence[np.random.Generator],
                   size_bytes: int,
                   cross_sizes: Sequence[int],
                   phy: Optional[PhyParams],
                   immediate_access: bool,
                   rts_threshold: Optional[int] = None,
                   retry_limit: Optional[int] = None,
                   stop_time: Optional[float] = None,
                   window: Optional[Tuple[float, float]] = None,
                   track_queues: bool = False
                   ) -> Tuple[np.ndarray, np.ndarray,
                              Optional[Tuple[np.ndarray, np.ndarray,
                                             np.ndarray]],
                              Optional[List[QueueTraceBatch]]]:
    """Advance every repetition event by event until it completes.

    The shared core of the probe-train and steady-state entry points:
    station 0 replays the (merged) probe-queue arrivals ``probe_arr``
    tagged by ``probe_seq``, the cross stations replay ``cross_paths``.
    Without ``stop_time`` a repetition retires events until its last
    probe packet departs (train mode).  With ``stop_time`` it stops at
    the first event past that instant instead — the kernel counterpart
    of the event engine's ``run(until=...)`` — and ``window=(t0, t1]``
    additionally accumulates the delivered network-layer bits per flow
    (probe / FIFO / per cross station) whose DATA frame ends inside
    the window.

    ``rts_threshold`` protects every frame of at least that many bytes
    with an RTS/CTS handshake, applying the exact arithmetic of
    :class:`repro.mac.medium.Medium`: a protected success pays the
    RTS+SIFS+CTS+SIFS preamble before its DATA frame, a collision
    occupies the medium only for the colliding contention frames (RTS
    when protected, DATA otherwise) plus the timeout.  ``retry_limit``
    applies the event medium's retry counter: a station whose packet
    has collided more than ``retry_limit`` times abandons it at the
    end of the busy period — its delay slot stays ``NaN`` — and
    promotes the next queued packet there, re-entering contention at
    backoff stage 0 with a fresh CW0 draw.
    ``track_queues`` keeps each cross station's departure instants, so
    the returned :class:`QueueTraceBatch` objects reproduce the event
    engine's backlog traces by pure counting.

    Returns ``(recv, delays, bits, queues)`` where ``bits`` is ``None``
    without a window and ``(probe_bits, fifo_bits, cross_bits)``
    otherwise, and ``queues`` is ``None`` unless ``track_queues``.
    """
    phy = phy if phy is not None else PhyParams.dot11b()
    airtime = AirtimeModel(phy)
    slot, sifs, difs = phy.slot_time, phy.sifs, phy.difs
    ack_air = airtime.ack_airtime()
    cw_by_stage = cw_table(phy)
    max_stage = phy.max_backoff_stage

    reps = probe_arr.shape[0]
    n_stations = 1 + len(cross_paths)
    sizes = [size_bytes] + list(cross_sizes)
    data_air = np.array([airtime.data_airtime(s) for s in sizes])
    # Per-station RTS protection, mirroring Medium._uses_rts: the
    # preamble precedes a protected DATA frame; during a collision a
    # protected station only occupies the medium with its RTS.
    if rts_threshold is not None:
        protected = np.array([s >= rts_threshold for s in sizes])
    else:
        protected = np.zeros(len(sizes), dtype=bool)
    preamble = np.where(protected, airtime.rts_preamble_duration(), 0.0)
    contention_air = np.where(protected, airtime.rts_airtime(), data_air)
    exchange_air = preamble + data_air

    width = max(probe_arr.shape[1],
                max((p.shape[1] for p, _ in cross_paths), default=1))
    arr = np.full((reps, n_stations, width), np.inf)
    n_arr = np.zeros((reps, n_stations), dtype=np.int64)
    arr[:, 0, :probe_arr.shape[1]] = probe_arr
    n_arr[:, 0] = probe_counts
    for c, (times, counts) in enumerate(cross_paths):
        arr[:, 1 + c, :times.shape[1]] = times
        n_arr[:, 1 + c] = counts

    if _jit.active_tier() == "jit":
        return _resolve_jit_batch(
            arr, n_arr, probe_seq, gens=gens, n_probe=n_probe,
            slot=slot, sifs=sifs, difs=difs, ack_air=ack_air,
            data_air=data_air, preamble=preamble,
            contention_air=contention_air, exchange_air=exchange_air,
            sizes=sizes, cw_by_stage=cw_by_stage, max_stage=max_stage,
            immediate_access=immediate_access, retry_limit=retry_limit,
            stop_time=stop_time, window=window,
            track_queues=track_queues, n_cross=len(cross_paths))

    # The backoff uniforms continue each repetition's private stream
    # where the jitter and sample-path draws left off — the event
    # engine's draw order (paths first, then contention randomness from
    # the same generator).  Restarting from the seeds instead would
    # replay the path draws as backoff uniforms and correlate bursty
    # cross-traffic periods with contention outcomes.
    uniforms = _UniformBlocks((), n_stations, gens=gens)

    if window is not None:
        w0, w1 = window
        probe_bits = np.zeros(reps)
        fifo_bits = np.zeros(reps)
        cross_bits = np.zeros((reps, len(cross_paths)))
        size_bits = np.array(sizes, dtype=float) * 8

    nxt = np.zeros((reps, n_stations), dtype=np.int64)
    hol = np.zeros((reps, n_stations), dtype=bool)
    hol_t = np.zeros((reps, n_stations))
    rem = np.zeros((reps, n_stations), dtype=np.int64)
    cstart = np.full((reps, n_stations), np.inf)
    stage = np.zeros((reps, n_stations), dtype=np.int64)
    attempts = np.zeros((reps, n_stations), dtype=np.int64)
    idle_start = np.full(reps, -np.inf)
    probe_left = np.full(reps, n_probe, dtype=np.int64)
    active = np.ones(reps, dtype=bool)

    recv = np.full((reps, n_probe), np.nan)
    delays = np.full((reps, n_probe), np.nan)
    # FIFO service keeps each station's departures in arrival order, so
    # indexing this by the served arrival index yields sorted rows.
    departures = np.full(arr.shape, np.inf) if track_queues else None

    # Every event retires an arrival, a success, or (boundedly often)
    # a collision; the guard is far above any real trajectory.
    max_events = 64 + 8 * int(n_arr.sum(axis=1).max())
    for _ in range(max_events):
        if not active.any():
            break
        u = uniforms.take()

        expiry = np.where(hol, cstart + rem * slot, np.inf)
        t_tx = expiry.min(axis=1)
        idx = np.minimum(np.maximum(nxt, 0), arr.shape[2] - 1)
        gathered = np.take_along_axis(arr, idx[:, :, None], axis=2)[:, :, 0]
        pending = ~hol & (nxt < n_arr)
        next_arr = np.where(pending, gathered, np.inf)
        t_arr = next_arr.min(axis=1)

        # Steady mode: the first event past the stop instant never
        # fires — the kernel counterpart of ``run(until=stop_time)``.
        if stop_time is not None:
            active = active & (np.minimum(t_arr, t_tx) <= stop_time)

        # Ties go to the arrival, like the event engine's priorities
        # (the admitted station then collides at the same instant).
        arr_event = active & np.isfinite(t_arr) & (t_arr <= t_tx)
        tx_event = active & ~arr_event & np.isfinite(t_tx)

        # -- arrival to an idle station --------------------------------
        if arr_event.any():
            adm = arr_event[:, None] & pending & (next_arr <= t_arr[:, None])
            hol[adm] = True
            a_rep, a_sta = np.nonzero(adm)
            a_time = next_arr[adm]
            hol_t[adm] = a_time
            idle_for = a_time - idle_start[a_rep]
            if immediate_access:
                imm = idle_for >= difs - TIME_EPS
            else:
                imm = np.zeros(len(a_rep), dtype=bool)
            rem[a_rep[imm], a_sta[imm]] = 0
            cstart[a_rep[imm], a_sta[imm]] = a_time[imm]
            reg_rep, reg_sta = a_rep[~imm], a_sta[~imm]
            cw = cw_by_stage[stage[reg_rep, reg_sta]]
            rem[reg_rep, reg_sta] = (u[reg_rep, reg_sta]
                                     * (cw + 1)).astype(np.int64)
            cstart[reg_rep, reg_sta] = np.maximum(
                a_time[~imm], idle_start[reg_rep] + difs)

        # -- transmission ----------------------------------------------
        if tx_event.any():
            safe_tx = np.where(np.isfinite(t_tx), t_tx, 0.0)
            win = tx_event[:, None] & hol \
                & (expiry <= t_tx[:, None] + TIME_EPS)
            n_win = win.sum(axis=1)
            # A lone winner occupies the medium with its full exchange
            # (RTS preamble + DATA when protected); colliders only with
            # their contention frames (RTS when protected) — then both
            # pay the SIFS + ACK/CTS timeout, like the event medium.
            frame_air = np.where((n_win == 1)[:, None],
                                 exchange_air[None, :],
                                 contention_air[None, :])
            busy_end = (safe_tx + np.where(win, frame_air, 0.0)
                        .max(axis=1) + sifs + ack_air)

            success = tx_event & (n_win == 1)
            solo = win & success[:, None]
            s_rep, s_sta = np.nonzero(solo)
            data_end = t_tx[s_rep] + preamble[s_sta] + data_air[s_sta]
            served = nxt[s_rep, s_sta]
            if track_queues:
                departures[s_rep, s_sta, served] = data_end

            probe_tx = s_sta == 0
            p_rep = s_rep[probe_tx]
            seq = probe_seq[p_rep, served[probe_tx]]
            p_end = data_end[probe_tx]
            is_probe_pkt = seq >= 0
            pr = p_rep[is_probe_pkt]
            recv[pr, seq[is_probe_pkt]] = p_end[is_probe_pkt]
            delays[pr, seq[is_probe_pkt]] = (p_end[is_probe_pkt]
                                             - hol_t[pr, 0])
            probe_left[pr] -= 1

            # Per-flow throughput accounting: a packet counts when its
            # DATA frame ends inside the measurement window.  At most
            # one success per repetition per iteration, so plain fancy
            # indexing accumulates safely.
            if window is not None:
                in_win = (data_end > w0) & (data_end <= w1)
                cwin = in_win & (s_sta > 0)
                cross_bits[s_rep[cwin], s_sta[cwin] - 1] += \
                    size_bits[s_sta[cwin]]
                p_in = in_win[probe_tx]
                probe_bits[p_rep[p_in & is_probe_pkt]] += size_bits[0]
                fifo_bits[p_rep[p_in & ~is_probe_pkt]] += size_bits[0]

            # Advance the winner's queue: the next packet (if it has
            # already arrived) is promoted when the DATA frame ends and
            # draws its backoff immediately (the medium is busy).
            nxt[s_rep, s_sta] += 1
            stage[s_rep, s_sta] = 0
            attempts[s_rep, s_sta] = 0
            nxt_time = arr[s_rep, s_sta, np.minimum(nxt[s_rep, s_sta],
                                                    arr.shape[2] - 1)]
            promoted = (nxt[s_rep, s_sta] < n_arr[s_rep, s_sta]) \
                & (nxt_time <= data_end + TIME_EPS)
            hol[s_rep, s_sta] = promoted
            hol_t[s_rep[promoted], s_sta[promoted]] = data_end[promoted]
            cw0 = cw_by_stage[0]
            rem[s_rep[promoted], s_sta[promoted]] = (
                u[s_rep[promoted], s_sta[promoted]]
                * (cw0 + 1)).astype(np.int64)

            collision = tx_event & (n_win >= 2)
            coll = win & collision[:, None]
            if retry_limit is not None:
                attempts[coll] += 1
                dropping = coll & (attempts > retry_limit)
                coll = coll & ~dropping
            stage[coll] = np.minimum(stage[coll] + 1, max_stage)
            c_rep, c_sta = np.nonzero(coll)
            cw = cw_by_stage[stage[c_rep, c_sta]]
            rem[c_rep, c_sta] = (u[c_rep, c_sta] * (cw + 1)).astype(np.int64)

            if retry_limit is not None and dropping.any():
                # Retry limit exhausted: the packet is abandoned at
                # the end of the busy period (its delay stays NaN) and
                # the next queued packet — if it has arrived — is
                # promoted there, at stage 0 with a fresh CW0 draw.
                d_rep, d_sta = np.nonzero(dropping)
                b_end = busy_end[d_rep]
                served = nxt[d_rep, d_sta]
                if track_queues:
                    departures[d_rep, d_sta, served] = b_end
                probe_drop = d_sta == 0
                seq_d = probe_seq[d_rep[probe_drop], served[probe_drop]]
                probe_left[d_rep[probe_drop][seq_d >= 0]] -= 1
                nxt[d_rep, d_sta] += 1
                stage[dropping] = 0
                attempts[dropping] = 0
                nxt_time = arr[d_rep, d_sta,
                               np.minimum(nxt[d_rep, d_sta],
                                          arr.shape[2] - 1)]
                promoted = (nxt[d_rep, d_sta] < n_arr[d_rep, d_sta]) \
                    & (nxt_time <= b_end + TIME_EPS)
                hol[d_rep, d_sta] = promoted
                hol_t[d_rep[promoted], d_sta[promoted]] = b_end[promoted]
                cw0 = cw_by_stage[0]
                rem[d_rep[promoted], d_sta[promoted]] = (
                    u[d_rep[promoted], d_sta[promoted]]
                    * (cw0 + 1)).astype(np.int64)

            # Frozen countdown: losers consumed exactly the idle slots
            # that elapsed before the winners' transmission started.
            lose = tx_event[:, None] & hol & ~win
            safe_cstart = np.where(lose, cstart, 0.0)
            elapsed = np.floor(
                (safe_tx[:, None] - safe_cstart) / slot
                + TIME_EPS).astype(np.int64)
            elapsed = np.maximum(0, np.minimum(elapsed, rem - 1))
            rem[lose] -= elapsed[lose]

            idle_start[tx_event] = busy_end[tx_event]
            counting = tx_event[:, None] & hol
            cstart[counting] = np.broadcast_to(
                (busy_end + difs)[:, None], counting.shape)[counting]

            if stop_time is None:
                active = active & (probe_left > 0)
    else:  # pragma: no cover - defensive
        raise RuntimeError(
            f"probe batch did not complete within {max_events} events")

    bits = ((probe_bits, fifo_bits, cross_bits)
            if window is not None else None)
    queues = None
    if track_queues:
        queues = [QueueTraceBatch(arrivals=arr[:, 1 + c, :],
                                  departures=departures[:, 1 + c, :])
                  for c in range(len(cross_paths))]
    return recv, delays, bits, queues


def _resolve_jit_batch(arr: np.ndarray, n_arr: np.ndarray,
                       probe_seq: np.ndarray, *,
                       gens: Sequence[np.random.Generator], n_probe: int,
                       slot: float, sifs: float, difs: float,
                       ack_air: float, data_air: np.ndarray,
                       preamble: np.ndarray, contention_air: np.ndarray,
                       exchange_air: np.ndarray, sizes: Sequence[int],
                       cw_by_stage: np.ndarray, max_stage: int,
                       immediate_access: bool, retry_limit: Optional[int],
                       stop_time: Optional[float],
                       window: Optional[Tuple[float, float]],
                       track_queues: bool, n_cross: int
                       ) -> Tuple[np.ndarray, np.ndarray,
                                  Optional[Tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]],
                                  Optional[List[QueueTraceBatch]]]:
    """Resolve the batch one repetition at a time on the jit tier.

    Repetition ``r``'s backoff uniforms continue its private generator
    where the sample-path draws left off, pre-drawn as one
    ``(rows, n_stations)`` buffer; ``Generator.random`` is
    prefix-consistent across call boundaries, so row ``k`` equals the
    block-buffered draw the numpy loop hands that repetition at event
    ``k`` — the compiled core's results are bit-identical.  When a
    trajectory outlives the buffer estimate, the generator state is
    rewound and the repetition replayed with a doubled buffer.
    """
    reps, n_stations, _ = arr.shape
    recv = np.full((reps, n_probe), np.nan)
    delays = np.full((reps, n_probe), np.nan)
    departures = np.full(arr.shape, np.inf) if track_queues else None
    # Per-repetition delivered bits, flows packed [probe, fifo, cross...]
    bits_rows = np.zeros((reps, n_stations + 1))
    size_bits = np.array(sizes, dtype=float) * 8
    has_window = window is not None
    w0, w1 = window if has_window else (0.0, 0.0)
    has_stop = stop_time is not None
    stop = float(stop_time) if has_stop else 0.0
    limit = -1 if retry_limit is None else int(retry_limit)
    cw = np.ascontiguousarray(cw_by_stage, dtype=np.int64)
    data_air = np.ascontiguousarray(data_air, dtype=float)
    preamble = np.ascontiguousarray(preamble, dtype=float)
    contention_air = np.ascontiguousarray(contention_air, dtype=float)
    exchange_air = np.ascontiguousarray(exchange_air, dtype=float)
    max_events = 64 + 8 * int(n_arr.sum(axis=1).max())
    dummy_dep = np.empty((1, 1))
    for r in range(reps):
        gen = gens[r]
        state = gen.bit_generator.state
        est = min(max_events, 64 + 8 * int(n_arr[r].sum()))
        seq_r = np.ascontiguousarray(probe_seq[r], dtype=np.int64)
        dep_r = departures[r] if track_queues else dummy_dep
        while True:
            buf = gen.random(est * n_stations).reshape(est, n_stations)
            status = _jit._probe_rep_core(
                arr[r], n_arr[r], seq_r, buf, slot, sifs, difs,
                ack_air, TIME_EPS, data_air, preamble, contention_air,
                exchange_air, size_bits, cw, max_stage,
                immediate_access, limit, has_stop, stop, has_window,
                w0, w1, track_queues, n_probe, max_events,
                recv[r], delays[r], bits_rows[r], dep_r)
            if status != _jit.NEED_DRAWS or est >= max_events:
                break
            recv[r].fill(np.nan)
            delays[r].fill(np.nan)
            bits_rows[r].fill(0.0)
            if track_queues:
                dep_r.fill(np.inf)
            gen.bit_generator.state = state
            est = min(max_events, est * 2)
        if status != _jit.OK:  # pragma: no cover - defensive
            raise RuntimeError(
                f"probe batch did not complete within {max_events} events")
    bits = None
    if has_window:
        bits = (bits_rows[:, 0].copy(), bits_rows[:, 1].copy(),
                bits_rows[:, 2:].copy())
    queues = None
    if track_queues:
        queues = [QueueTraceBatch(arrivals=arr[:, 1 + c, :],
                                  departures=departures[:, 1 + c, :])
                  for c in range(n_cross)]
    return recv, delays, bits, queues


@dataclass
class SteadyBatchResult:
    """Per-flow delivered bits of a steady-state repetition batch.

    The dense counterpart of repeating
    :func:`repro.analysis.steady_state.steady_state_throughputs` over
    independent repetitions: row ``r`` holds repetition ``r``'s
    network-layer bits delivered in the measurement window
    ``(warmup, duration]`` for the probe flow, the FIFO flow sharing
    the probe queue, and each contending cross station.

    Conforms to :class:`repro.core.batch.RepetitionBatch`: one
    repetition per row, ``per_rep``/``concat`` slice and fold row-wise
    (the streaming :class:`repro.core.batch.ThroughputReducer` builds
    on ``concat`` after stripping queue traces).
    """

    probe_bits: np.ndarray
    fifo_bits: np.ndarray
    cross_bits: np.ndarray
    warmup: float
    duration: float
    size_bytes: int
    queue_traces: Optional[List[QueueTraceBatch]] = None

    @property
    def repetitions(self) -> int:
        """Number of repetitions (rows)."""
        return self.probe_bits.shape[0]

    def per_rep(self) -> List["SteadyBatchResult"]:
        """The batch as single-repetition ``SteadyBatchResult`` objects."""
        return [SteadyBatchResult(
            probe_bits=self.probe_bits[r:r + 1],
            fifo_bits=self.fifo_bits[r:r + 1],
            cross_bits=self.cross_bits[r:r + 1],
            warmup=self.warmup, duration=self.duration,
            size_bytes=self.size_bytes,
            queue_traces=None if self.queue_traces is None else [
                QueueTraceBatch(arrivals=trace.arrivals[r:r + 1],
                                departures=trace.departures[r:r + 1])
                for trace in self.queue_traces],
        ) for r in range(self.repetitions)]

    @classmethod
    def concat(cls, parts: Sequence["SteadyBatchResult"]
               ) -> "SteadyBatchResult":
        """Fold row-compatible batches into one, preserving row order."""
        if not parts:
            raise ValueError("concat needs at least one part")
        if len({(part.warmup, part.duration, part.size_bytes)
                for part in parts}) != 1:
            raise ValueError("cannot concat batches with different "
                             "measurement windows or packet sizes")
        return cls(
            probe_bits=np.concatenate([p.probe_bits for p in parts]),
            fifo_bits=np.concatenate([p.fifo_bits for p in parts]),
            cross_bits=np.concatenate([p.cross_bits for p in parts]),
            warmup=parts[0].warmup, duration=parts[0].duration,
            size_bytes=parts[0].size_bytes,
            queue_traces=_concat_queue_traces(parts),
        )

    @property
    def window_s(self) -> float:
        """Length of the measurement window."""
        return self.duration - self.warmup

    def probe_throughput_bps(self) -> np.ndarray:
        """Per-repetition probe-flow throughput."""
        return self.probe_bits / self.window_s

    def fifo_throughput_bps(self) -> np.ndarray:
        """Per-repetition FIFO-flow throughput."""
        return self.fifo_bits / self.window_s

    def cross_throughput_bps(self) -> np.ndarray:
        """Per-repetition total contending-station throughput."""
        return self.cross_bits.sum(axis=1) / self.window_s


def simulate_steady_state_batch(
        probe_rate_bps: float,
        repetitions: int,
        *,
        size_bytes: int = 1500,
        cross: Sequence[object] = (),
        fifo_cross: Optional[object] = None,
        duration: float = 4.0,
        warmup: float = 0.5,
        phy: Optional[PhyParams] = None,
        seed: int = 0,
        seeds: Optional[np.ndarray] = None,
        immediate_access: bool = True,
        rts_threshold: Optional[int] = None,
        retry_limit: Optional[int] = None,
        track_queues: bool = False) -> SteadyBatchResult:
    """Batched steady-state throughput measurement (figures 1 and 4).

    Each repetition mirrors one
    :func:`repro.analysis.steady_state.steady_state_throughputs` call:
    the probe flow is CBR at ``probe_rate_bps`` from time zero
    (periodic arrivals, exactly the event path's
    :class:`repro.traffic.generators.CBRGenerator` schedule), optional
    ``fifo_cross`` traffic shares the probe station's queue, the
    ``cross`` stations contend with their own traffic
    (:class:`PoissonCrossSpec` or :class:`CbrCrossSpec` — the latter is
    what the Bianchi-calibration ablation saturates the channel with),
    and the simulation stops at ``duration`` — throughputs are read
    off the bits delivered in ``(warmup, duration]``.

    The contract with the event backend is distributional, like the
    train kernel's: the per-repetition throughput samples of every
    flow match under the repo's KS thresholds.

    ``seeds`` overrides the internal per-repetition seed derivation
    with explicit values (one per repetition), as in
    :func:`simulate_probe_train_batch` — the chunked execution hook.
    """
    if probe_rate_bps <= 0:
        raise ValueError(
            f"probe rate must be positive, got {probe_rate_bps}")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if duration <= warmup or warmup < 0:
        raise ValueError("need duration > warmup >= 0")

    cross = list(cross)
    if fifo_cross is not None and fifo_cross.size_bytes != size_bytes:
        raise ValueError(
            fifo_size_mismatch_detail(size_bytes, fifo_cross.size_bytes))

    # The event path's CBR schedule: packets at k * interval, k >= 0,
    # clipped to [0, duration).
    interval = size_bytes * 8 / probe_rate_bps
    count = int(duration / interval) + 1
    times = np.arange(count) * interval
    times = times[times < duration]
    n_probe = len(times)
    if n_probe < 1:  # pragma: no cover - degenerate rates only
        raise ValueError("probe flow emits no packet before duration")

    reps = repetitions
    if seeds is None:
        # Same derivation scheme as repro.runtime.executor.derive_seeds.
        seeds = np.random.SeedSequence(seed).generate_state(repetitions)
    elif len(seeds) != repetitions:
        raise ValueError(
            f"got {len(seeds)} seeds for {repetitions} repetitions")
    gens = [np.random.default_rng(int(s)) for s in seeds]

    probe_times = np.broadcast_to(times, (reps, n_probe)).copy()
    cross_paths = [spec.sample_paths(gens, duration) for spec in cross]
    if fifo_cross is not None:
        fifo_times, fifo_counts = fifo_cross.sample_paths(gens, duration)
    else:
        fifo_times, fifo_counts = None, None
    probe_arr, probe_seq, probe_counts = _merge_probe_queue(
        probe_times, n_probe, fifo_times, fifo_counts)

    _, _, bits, queues = _resolve_batch(
        probe_arr, probe_seq, probe_counts, cross_paths, n_probe,
        gens=gens, size_bytes=size_bytes,
        cross_sizes=[spec.size_bytes for spec in cross], phy=phy,
        immediate_access=immediate_access, rts_threshold=rts_threshold,
        retry_limit=retry_limit, stop_time=duration,
        window=(warmup, duration), track_queues=track_queues)
    probe_bits, fifo_bits, cross_bits = bits
    return SteadyBatchResult(
        probe_bits=probe_bits,
        fifo_bits=fifo_bits,
        cross_bits=cross_bits,
        warmup=warmup,
        duration=duration,
        size_bytes=size_bytes,
        queue_traces=queues,
    )
