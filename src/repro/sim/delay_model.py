"""Batched access-delay sampling from the Bianchi/backoff model.

A full simulation (event engine or the vectorized kernels) resolves
every contention round of a sample path.  Sometimes only the *shape*
of the access-delay distribution is needed — priors for tests, quick
what-if sweeps, seeding a transient study before committing to a
simulation — and for that the Bianchi decoupling assumption gives a
directly sampleable model: a tagged station at backoff stage ``k``
draws its counter uniformly from ``[0, CW_k]``; while it counts down,
each slot is occupied by another station's transmission with the
fixed-point probability ``p``, freezing the countdown for one busy
period; the attempt itself collides with probability ``p``, doubling
the window, and succeeds otherwise.

:func:`sample_access_delays` draws whole ``(repetitions, packets)``
matrices of such delays in vectorized passes (one array operation per
backoff stage, not per packet), and
:func:`sample_transient_delay_matrix` adds the paper's transient
ingredient: the *first* packet of a probing train finds the medium
idle with the model's idle-slot probability and then transmits
immediately — the 802.11 immediate-access rule — which reproduces the
accelerated first-packet distribution of figures 6 and 7
qualitatively.

These samplers are deliberately coarse — renewal-model draws, not a
protocol simulation; anything quantitative should use the kernels in
:mod:`repro.sim.vector` / :mod:`repro.sim.probe_vector`, whose
distributions are pinned to the event engine by KS tests.  The one
calibration the samplers do promise (and the tests enforce) is that
the sampled mean tracks :class:`repro.analytic.bianchi.BianchiModel`'s
``mean_access_delay`` within a modest tolerance.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analytic.bianchi import BianchiModel, BianchiSolution
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.mac.timing import cw_table

#: Attempt-loop guard: (2p)^k vanishes long before this many retries.
_MAX_ATTEMPTS = 64


def cbr_arrival_paths(gens: Sequence[np.random.Generator],
                      packets_per_second: float,
                      horizon: float,
                      jitter: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
    """Batched CBR arrival sample paths over ``[0, horizon)``.

    The batched counterpart of
    :meth:`repro.traffic.generators.CBRGenerator.generate`:
    deterministic inter-arrivals at ``1 / packets_per_second`` plus an
    optional per-packet phase-jitter stream of up to ``jitter`` seconds
    (drawn from each repetition's private generator — the same
    ``derive_seeds`` scheme every kernel stream uses — then re-sorted,
    exactly the event generator's rule).  Returns ``(times, counts)``
    where ``times`` is ``(repetitions, width)`` padded with ``inf``
    past each repetition's count, the shape
    :func:`repro.sim.probe_vector.simulate_probe_train_batch` replays
    as cross-traffic.
    """
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    reps = len(gens)
    if packets_per_second <= 0 or horizon <= 0:
        return np.full((reps, 1), np.inf), np.zeros(reps, dtype=np.int64)
    interval = 1.0 / packets_per_second
    count = int(horizon / interval) + 1
    base = np.arange(count) * interval
    if jitter == 0:
        times = base[base < horizon]
        width = max(1, len(times))
        out = np.full((reps, width), np.inf)
        out[:, :len(times)] = times
        return out, np.full(reps, len(times), dtype=np.int64)
    rows = []
    counts = np.zeros(reps, dtype=np.int64)
    for r, gen in enumerate(gens):
        jittered = np.sort(base + gen.uniform(0, jitter, size=count))
        jittered = jittered[jittered < horizon]
        rows.append(jittered)
        counts[r] = len(jittered)
    width = max(1, int(counts.max()))
    out = np.full((reps, width), np.inf)
    for r, row in enumerate(rows):
        out[r, :len(row)] = row
    return out, counts


def onoff_arrival_paths(gens: Sequence[np.random.Generator],
                        peak_packets_per_second: float,
                        mean_on: float,
                        mean_off: float,
                        horizon: float) -> Tuple[np.ndarray, np.ndarray]:
    """Batched two-state on-off arrival sample paths over ``[0, horizon)``.

    The batched counterpart of
    :meth:`repro.traffic.generators.OnOffGenerator.generate`: CBR
    emission at the peak rate during exponential ON periods, silence
    during exponential OFF periods, the initial state drawn from the
    stationary duty cycle.  Each repetition's path comes from its own
    private generator (the ``derive_seeds`` scheme of every kernel
    stream).  Returns the same inf-padded ``(times, counts)`` pair as
    :func:`cbr_arrival_paths`, ready for
    :func:`repro.sim.probe_vector.simulate_probe_train_batch` to replay
    as cross-traffic.
    """
    if peak_packets_per_second <= 0:
        raise ValueError(
            f"peak rate must be positive, got {peak_packets_per_second}")
    if mean_on <= 0 or mean_off < 0:
        raise ValueError("mean_on must be > 0 and mean_off >= 0")
    reps = len(gens)
    if horizon <= 0:
        return np.full((reps, 1), np.inf), np.zeros(reps, dtype=np.int64)
    interval = 1.0 / peak_packets_per_second
    duty = mean_on / (mean_on + mean_off)
    rows = []
    counts = np.zeros(reps, dtype=np.int64)
    for r, gen in enumerate(gens):
        pieces = []
        t = 0.0
        on = bool(gen.random() < duty)
        while t < horizon:
            if on:
                period = float(gen.exponential(mean_on))
                burst = t + np.arange(int(period / interval)) * interval
                pieces.append(burst[burst < horizon])
                t += period
            else:
                t += float(gen.exponential(mean_off))
            on = not on
        row = np.concatenate(pieces) if pieces else np.empty(0)
        rows.append(row)
        counts[r] = len(row)
    width = max(1, int(counts.max()))
    out = np.full((reps, width), np.inf)
    for r, row in enumerate(rows):
        out[r, :len(row)] = row
    return out, counts


def retry_drop_probability(collision_probability: float,
                           retry_limit: int) -> float:
    """Drop probability of a retry-capped packet under decoupling.

    A packet is abandoned after ``retry_limit + 1`` consecutive
    collisions, each occurring with the fixed-point probability ``p``
    independently (the Bianchi decoupling assumption), so the drop
    probability is ``p ** (retry_limit + 1)``.
    """
    if not 0 <= collision_probability <= 1:
        raise ValueError(
            f"p must be in [0, 1], got {collision_probability}")
    if retry_limit < 0:
        raise ValueError(f"retry limit must be >= 0, got {retry_limit}")
    return float(collision_probability ** (retry_limit + 1))


def _slot_durations(phy: PhyParams, size_bytes: int,
                    solution: BianchiSolution) -> Tuple[float, float, float]:
    """(busy-slot duration, success duration, collision duration).

    The tagged station's countdown freezes for the channel-occupancy
    mix the fixed point predicts: among the other stations'
    transmissions, a fraction succeeds and the rest collide; both last
    frame + SIFS + ACK (timeout) + DIFS on equal-size frames.
    """
    airtime = AirtimeModel(phy)
    t_success = airtime.success_duration(size_bytes) + phy.difs
    t_collision = (airtime.collision_duration([size_bytes, size_bytes])
                   + phy.difs)
    n = solution.n_stations
    tau = solution.tau
    if n <= 1:
        return 0.0, t_success, t_collision
    p_any = 1 - (1 - tau) ** (n - 1)
    p_one = (n - 1) * tau * (1 - tau) ** (n - 2) / p_any if p_any > 0 else 1.0
    busy = p_one * t_success + (1 - p_one) * t_collision
    return busy, t_success, t_collision


def sample_access_delays(n_stations: int,
                         shape: Tuple[int, ...],
                         *,
                         phy: Optional[PhyParams] = None,
                         size_bytes: int = 1500,
                         seed: int = 0) -> np.ndarray:
    """Draw saturated access delays ``mu`` of the given ``shape``.

    Every element is one independent packet delay of a tagged station
    among ``n_stations`` saturated contenders: backoff slots (each
    idle or frozen by another transmission), collision retries with CW
    doubling, and the final DATA airtime.  The draw loops over backoff
    *stages* — a handful of vectorized passes — never over packets.
    """
    if n_stations < 1:
        raise ValueError(f"need at least one station, got {n_stations}")
    phy = phy if phy is not None else PhyParams.dot11b()
    model = BianchiModel(phy, size_bytes)
    solution = model.solve(n_stations)
    p = solution.collision_probability
    busy, _, t_collision = _slot_durations(phy, size_bytes, solution)
    data_air = AirtimeModel(phy).data_airtime(size_bytes)
    cw_by_stage = cw_table(phy)
    max_stage = phy.max_backoff_stage

    rng = np.random.default_rng(seed)
    flat = int(np.prod(shape, dtype=np.int64)) if shape else 1
    delays = np.zeros(flat)
    active = np.ones(flat, dtype=bool)
    for attempt in range(_MAX_ATTEMPTS):
        count = int(active.sum())
        if count == 0:
            break
        cw = int(cw_by_stage[min(attempt, max_stage)])
        counters = rng.integers(0, cw + 1, size=count)
        # Each pending slot freezes with probability p; conditioning on
        # the counter, frozen slots are Binomial(counter, p).  Every
        # attempt starts with the DIFS the countdown waits out.
        frozen = rng.binomial(counters, p)
        delays[active] += (phy.difs + counters * phy.slot_time
                           + frozen * busy)
        collided = rng.random(count) < p
        survivors = np.flatnonzero(active)
        done = survivors[~collided]
        delays[done] += data_air
        delays[survivors[collided]] += t_collision
        active[done] = False
    else:  # pragma: no cover - p < 1 always terminates far earlier
        delays[active] += data_air
    return delays.reshape(shape)


def sample_retry_limited_delays(n_stations: int,
                                shape: Tuple[int, ...],
                                *,
                                retry_limit: int,
                                phy: Optional[PhyParams] = None,
                                size_bytes: int = 1500,
                                seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Draw retry-capped access delays and their drop indicators.

    The retry-limited mixture of :func:`sample_access_delays`, pinned
    to the event medium's retry counter semantics: a packet is
    abandoned after ``retry_limit + 1`` collisions, so the backoff
    stage distribution truncates at the limit and a
    ``p ** (retry_limit + 1)`` atom of the probability mass moves to
    drops (:func:`retry_drop_probability`).  Returns ``(delays,
    dropped)`` of the given ``shape`` — a dropped element's delay is
    the time the station wasted on the abandoned packet (its countdowns
    plus every collision), the quantity the event engine's drop records
    span.
    """
    if n_stations < 1:
        raise ValueError(f"need at least one station, got {n_stations}")
    if retry_limit < 0:
        raise ValueError(f"retry limit must be >= 0, got {retry_limit}")
    phy = phy if phy is not None else PhyParams.dot11b()
    model = BianchiModel(phy, size_bytes)
    solution = model.solve(n_stations)
    p = solution.collision_probability
    busy, _, t_collision = _slot_durations(phy, size_bytes, solution)
    data_air = AirtimeModel(phy).data_airtime(size_bytes)
    cw_by_stage = cw_table(phy)
    max_stage = phy.max_backoff_stage

    rng = np.random.default_rng(seed)
    flat = int(np.prod(shape, dtype=np.int64)) if shape else 1
    delays = np.zeros(flat)
    dropped = np.zeros(flat, dtype=bool)
    active = np.ones(flat, dtype=bool)
    for attempt in range(retry_limit + 1):
        count = int(active.sum())
        if count == 0:
            break
        cw = int(cw_by_stage[min(attempt, max_stage)])
        counters = rng.integers(0, cw + 1, size=count)
        frozen = rng.binomial(counters, p)
        delays[active] += (phy.difs + counters * phy.slot_time
                           + frozen * busy)
        collided = rng.random(count) < p
        survivors = np.flatnonzero(active)
        done = survivors[~collided]
        delays[done] += data_air
        delays[survivors[collided]] += t_collision
        active[done] = False
        if attempt == retry_limit:
            # The last permitted attempt: a collision here exhausts
            # the retry budget and the packet is abandoned.
            dropped[survivors[collided]] = True
            active[survivors[collided]] = False
    return delays.reshape(shape), dropped.reshape(shape)


def sample_transient_delay_matrix(n_stations: int,
                                  repetitions: int,
                                  n_packets: int,
                                  *,
                                  utilization: float = 0.5,
                                  phy: Optional[PhyParams] = None,
                                  size_bytes: int = 1500,
                                  seed: int = 0) -> np.ndarray:
    """A model-driven ``(repetitions, packets)`` transient delay matrix.

    Packets 2..n draw from the contended distribution of
    :func:`sample_access_delays` (``n_stations`` counts every
    contender, the probing sender included).  Packet 1 models the
    probing flow's arrival into a system it has not yet loaded: the
    pre-train cross-traffic keeps the medium busy a ``utilization``
    fraction of the time, so with probability ``1 - utilization`` the
    packet meets a >= DIFS-idle medium and transmits immediately
    (delay = one DATA airtime, the 802.11 immediate-access rule);
    otherwise it waits out a residual busy period and then contends
    like any other packet.  The result has the figure-6/7 signature —
    an accelerated, atom-carrying first-packet distribution against a
    heavier steady tail — without running a simulation.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if n_packets < 2:
        raise ValueError(f"a train needs at least 2 packets, got {n_packets}")
    if not 0 <= utilization < 1:
        raise ValueError(
            f"utilization must be in [0, 1), got {utilization}")
    phy = phy if phy is not None else PhyParams.dot11b()
    model = BianchiModel(phy, size_bytes)
    solution = model.solve(max(1, n_stations))
    busy, _, _ = _slot_durations(phy, size_bytes, solution)
    data_air = AirtimeModel(phy).data_airtime(size_bytes)

    matrix = sample_access_delays(
        n_stations, (repetitions, n_packets),
        phy=phy, size_bytes=size_bytes, seed=seed)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 1]))
    immediate = rng.random(repetitions) >= utilization
    residual = rng.uniform(0, busy, size=repetitions) if busy > 0 \
        else np.zeros(repetitions)
    first = np.where(immediate, data_air, residual + matrix[:, 0])
    matrix[:, 0] = first
    return matrix
