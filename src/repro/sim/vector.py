"""Vectorized batched DCF kernel.

The event engine (:mod:`repro.sim.engine` + :mod:`repro.mac.medium`)
pays Python-level heap cost for every arrival, access resolution and
completion; a Monte Carlo sweep over hundreds of repetitions multiplies
that cost by the repetition count.  For *saturated* contention
scenarios — every station permanently backlogged, the Bianchi regime —
the whole protocol collapses to a sequence of identical contention
rounds, and those rounds can be resolved for **all repetitions at
once** with numpy array arithmetic.

The state of a batch is a handful of ``(repetitions, stations)``
arrays: remaining backoff slots, contention-window stage, packets sent
and head-of-line promotion instants, plus a per-repetition clock.  One
loop iteration resolves one contention round *per repetition*:

1. the minimum remaining counter per repetition fixes the slot at
   which the next transmission starts;
2. stations at that minimum win; exactly one winner is a success,
   several are a collision (CW doubling, redraw), matching the
   event engine's tie semantics on the shared slot grid;
3. losers consume the elapsed slots and keep their counters — the
   frozen-countdown rule;
4. the busy period (DATA + SIFS + ACK, identical for equal-size
   successes and collisions) advances the clock, and the next round
   counts down after DIFS.

Time arithmetic comes from :class:`repro.mac.timing.SlotTiming`, the
same constants the event backend uses, so the two backends agree on
every duration and only differ in how they schedule the arithmetic.
The access-delay bookkeeping mirrors the event engine exactly: a
packet's delay runs from its head-of-line promotion (the end of the
previous DATA frame) to the end of its own DATA frame.

Randomness is reproducible run-to-run: per-repetition seeds are derived
with the exact scheme of :func:`repro.runtime.executor.derive_seeds`
(``SeedSequence(seed).generate_state(repetitions)``), and repetition
``r`` consumes a private uniform stream whose layout depends only on
its own trajectory — never on how many other repetitions share the
batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.mac.params import PhyParams
from repro.mac.timing import SlotTiming, cw_table
from repro.sim import jit as _jit

#: Sentinel counter for stations that drained their queue and left
#: contention; any real counter is smaller.
_DONE = np.iinfo(np.int64).max

#: Uniform draws buffered per repetition between refills (in rounds).
_BUFFER_ROUNDS = 256


@dataclass
class VectorBatchResult:
    """Outcome of a batched saturated-DCF simulation.

    Both backends (the vector kernel and the per-repetition event
    engine wrapper in :mod:`repro.analysis.saturation`) return this
    shape, so everything downstream is backend-agnostic.

    Attributes
    ----------
    access_delays:
        ``(repetitions, stations, packets)`` — per-packet access delay
        ``mu_i`` (head-of-line to end of DATA), in transmission order
        per station.  Packets dropped by a retry limit stay ``NaN``.
    durations:
        ``(repetitions,)`` — instant the channel finally went idle.
    successes / collisions:
        ``(repetitions,)`` — channel acquisitions of each kind.
    drops:
        ``(repetitions, stations)`` — packets abandoned at the retry
        limit (``None`` when no limit was configured).

    Conforms to :class:`repro.core.batch.RepetitionBatch`: one
    repetition per leading-axis row, ``per_rep``/``concat`` slice and
    fold row-wise (chunked execution concatenates these).
    """

    access_delays: np.ndarray
    durations: np.ndarray
    successes: np.ndarray
    collisions: np.ndarray
    n_stations: int
    packets_per_station: int
    size_bytes: int
    drops: Optional[np.ndarray] = None

    @property
    def repetitions(self) -> int:
        """Number of repetitions (leading-axis rows)."""
        return self.access_delays.shape[0]

    def per_rep(self) -> List["VectorBatchResult"]:
        """The batch as single-repetition ``VectorBatchResult`` objects."""
        return [VectorBatchResult(
            access_delays=self.access_delays[r:r + 1],
            durations=self.durations[r:r + 1],
            successes=self.successes[r:r + 1],
            collisions=self.collisions[r:r + 1],
            n_stations=self.n_stations,
            packets_per_station=self.packets_per_station,
            size_bytes=self.size_bytes,
            drops=None if self.drops is None else self.drops[r:r + 1],
        ) for r in range(self.repetitions)]

    @classmethod
    def concat(cls, parts: Sequence["VectorBatchResult"]
               ) -> "VectorBatchResult":
        """Fold row-compatible batches into one, preserving row order."""
        if not parts:
            raise ValueError("concat needs at least one part")
        if len({(part.n_stations, part.packets_per_station,
                 part.size_bytes) for part in parts}) != 1:
            raise ValueError("cannot concat batches with different "
                             "station counts, queue depths or packet "
                             "sizes")
        with_drops = [part.drops is not None for part in parts]
        if any(with_drops) and not all(with_drops):
            raise ValueError("cannot concat batches with and without "
                             "retry-limit drop counters")
        return cls(
            access_delays=np.concatenate(
                [p.access_delays for p in parts]),
            durations=np.concatenate([p.durations for p in parts]),
            successes=np.concatenate([p.successes for p in parts]),
            collisions=np.concatenate([p.collisions for p in parts]),
            n_stations=parts[0].n_stations,
            packets_per_station=parts[0].packets_per_station,
            size_bytes=parts[0].size_bytes,
            drops=np.concatenate([p.drops for p in parts])
            if all(with_drops) else None,
        )

    def pooled_access_delays(self) -> np.ndarray:
        """Every completed access delay of the batch as one flat sample."""
        flat = self.access_delays.reshape(-1)
        return flat[~np.isnan(flat)]

    def drop_rate(self) -> np.ndarray:
        """Per-repetition fraction of offered packets dropped."""
        offered = self.n_stations * self.packets_per_station
        if self.drops is None:
            return np.zeros(len(self.durations))
        return self.drops.sum(axis=1) / offered

    def throughput_bps(self) -> np.ndarray:
        """Per-repetition network-layer throughput over the full run."""
        bits = self.successes * self.size_bytes * 8
        return bits / self.durations

    def collision_rate(self) -> np.ndarray:
        """Per-repetition fraction of acquisitions that collided."""
        total = self.successes + self.collisions
        return np.where(total > 0, self.collisions / np.maximum(total, 1), 0.0)


class _UniformBlocks:
    """Per-repetition uniform streams, consumed in vectorized blocks.

    Each repetition owns a private :class:`numpy.random.Generator`; the
    kernel asks for ``(repetitions, width)`` draws per round.  Draws
    are pre-generated ``width * _BUFFER_ROUNDS`` at a time so the
    per-round cost is a slice, and repetition ``r``'s stream layout is
    independent of every other repetition.
    """

    def __init__(self, seeds: np.ndarray, width: int,
                 gens: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        # ``gens`` continues already-consumed per-repetition streams
        # (the probe kernel draws its sample paths first, like the
        # event engine); ``seeds`` starts fresh ones.
        self._gens: List[np.random.Generator] = (
            list(gens) if gens is not None
            else [np.random.default_rng(int(seed)) for seed in seeds])
        self._width = width
        self._block = width * _BUFFER_ROUNDS
        self._buf = np.empty((len(self._gens), self._block))
        self._ptr = self._block  # force a fill on first take()

    def take(self) -> np.ndarray:
        """The next ``(repetitions, width)`` uniforms in [0, 1)."""
        if self._ptr + self._width > self._block:
            for row, gen in enumerate(self._gens):
                self._buf[row] = gen.random(self._block)
            self._ptr = 0
        out = self._buf[:, self._ptr:self._ptr + self._width]
        self._ptr += self._width
        return out


def simulate_saturated_batch(
        n_stations: int,
        packets_per_station: int,
        repetitions: int,
        *,
        size_bytes: int = 1500,
        phy: Optional[PhyParams] = None,
        seed: int = 0,
        seeds: Optional[np.ndarray] = None,
        immediate_access: bool = True,
        rts_threshold: Optional[int] = None,
        retry_limit: Optional[int] = None) -> VectorBatchResult:
    """Simulate ``repetitions`` independent saturated BSS runs at once.

    Every station starts with ``packets_per_station`` packets queued at
    time zero and contends until its queue drains; with
    ``immediate_access`` (the 802.11 rule the event engine applies) the
    first round is a simultaneous zero-backoff transmission, i.e. an
    ``n_stations``-way collision for any ``n_stations >= 2``.
    ``rts_threshold`` protects frames of at least that many bytes with
    the RTS/CTS handshake: successes pay the RTS+SIFS+CTS+SIFS
    preamble, collisions only occupy the medium for the RTS plus the
    timeout (:class:`repro.mac.timing.SlotTiming` carries the split).
    ``retry_limit`` caps per-packet transmission attempts exactly like
    the event medium's retry counter: a packet whose attempt count
    exceeds the limit is abandoned at the end of the collision's busy
    period (its delay slot stays ``NaN``), the next queued packet is
    promoted at that instant, and the station re-enters contention at
    backoff stage 0 with a fresh CW0 draw.

    Statistically equivalent to running
    :func:`repro.mac.scenario.saturated_station_specs` through the
    event engine — the equivalence tests in
    ``tests/test_vector_backend.py`` enforce it with KS distances.

    ``seeds`` overrides the internal per-repetition seed derivation
    with explicit values (one per repetition).  Chunked execution
    passes contiguous slices of the dense derivation here, which is
    what makes a chunk's rows bit-identical to the dense run's.
    """
    if n_stations < 1:
        raise ValueError(f"need at least one station, got {n_stations}")
    if packets_per_station < 1:
        raise ValueError(
            f"need at least one packet per station, got {packets_per_station}")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if retry_limit is not None and retry_limit < 0:
        raise ValueError(f"retry limit must be >= 0, got {retry_limit}")

    phy = phy if phy is not None else PhyParams.dot11b()
    protected = rts_threshold is not None and size_bytes >= rts_threshold
    timing = SlotTiming.for_size(phy, size_bytes, rts=protected)
    cw_by_stage = cw_table(phy)
    max_stage = phy.max_backoff_stage

    reps, stations, packets = repetitions, n_stations, packets_per_station
    if seeds is None:
        # Same derivation scheme as repro.runtime.executor.derive_seeds
        # (not imported: repro.runtime sits above the simulation layer).
        seeds = np.random.SeedSequence(seed).generate_state(repetitions)
    elif len(seeds) != repetitions:
        raise ValueError(
            f"got {len(seeds)} seeds for {repetitions} repetitions")
    if _jit.active_tier() == "jit":
        return _saturated_jit_batch(
            seeds, stations, packets, size_bytes, timing, cw_by_stage,
            max_stage, immediate_access, retry_limit)
    uniforms = _UniformBlocks(seeds, stations)

    remaining = np.zeros((reps, stations), dtype=np.int64)
    stage = np.zeros((reps, stations), dtype=np.int64)
    attempts = np.zeros((reps, stations), dtype=np.int64)
    sent = np.zeros((reps, stations), dtype=np.int64)
    hol = np.zeros((reps, stations))
    now = np.zeros(reps)
    successes = np.zeros(reps, dtype=np.int64)
    collisions = np.zeros(reps, dtype=np.int64)
    drops = np.zeros((reps, stations), dtype=np.int64)
    delays = np.full((reps, stations, packets), np.nan)

    if not immediate_access:
        # No immediate-access rule: every station starts with a drawn
        # counter, counting from t=0 (the medium has been idle since
        # forever, so no initial DIFS either way).
        remaining[:] = (uniforms.take() * (cw_by_stage[0] + 1)).astype(np.int64)

    # Generous runaway guard: every round retires a success or doubles
    # at least one CW; collisions settle within a few rounds per packet.
    max_rounds = 200 + 50 * stations * packets
    first_round = True
    for _ in range(max_rounds):
        alive = sent < packets
        active = alive.any(axis=1)
        if not active.any():
            break
        masked = np.where(alive, remaining, _DONE)
        m = masked.min(axis=1)                      # slots until next tx
        winners = alive & (masked == m[:, None])
        n_win = winners.sum(axis=1)
        u = uniforms.take()

        slots = np.where(active, m, 0).astype(float)
        wait = slots * timing.slot + (0.0 if first_round else timing.difs)
        tx_start = now + wait
        data_end = tx_start + timing.rts_preamble + timing.data_airtime

        success = active & (n_win == 1)
        collision = active & (n_win >= 2)
        # A success occupies the medium for the full exchange, a
        # collision only for the contention frames plus the timeout —
        # identical durations under basic access, split under RTS/CTS.
        busy_end = np.where(collision,
                            tx_start + timing.collision_busy,
                            tx_start + timing.success_busy)

        solo = winners & success[:, None]
        rep_idx, sta_idx = np.nonzero(solo)
        pkt_idx = sent[rep_idx, sta_idx]
        delays[rep_idx, sta_idx, pkt_idx] = (data_end[rep_idx]
                                             - hol[rep_idx, sta_idx])
        # The next packet is promoted when the DATA frame completes.
        hol[rep_idx, sta_idx] = data_end[rep_idx]
        sent[rep_idx, sta_idx] += 1
        stage[solo] = 0
        attempts[solo] = 0

        colliders = winners & collision[:, None]
        attempts[colliders] += 1
        if retry_limit is None:
            stage[colliders] = np.minimum(stage[colliders] + 1, max_stage)
        else:
            dropping = colliders & (attempts > retry_limit)
            surviving = colliders & ~dropping
            stage[surviving] = np.minimum(stage[surviving] + 1, max_stage)
            # A dropped packet is abandoned at the end of the busy
            # period: the next one is promoted there and the station
            # re-enters contention at stage 0 (its delay stays NaN).
            rep_d, sta_d = np.nonzero(dropping)
            hol[rep_d, sta_d] = busy_end[rep_d]
            sent[rep_d, sta_d] += 1
            drops[rep_d, sta_d] += 1
            stage[dropping] = 0
            attempts[dropping] = 0

        # Frozen countdown: losers consumed exactly m idle slots.
        losers = alive & ~winners
        remaining[losers] -= np.broadcast_to(m[:, None], losers.shape)[losers]

        redraw = (u * (cw_by_stage[stage] + 1)).astype(np.int64)
        remaining[winners] = redraw[winners]

        successes += success
        collisions += collision
        now = np.where(active, busy_end, now)
        first_round = False
    else:  # pragma: no cover - defensive
        raise RuntimeError(
            f"saturated batch did not drain within {max_rounds} rounds")

    return VectorBatchResult(
        access_delays=delays,
        durations=now,
        successes=successes,
        collisions=collisions,
        n_stations=stations,
        packets_per_station=packets,
        size_bytes=size_bytes,
        drops=drops if retry_limit is not None else None,
    )


def _saturated_jit_batch(seeds: np.ndarray, stations: int, packets: int,
                         size_bytes: int, timing: SlotTiming,
                         cw_by_stage: np.ndarray, max_stage: int,
                         immediate_access: bool,
                         retry_limit: Optional[int]) -> VectorBatchResult:
    """Resolve the batch one repetition at a time on the jit tier.

    Repetition ``r`` pre-draws its uniform stream as one
    ``(rows, stations)`` buffer; because ``Generator.random`` is
    prefix-consistent across call boundaries, row ``k`` equals the
    block-buffered draw the numpy kernel hands that repetition at round
    ``k`` — so the compiled core's results are bit-identical.  When a
    trajectory outlives the buffer estimate, the generator state is
    rewound and the repetition replayed with a doubled buffer, which
    keeps the replay deterministic.
    """
    reps = len(seeds)
    delays = np.full((reps, stations, packets), np.nan)
    drops = np.zeros((reps, stations), dtype=np.int64)
    durations = np.zeros(reps)
    successes = np.zeros(reps, dtype=np.int64)
    collisions = np.zeros(reps, dtype=np.int64)
    cw = np.ascontiguousarray(cw_by_stage, dtype=np.int64)
    limit = -1 if retry_limit is None else int(retry_limit)
    max_rounds = 200 + 50 * stations * packets
    cap = max_rounds + 1  # initial-counter row + one row per round
    for r in range(reps):
        gen = np.random.default_rng(int(seeds[r]))
        state = gen.bit_generator.state
        est = min(cap, 64 + 8 * stations * packets)
        while True:
            buf = gen.random(est * stations).reshape(est, stations)
            now, suc, col, status = _jit._saturated_rep_core(
                buf, packets, timing.slot, timing.difs,
                timing.rts_preamble, timing.data_airtime,
                timing.success_busy, timing.collision_busy, cw,
                max_stage, immediate_access, limit, max_rounds,
                delays[r], drops[r])
            if status != _jit.NEED_DRAWS or est >= cap:
                break
            delays[r].fill(np.nan)
            drops[r].fill(0)
            gen.bit_generator.state = state
            est = min(cap, est * 2)
        if status != _jit.OK:  # pragma: no cover - defensive
            raise RuntimeError(
                f"saturated batch did not drain within {max_rounds} rounds")
        durations[r] = now
        successes[r] = suc
        collisions[r] = col
    return VectorBatchResult(
        access_delays=delays,
        durations=durations,
        successes=successes,
        collisions=collisions,
        n_stations=stations,
        packets_per_station=packets,
        size_bytes=size_bytes,
        drops=drops if retry_limit is not None else None,
    )
