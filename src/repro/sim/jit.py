"""JIT-compiled twins of the hottest numpy kernel cores.

The numpy tier (:mod:`repro.sim.vector`, :mod:`repro.sim.probe_vector`,
:mod:`repro.queueing.lindley`) resolves whole repetition batches with
array arithmetic, but its inner loops still pay numpy's per-op dispatch
and temporary-array cost on every contention round / event.  Profiles
of the worst benches (``repro run --profile`` on ``fig6`` and
``ext-saturation``) put essentially all of the time in three cores:

* the probe-train event loop (``probe_vector._resolve_batch``),
* the saturated-DCF round loop (``vector.simulate_saturated_batch``),
* the batched Lindley recursion (``lindley._lindley_cummax``).

This module carries ``numba.njit``-compiled *per-repetition* twins of
exactly those three cores.  Numba is optional: when it is not
importable the same functions run as plain Python (bit-identical, just
slow), so every equivalence test exercises the jit code path with or
without the dependency, and the dispatcher simply never *selects* the
jit tier when :func:`available` is false.

Equivalence contract
--------------------
The compiled cores consume the exact per-repetition uniform streams of
the numpy kernels: each repetition owns a private
``np.random.Generator`` and draws one ``n_stations``-wide row per
round/event, and because ``Generator.random`` is prefix-consistent
(drawing ``n`` then ``m`` values equals drawing ``n + m``), a
pre-drawn ``(rows, n_stations)`` buffer replays the
:class:`repro.sim.vector._UniformBlocks` stream positions exactly.
Every floating-point operation is performed in the numpy kernel's
order, so results are bit-identical — not merely statistically
equivalent — which trivially satisfies the repo's KS pins.

Tier selection is ambient: backends (or tests) enter
:func:`kernel_tier` and the numpy kernels consult :func:`active_tier`
at their hot-core boundary, keeping all validation, seed derivation
and setup shared between the tiers.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

import numpy as np

try:  # numba is an optional accelerator, never a requirement
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-free CI
    _numba = None

#: Test hook: force :func:`available` to a fixed answer (``None`` =
#: answer honestly).  Lets dependency-gating tests exercise both
#: branches of the dispatcher regardless of the environment.
_FORCE_AVAILABLE: Optional[bool] = None

#: The two kernel tiers a numpy kernel can run its hot core on.
TIERS = ("numpy", "jit")


def available() -> bool:
    """Whether the compiled jit tier can actually run.

    Consults ``sys.modules`` (not just the import result) so a test
    hiding numba via ``sys.modules`` monkeypatching flips the answer
    without reloading this module.
    """
    if _FORCE_AVAILABLE is not None:
        return bool(_FORCE_AVAILABLE)
    if _numba is None:
        return False
    return sys.modules.get("numba") is not None


def unavailable_reason() -> Optional[str]:
    """Why the jit tier cannot run (``None`` when it can)."""
    return None if available() else "numba not installed"


_TIER = threading.local()


def active_tier() -> str:
    """The ambient kernel tier (``numpy`` unless a scope says ``jit``)."""
    return getattr(_TIER, "value", "numpy")


@contextmanager
def kernel_tier(tier: str) -> Iterator[None]:
    """Route the numpy kernels' hot cores to ``tier`` within the scope.

    Entering ``jit`` does *not* require numba: without it the cores run
    as plain Python (the decorator below degrades to identity), which
    is how the equivalence tests cover the jit code path on numba-free
    environments.  Dependency gating happens in the dispatcher, which
    never *selects* the jit backend when :func:`available` is false.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown kernel tier {tier!r}; "
                         f"expected one of {TIERS}")
    previous = active_tier()
    _TIER.value = tier
    try:
        yield
    finally:
        _TIER.value = previous


def tier_scope(family: str) -> ContextManager[None]:
    """The tier scope for a resolved backend family name.

    ``jit`` enters :func:`kernel_tier`; any other family is a no-op
    (the ambient tier, normally ``numpy``, stays in force).
    """
    return kernel_tier("jit") if family == "jit" else nullcontext()


def maybe_njit(func):
    """``numba.njit(cache=True)`` when numba imports, else identity.

    ``cache=True`` persists the compiled artifacts on disk, so warm-up
    cost is paid once per machine, not once per process.
    """
    if _numba is None:
        return func
    return _numba.njit(cache=True)(func)


# ----------------------------------------------------------------------
# Lindley recursion core
# ----------------------------------------------------------------------

@maybe_njit
def _lindley_core(arrivals, services, starts, departures):  # pragma: no cover - covered via lindley tests
    """Row-wise scalar twin of ``lindley._lindley_cummax``.

    Sequential cumulative sum + running maximum per row, in the exact
    association order of ``np.cumsum`` / ``np.maximum.accumulate``, so
    the outputs are bit-identical to the numpy formulation.
    """
    reps, n = arrivals.shape
    for r in range(reps):
        cum = 0.0
        running = -np.inf
        previous = -np.inf
        for i in range(n):
            cum += services[r, i]
            offset = arrivals[r, i] - cum + services[r, i]
            if offset > running:
                running = offset
            depart = cum + running
            departures[r, i] = depart
            if arrivals[r, i] > previous:
                starts[r, i] = arrivals[r, i]
            else:
                starts[r, i] = previous
            previous = depart


# ----------------------------------------------------------------------
# Saturated-DCF core (one repetition)
# ----------------------------------------------------------------------

#: Core completion statuses: the driver reacts to these.
OK = 0
NEED_DRAWS = 1
RUNAWAY = 2


@maybe_njit
def _saturated_rep_core(uniforms, packets, slot, difs, rts_preamble,
                        data_airtime, success_busy, collision_busy,
                        cw_by_stage, max_stage, immediate_access,
                        retry_limit, max_rounds, delays, drops):  # pragma: no cover - covered via vector tests
    """One repetition of ``vector.simulate_saturated_batch``.

    ``uniforms`` replays the repetition's private stream one
    ``n_stations``-wide row per round (row 0 is the initial counter
    draw when ``immediate_access`` is off).  ``retry_limit < 0`` means
    "no limit".  Writes ``delays``/``drops`` in place and returns
    ``(duration, successes, collisions, status)``.
    """
    stations = delays.shape[0]
    rows = uniforms.shape[0]
    remaining = np.zeros(stations, dtype=np.int64)
    stage = np.zeros(stations, dtype=np.int64)
    attempts = np.zeros(stations, dtype=np.int64)
    sent = np.zeros(stations, dtype=np.int64)
    hol = np.zeros(stations)
    now = 0.0
    successes = 0
    collisions = 0
    row = 0
    if not immediate_access:
        if row >= rows:
            return now, successes, collisions, NEED_DRAWS
        for s in range(stations):
            remaining[s] = np.int64(uniforms[row, s] * (cw_by_stage[0] + 1))
        row += 1
    first_round = True
    for _ in range(max_rounds):
        m = np.int64(0)
        any_alive = False
        for s in range(stations):
            if sent[s] < packets:
                if not any_alive or remaining[s] < m:
                    m = remaining[s]
                any_alive = True
        if not any_alive:
            return now, successes, collisions, OK
        if row >= rows:
            return now, successes, collisions, NEED_DRAWS
        n_win = 0
        for s in range(stations):
            if sent[s] < packets and remaining[s] == m:
                n_win += 1

        wait = float(m) * slot + (0.0 if first_round else difs)
        tx_start = now + wait
        data_end = tx_start + rts_preamble + data_airtime
        success = n_win == 1
        collision = n_win >= 2
        if collision:
            busy_end = tx_start + collision_busy
        else:
            busy_end = tx_start + success_busy

        for s in range(stations):
            alive_s = sent[s] < packets
            winner = alive_s and remaining[s] == m
            if winner and success:
                delays[s, sent[s]] = data_end - hol[s]
                hol[s] = data_end
                sent[s] += 1
                stage[s] = 0
                attempts[s] = 0
            elif winner:
                attempts[s] += 1
                if retry_limit < 0:
                    stage[s] = min(stage[s] + 1, max_stage)
                elif attempts[s] > retry_limit:
                    # Abandoned at the end of the busy period; the next
                    # packet is promoted there at stage 0.
                    hol[s] = busy_end
                    sent[s] += 1
                    drops[s] += 1
                    stage[s] = 0
                    attempts[s] = 0
                else:
                    stage[s] = min(stage[s] + 1, max_stage)
            elif alive_s:
                # Frozen countdown: losers consumed exactly m idle slots.
                remaining[s] -= m
            if winner:
                remaining[s] = np.int64(
                    uniforms[row, s] * (cw_by_stage[stage[s]] + 1))
        row += 1
        if success:
            successes += 1
        if collision:
            collisions += 1
        now = busy_end
        first_round = False
    return now, successes, collisions, RUNAWAY


# ----------------------------------------------------------------------
# Probe-train event core (one repetition)
# ----------------------------------------------------------------------

@maybe_njit
def _probe_rep_core(arr, n_arr, probe_seq, uniforms, slot, sifs, difs,
                    ack_air, time_eps, data_air, preamble,
                    contention_air, exchange_air, size_bits, cw_by_stage,
                    max_stage, immediate_access, retry_limit, has_stop,
                    stop_time, has_window, w0, w1, track_queues, n_probe,
                    max_events, recv, delays, bits, departures):  # pragma: no cover - covered via probe_vector tests
    """One repetition of ``probe_vector._resolve_batch``.

    Station 0 replays the merged probe-queue arrivals (tagged by
    ``probe_seq``); the remaining rows of ``arr`` replay the cross
    stations.  ``uniforms`` replays the repetition's private stream one
    ``n_stations``-wide row per event.  ``retry_limit < 0`` means "no
    limit"; ``bits`` is ``[probe, fifo, cross...]`` delivered bits.
    Writes the output arrays in place and returns a status code.
    """
    n_stations = arr.shape[0]
    width = arr.shape[1]
    rows = uniforms.shape[0]

    nxt = np.zeros(n_stations, dtype=np.int64)
    hol = np.zeros(n_stations, dtype=np.bool_)
    hol_t = np.zeros(n_stations)
    rem = np.zeros(n_stations, dtype=np.int64)
    cstart = np.full(n_stations, np.inf)
    stage = np.zeros(n_stations, dtype=np.int64)
    attempts = np.zeros(n_stations, dtype=np.int64)
    expiry = np.zeros(n_stations)
    next_arr = np.zeros(n_stations)
    pending = np.zeros(n_stations, dtype=np.bool_)
    win = np.zeros(n_stations, dtype=np.bool_)
    idle_start = -np.inf
    probe_left = n_probe
    active = True

    for event in range(max_events):
        if not active:
            return OK
        if event >= rows:
            return NEED_DRAWS

        t_tx = np.inf
        t_arr = np.inf
        for s in range(n_stations):
            if hol[s]:
                expiry[s] = cstart[s] + rem[s] * slot
            else:
                expiry[s] = np.inf
            if expiry[s] < t_tx:
                t_tx = expiry[s]
            pending[s] = (not hol[s]) and nxt[s] < n_arr[s]
            idx = nxt[s]
            if idx > width - 1:
                idx = width - 1
            if pending[s]:
                next_arr[s] = arr[s, idx]
            else:
                next_arr[s] = np.inf
            if next_arr[s] < t_arr:
                t_arr = next_arr[s]

        # Steady mode: the first event past the stop instant never
        # fires — the kernel counterpart of ``run(until=stop_time)``.
        if has_stop and min(t_arr, t_tx) > stop_time:
            active = False
        # Ties go to the arrival, like the event engine's priorities.
        arr_event = active and np.isfinite(t_arr) and t_arr <= t_tx
        tx_event = active and not arr_event and np.isfinite(t_tx)

        if arr_event:
            for s in range(n_stations):
                if not (pending[s] and next_arr[s] <= t_arr):
                    continue
                hol[s] = True
                a_time = next_arr[s]
                hol_t[s] = a_time
                if immediate_access and a_time - idle_start >= difs - time_eps:
                    rem[s] = 0
                    cstart[s] = a_time
                else:
                    cw = cw_by_stage[stage[s]]
                    rem[s] = np.int64(uniforms[event, s] * (cw + 1))
                    if a_time > idle_start + difs:
                        cstart[s] = a_time
                    else:
                        cstart[s] = idle_start + difs

        if tx_event:
            safe_tx = t_tx if np.isfinite(t_tx) else 0.0
            n_win = 0
            for s in range(n_stations):
                win[s] = hol[s] and expiry[s] <= t_tx + time_eps
                if win[s]:
                    n_win += 1
            # A lone winner occupies the medium with its full exchange;
            # colliders only with their contention frames — then both
            # pay the SIFS + ACK/CTS timeout, like the event medium.
            busy_air = 0.0
            for s in range(n_stations):
                if win[s]:
                    frame = exchange_air[s] if n_win == 1 \
                        else contention_air[s]
                    if frame > busy_air:
                        busy_air = frame
            busy_end = safe_tx + busy_air + sifs + ack_air

            if n_win == 1:
                for s in range(n_stations):
                    if not win[s]:
                        continue
                    data_end = t_tx + preamble[s] + data_air[s]
                    served = nxt[s]
                    if track_queues:
                        departures[s, served] = data_end
                    seq = np.int64(-1)
                    if s == 0:
                        seq = probe_seq[served]
                        if seq >= 0:
                            recv[seq] = data_end
                            delays[seq] = data_end - hol_t[0]
                            probe_left -= 1
                    # A packet counts when its DATA frame ends inside
                    # the measurement window.
                    if has_window and data_end > w0 and data_end <= w1:
                        if s > 0:
                            bits[1 + s] += size_bits[s]
                        elif seq >= 0:
                            bits[0] += size_bits[0]
                        else:
                            bits[1] += size_bits[0]
                    # Advance the winner's queue: the next packet (if
                    # arrived) is promoted when the DATA frame ends and
                    # draws its backoff immediately (the medium is busy).
                    nxt[s] += 1
                    stage[s] = 0
                    attempts[s] = 0
                    idx = nxt[s]
                    if idx > width - 1:
                        idx = width - 1
                    promoted = nxt[s] < n_arr[s] \
                        and arr[s, idx] <= data_end + time_eps
                    hol[s] = promoted
                    if promoted:
                        hol_t[s] = data_end
                        rem[s] = np.int64(
                            uniforms[event, s] * (cw_by_stage[0] + 1))
            elif n_win >= 2:
                for s in range(n_stations):
                    if not win[s]:
                        continue
                    dropping = False
                    if retry_limit >= 0:
                        attempts[s] += 1
                        dropping = attempts[s] > retry_limit
                    if not dropping:
                        stage[s] = min(stage[s] + 1, max_stage)
                        rem[s] = np.int64(
                            uniforms[event, s] * (cw_by_stage[stage[s]] + 1))
                        continue
                    # Retry limit exhausted: abandoned at the end of
                    # the busy period, the next queued packet — if it
                    # has arrived — promoted there at stage 0.
                    served = nxt[s]
                    if track_queues:
                        departures[s, served] = busy_end
                    if s == 0 and probe_seq[served] >= 0:
                        probe_left -= 1
                    nxt[s] += 1
                    stage[s] = 0
                    attempts[s] = 0
                    idx = nxt[s]
                    if idx > width - 1:
                        idx = width - 1
                    promoted = nxt[s] < n_arr[s] \
                        and arr[s, idx] <= busy_end + time_eps
                    hol[s] = promoted
                    if promoted:
                        hol_t[s] = busy_end
                        rem[s] = np.int64(
                            uniforms[event, s] * (cw_by_stage[0] + 1))

            # Frozen countdown: losers consumed exactly the idle slots
            # that elapsed before the winners' transmission started.
            for s in range(n_stations):
                if not hol[s] or win[s]:
                    continue
                elapsed = np.int64(np.floor(
                    (safe_tx - cstart[s]) / slot + time_eps))
                if elapsed > rem[s] - 1:
                    elapsed = rem[s] - 1
                if elapsed < 0:
                    elapsed = 0
                rem[s] -= elapsed

            idle_start = busy_end
            for s in range(n_stations):
                if hol[s]:
                    cstart[s] = busy_end + difs
            if not has_stop and probe_left <= 0:
                active = False
    if active:
        return RUNAWAY
    return OK


# ----------------------------------------------------------------------
# Warm-up
# ----------------------------------------------------------------------

_WARM_LOCK = threading.Lock()
_WARMED = False


def warm_kernels() -> None:
    """Compile the jit cores once, on tiny inputs, outside any timing.

    A no-op without numba and after the first call; benchmarks call
    this before their measured windows, and the jit backends call it on
    every ``run_batch`` (idempotent) so compilation never lands inside
    a measured simulation.  ``cache=True`` on the cores makes even the
    first call cheap once the on-disk cache is hot.
    """
    global _WARMED
    if _WARMED or not available():
        return
    with _WARM_LOCK:
        if _WARMED:
            return
        one = np.ones((1, 2))
        _lindley_core(one, one, np.empty((1, 2)), np.empty((1, 2)))
        _saturated_rep_core(
            np.full((8, 2), 0.5), 1, 2e-5, 5e-5, 0.0, 1e-3, 2e-3, 2e-3,
            np.array([31, 63], dtype=np.int64), 1, True, -1, 16,
            np.full((2, 1), np.nan), np.zeros(2, dtype=np.int64))
        _probe_rep_core(
            np.zeros((2, 1)), np.ones(2, dtype=np.int64),
            np.zeros(1, dtype=np.int64), np.full((16, 2), 0.5),
            2e-5, 1e-5, 5e-5, 2e-4, 1e-12, np.full(2, 1e-3),
            np.zeros(2), np.full(2, 1e-3), np.full(2, 1e-3),
            np.full(2, 8000.0), np.array([31, 63], dtype=np.int64), 1,
            True, -1, False, 0.0, False, 0.0, 0.0, False, 1, 16,
            np.full(1, np.nan), np.full(1, np.nan), np.zeros(3),
            np.full((2, 1), np.inf))
        _WARMED = True
