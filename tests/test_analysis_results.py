"""Tests for the experiment-result container."""

import numpy as np
import pytest

from repro.analysis.results import (
    ExperimentResult,
    monotone_nondecreasing,
    monotone_nonincreasing,
)


def make_result():
    return ExperimentResult(
        experiment="figX",
        title="A test experiment",
        x_label="x",
        x=np.array([1.0, 2.0, 3.0]),
        series={"y1": np.array([1.0, 2.0, 3.0]),
                "y2": np.array([3.0, 2.0, 1.0])},
        meta={"param": 42},
    )


class TestExperimentResult:
    def test_series_validated_against_x(self):
        with pytest.raises(ValueError):
            ExperimentResult("e", "t", "x", np.array([1.0, 2.0]),
                             {"y": np.array([1.0])})

    def test_checks_default_pass(self):
        assert make_result().all_checks_pass

    def test_add_check(self):
        result = make_result()
        result.add_check("good", True)
        result.add_check("bad", False)
        assert not result.all_checks_pass
        assert result.failed_checks == ["bad"]

    def test_table_contains_series_and_values(self):
        result = make_result()
        text = result.table()
        assert "figX" in text
        assert "y1" in text and "y2" in text
        assert "param=42" in text

    def test_table_row_count(self):
        result = make_result()
        lines = result.table().splitlines()
        # Title + meta + header + 3 rows.
        assert len(lines) == 6

    def test_table_includes_checks(self):
        result = make_result()
        result.add_check("shape", True)
        assert "shape=PASS" in result.table()

    def test_summary_pass(self):
        assert "[PASS]" in make_result().summary()

    def test_summary_fail_lists_checks(self):
        result = make_result()
        result.add_check("broken", False)
        assert "broken" in result.summary()


class TestMonotoneHelpers:
    def test_nonincreasing(self):
        assert monotone_nonincreasing(np.array([3.0, 2.0, 2.0, 1.0]))
        assert not monotone_nonincreasing(np.array([1.0, 2.0]))

    def test_nondecreasing(self):
        assert monotone_nondecreasing(np.array([1.0, 1.0, 2.0]))
        assert not monotone_nondecreasing(np.array([2.0, 1.0]))

    def test_slack(self):
        assert monotone_nonincreasing(np.array([1.0, 1.05]), slack=0.1)
        assert monotone_nondecreasing(np.array([1.0, 0.95]), slack=0.1)
