"""Tests for repetition sharding (repro.runtime.executor)."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.runtime import executor, faults
from repro.runtime.executor import (
    RetryPolicy,
    active_jobs,
    active_retry_policy,
    collect_failures,
    map_ordered,
    parallel_jobs,
    resolve_jobs,
    retry_policy,
    shard_bounds,
)
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_items(self):
        assert shard_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_covers_every_index_exactly_once(self):
        for n in (1, 7, 16, 33):
            for shards in (1, 2, 3, 8):
                bounds = shard_bounds(n, shards)
                indices = [i for lo, hi in bounds for i in range(lo, hi)]
                assert indices == list(range(n))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(4, 0)


class TestJobResolution:
    def test_default_is_one(self):
        assert active_jobs() == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_ambient_scope_nests_and_restores(self):
        with parallel_jobs(3):
            assert active_jobs() == 3
            with parallel_jobs(2):
                assert active_jobs() == 2
            assert active_jobs() == 3
        assert active_jobs() == 1

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(executor.JOBS_ENV, "5")
        assert active_jobs() == 5


class TestMapOrdered:
    def test_serial_semantics(self):
        assert map_ordered(lambda x: x * x, range(7), jobs=1) == \
            [0, 1, 4, 9, 16, 25, 36]

    def test_parallel_preserves_order(self):
        out = map_ordered(lambda x: x * 2, list(range(23)), jobs=4)
        assert out == [x * 2 for x in range(23)]

    def test_empty_items(self):
        assert map_ordered(lambda x: x, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        def explode(x):
            raise RuntimeError(f"bad item {x}")

        with pytest.raises(RuntimeError, match="bad item"):
            map_ordered(explode, [1, 2, 3], jobs=2)


class TestRetryPolicy:
    def test_defaults(self):
        policy = active_retry_policy()
        assert policy.retries == executor.DEFAULT_RETRIES
        assert policy.shard_timeout is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)

    def test_scope_nests_and_restores(self):
        with retry_policy(retries=5):
            assert active_retry_policy().retries == 5
            with retry_policy(shard_timeout=2.0):
                # Inner scope keeps the outer retries.
                assert active_retry_policy().retries == 5
                assert active_retry_policy().shard_timeout == 2.0
            assert active_retry_policy().shard_timeout is None
        assert active_retry_policy().retries == executor.DEFAULT_RETRIES

    def test_environment_defaults(self, monkeypatch):
        monkeypatch.setenv(executor.RETRIES_ENV, "7")
        monkeypatch.setenv(executor.SHARD_TIMEOUT_ENV, "1.5")
        policy = active_retry_policy()
        assert policy.retries == 7
        assert policy.shard_timeout == 1.5

    def test_invalid_environment_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv(executor.RETRIES_ENV, "many")
        monkeypatch.setenv(executor.SHARD_TIMEOUT_ENV, "-3")
        with pytest.warns(UserWarning):
            policy = active_retry_policy()
        assert policy.retries == executor.DEFAULT_RETRIES
        assert policy.shard_timeout is None


class TestSupervision:
    """Crashed/hung workers degrade throughput, never correctness."""

    def test_injected_crash_is_retried(self):
        with faults.injected("crash-shard=0"), \
                retry_policy(retries=2, backoff_s=0.01), \
                collect_failures() as log:
            out = map_ordered(lambda x: x + 1, list(range(10)), jobs=3)
        assert out == [x + 1 for x in range(10)]
        assert len(log) == 1
        assert log[0]["shard"] == 0
        assert log[0]["action"] == "retry"
        assert "crashed" in log[0]["reason"]

    def test_persistent_crash_falls_back_in_process(self):
        with faults.injected("crash-shard=1:always"), \
                retry_policy(retries=1, backoff_s=0.01), \
                collect_failures() as log:
            out = map_ordered(lambda x: x * x, list(range(9)), jobs=3)
        assert out == [x * x for x in range(9)]
        assert [record["action"] for record in log] == \
            ["retry", "in-process fallback"]

    def test_hung_shard_is_killed_and_recovered(self):
        with faults.injected("slow-shard=0:30"), \
                retry_policy(retries=0, shard_timeout=0.3,
                             backoff_s=0.01), \
                collect_failures() as log:
            start = time.monotonic()
            out = map_ordered(lambda x: -x, list(range(6)), jobs=2)
            elapsed = time.monotonic() - start
        assert out == [-x for x in range(6)]
        assert elapsed < 10  # never waited out the 30 s sleep
        assert log[0]["action"] == "in-process fallback"
        assert "timeout" in log[0]["reason"]

    def test_results_identical_with_and_without_faults(self):
        clean = map_ordered(lambda x: x * 3, list(range(17)), jobs=4)
        with faults.injected("crash-shard=2"), \
                retry_policy(retries=1, backoff_s=0.01):
            faulty = map_ordered(lambda x: x * 3, list(range(17)),
                                 jobs=4)
        assert faulty == clean == [x * 3 for x in range(17)]

    def test_task_exceptions_are_not_retried(self):
        """Deterministic task errors propagate on the first attempt."""
        def explode(x):
            raise ValueError(f"bad item {x}")

        with retry_policy(retries=5, backoff_s=0.01), \
                collect_failures() as log:
            with pytest.raises(ValueError, match="bad item"):
                map_ordered(explode, [1, 2, 3], jobs=2)
        assert log == []

    def test_no_failure_records_on_clean_runs(self):
        with collect_failures() as log:
            map_ordered(lambda x: x, list(range(8)), jobs=2)
        assert log == []

    def test_interrupt_leaves_no_orphaned_workers(self, tmp_path):
        """Ctrl-C mid-run must reap every worker process."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script = textwrap.dedent("""
            import time
            from repro.runtime.executor import map_ordered

            def slow(x):
                time.sleep(60)
                return x

            print("READY", flush=True)
            map_ordered(slow, list(range(4)), jobs=4)
        """)
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            start_new_session=True)
        try:
            assert proc.stdout.readline().strip() == b"READY"
            time.sleep(1.0)  # let the workers spawn and block
            os.kill(proc.pid, signal.SIGINT)
            proc.wait(timeout=15)
            # The leader is gone; nothing else may survive in its
            # process group (workers are its direct children).
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    os.killpg(proc.pid, 0)
                except ProcessLookupError:
                    break  # group empty: every worker was reaped
                time.sleep(0.1)
            else:
                pytest.fail("worker processes survived the interrupt")
        finally:
            proc.stdout.close()
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass


class TestShardedSendTrains:
    """The core guarantee: job count never changes the results."""

    def _wlan_delays(self, jobs):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, 1500))], warmup=0.05)
        train = ProbeTrain.at_rate(30, 5e6, 1500)
        with parallel_jobs(jobs):
            raws = channel.send_trains(train, 12, seed=7)
        return np.vstack([raw.access_delays for raw in raws])

    def test_wlan_bitwise_identical_across_job_counts(self):
        serial = self._wlan_delays(1)
        for jobs in (2, 4):
            assert np.array_equal(serial, self._wlan_delays(jobs))

    def test_fifo_bitwise_identical_across_job_counts(self):
        def run(jobs):
            channel = SimulatedFifoChannel(
                10e6, cross_generator=PoissonGenerator(4e6, 1500),
                warmup=0.05)
            train = ProbeTrain.at_rate(50, 8e6, 1500)
            with parallel_jobs(jobs):
                raws = channel.send_trains(train, 8, seed=3)
            return np.vstack([raw.recv_times for raw in raws])

        assert np.array_equal(run(1), run(3))

    def test_batch_path_drops_scenario_without_queue_logging(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05)
        raws = channel.send_trains(ProbeTrain.at_rate(5, 4e6), 2, seed=1)
        assert all(raw.scenario is None for raw in raws)

    def test_batch_path_keeps_scenario_for_queue_logging(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05,
            log_cross_queues=True)
        raws = channel.send_trains(ProbeTrain.at_rate(5, 4e6), 2, seed=1)
        assert all(raw.scenario is not None for raw in raws)

    def test_single_send_train_still_exposes_scenario(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05)
        raw = channel.send_train(ProbeTrain.at_rate(5, 4e6), seed=1)
        assert raw.scenario is not None
