"""Tests for repetition sharding (repro.runtime.executor)."""

import os

import numpy as np
import pytest

from repro.runtime import executor
from repro.runtime.executor import (
    active_jobs,
    map_ordered,
    parallel_jobs,
    resolve_jobs,
    shard_bounds,
)
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_items(self):
        assert shard_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_covers_every_index_exactly_once(self):
        for n in (1, 7, 16, 33):
            for shards in (1, 2, 3, 8):
                bounds = shard_bounds(n, shards)
                indices = [i for lo, hi in bounds for i in range(lo, hi)]
                assert indices == list(range(n))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(4, 0)


class TestJobResolution:
    def test_default_is_one(self):
        assert active_jobs() == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_ambient_scope_nests_and_restores(self):
        with parallel_jobs(3):
            assert active_jobs() == 3
            with parallel_jobs(2):
                assert active_jobs() == 2
            assert active_jobs() == 3
        assert active_jobs() == 1

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(executor.JOBS_ENV, "5")
        assert active_jobs() == 5


class TestMapOrdered:
    def test_serial_semantics(self):
        assert map_ordered(lambda x: x * x, range(7), jobs=1) == \
            [0, 1, 4, 9, 16, 25, 36]

    def test_parallel_preserves_order(self):
        out = map_ordered(lambda x: x * 2, list(range(23)), jobs=4)
        assert out == [x * 2 for x in range(23)]

    def test_empty_items(self):
        assert map_ordered(lambda x: x, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        def explode(x):
            raise RuntimeError(f"bad item {x}")

        with pytest.raises(RuntimeError, match="bad item"):
            map_ordered(explode, [1, 2, 3], jobs=2)


class TestShardedSendTrains:
    """The core guarantee: job count never changes the results."""

    def _wlan_delays(self, jobs):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, 1500))], warmup=0.05)
        train = ProbeTrain.at_rate(30, 5e6, 1500)
        with parallel_jobs(jobs):
            raws = channel.send_trains(train, 12, seed=7)
        return np.vstack([raw.access_delays for raw in raws])

    def test_wlan_bitwise_identical_across_job_counts(self):
        serial = self._wlan_delays(1)
        for jobs in (2, 4):
            assert np.array_equal(serial, self._wlan_delays(jobs))

    def test_fifo_bitwise_identical_across_job_counts(self):
        def run(jobs):
            channel = SimulatedFifoChannel(
                10e6, cross_generator=PoissonGenerator(4e6, 1500),
                warmup=0.05)
            train = ProbeTrain.at_rate(50, 8e6, 1500)
            with parallel_jobs(jobs):
                raws = channel.send_trains(train, 8, seed=3)
            return np.vstack([raw.recv_times for raw in raws])

        assert np.array_equal(run(1), run(3))

    def test_batch_path_drops_scenario_without_queue_logging(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05)
        raws = channel.send_trains(ProbeTrain.at_rate(5, 4e6), 2, seed=1)
        assert all(raw.scenario is None for raw in raws)

    def test_batch_path_keeps_scenario_for_queue_logging(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05,
            log_cross_queues=True)
        raws = channel.send_trains(ProbeTrain.at_rate(5, 4e6), 2, seed=1)
        assert all(raw.scenario is not None for raw in raws)

    def test_single_send_train_still_exposes_scenario(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.05)
        raw = channel.send_train(ProbeTrain.at_rate(5, 4e6), seed=1)
        assert raw.scenario is not None
