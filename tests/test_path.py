"""Tests for the multi-hop path substrate."""

import numpy as np
import pytest

from repro.analytic.bianchi import BianchiModel
from repro.core.estimators import packet_pair_capacity
from repro.path import NetworkPath, SimulatedPathChannel, WiredHop, WlanHop
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import PacketPair, ProbeTrain


def make_prober(path, repetitions=8):
    channel = SimulatedPathChannel(path)
    return Prober(channel, ProbeSessionConfig(repetitions=repetitions,
                                              ideal_clocks=True))


class TestWiredHop:
    def test_empty_arrivals(self, rng):
        hop = WiredHop(10e6)
        assert len(hop.carry([], rng)) == 0

    def test_departure_timing(self, rng):
        hop = WiredHop(10e6, prop_delay=5e-3)
        train = ProbeTrain.at_rate(3, 1e6, 1250)
        departures = hop.carry(train.packets(start=1.0), rng)
        # Each packet: 1 ms service + 5 ms propagation.
        assert departures[0] == pytest.approx(1.0 + 1e-3 + 5e-3)

    def test_order_preserved(self, rng):
        hop = WiredHop(10e6)
        train = ProbeTrain.at_rate(50, 20e6)
        departures = hop.carry(train.packets(), rng)
        assert np.all(np.diff(departures) >= 0)

    def test_cross_traffic_inflates_delay(self):
        quiet = WiredHop(10e6)
        loaded = WiredHop(10e6, cross_generator=PoissonGenerator(7e6, 1500))
        train = ProbeTrain.at_rate(40, 5e6)
        d_quiet = quiet.carry(train.packets(start=1.0),
                              np.random.default_rng(1))
        d_loaded = loaded.carry(train.packets(start=1.0),
                                np.random.default_rng(1))
        assert d_loaded[-1] > d_quiet[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            WiredHop(10e6, prop_delay=-1.0)

    def test_nominal_capacity(self):
        assert WiredHop(10e6).nominal_capacity_bps(1500) == 10e6


class TestWlanHop:
    def test_order_preserved(self, rng):
        hop = WlanHop([("cross", PoissonGenerator(2e6, 1500))])
        train = ProbeTrain.at_rate(20, 6e6)
        departures = hop.carry(train.packets(start=1.0), rng)
        assert np.all(np.diff(departures) > 0)

    def test_prop_delay_added(self):
        hop_no_delay = WlanHop(prop_delay=0.0)
        hop_delay = WlanHop(prop_delay=10e-3)
        train = ProbeTrain.at_rate(3, 1e6)
        d0 = hop_no_delay.carry(train.packets(start=1.0),
                                np.random.default_rng(2))
        d1 = hop_delay.carry(train.packets(start=1.0),
                             np.random.default_rng(2))
        assert np.allclose(d1 - d0, 10e-3)

    def test_nominal_capacity_matches_airtime(self):
        hop = WlanHop()
        assert 5.8e6 < hop.nominal_capacity_bps(1500) < 6.8e6

    def test_empty_arrivals(self, rng):
        assert len(WlanHop().carry([], rng)) == 0


class TestNetworkPath:
    def test_needs_hops(self):
        with pytest.raises(ValueError):
            NetworkPath([])

    def test_base_delay_sums(self):
        path = NetworkPath([WiredHop(10e6, prop_delay=2e-3),
                            WiredHop(10e6, prop_delay=3e-3)])
        assert path.base_delay() == pytest.approx(5e-3)

    def test_min_capacity(self):
        path = NetworkPath([WiredHop(100e6), WiredHop(10e6), WlanHop()])
        assert path.min_capacity_bps(1500) == pytest.approx(
            WlanHop().nominal_capacity_bps(1500))

    def test_pair_dispersion_set_by_narrow_wired_link(self):
        """Classic result: pair dispersion = bottleneck service time."""
        path = NetworkPath([WiredHop(100e6), WiredHop(10e6),
                            WiredHop(50e6)])
        prober = make_prober(path, repetitions=5)
        estimate = prober.packet_pair_estimate(seed=1)
        assert estimate == pytest.approx(10e6, rel=0.01)

    def test_order_preserved_end_to_end(self, rng):
        path = NetworkPath([
            WiredHop(20e6, cross_generator=PoissonGenerator(8e6, 1500)),
            WlanHop([("cross", PoissonGenerator(2e6, 1500))]),
        ])
        train = ProbeTrain.at_rate(30, 5e6)
        departures = path.carry(train.packets(start=1.0), rng)
        assert np.all(np.diff(departures) > 0)

    def test_reproducible(self):
        path = NetworkPath([WlanHop([("x", PoissonGenerator(2e6, 1500))])])
        channel = SimulatedPathChannel(path)
        train = ProbeTrain.at_rate(5, 2e6)
        a = channel.send_train(train, seed=3)
        b = channel.send_train(train, seed=3)
        assert np.array_equal(a.recv_times, b.recv_times)


class TestAccessNetworkScenario:
    """Wired backbone + wireless last mile: the reference [3] setting."""

    @pytest.fixture(scope="class")
    def path(self):
        return NetworkPath([
            WiredHop(100e6, prop_delay=1e-3),
            WlanHop([("neighbour", PoissonGenerator(4e6, 1500))]),
        ])

    def test_pair_estimate_tracks_wireless_b_not_capacity(self, path):
        prober = make_prober(path, repetitions=60)
        estimate = prober.packet_pair_estimate(seed=4)
        bianchi = BianchiModel()
        # Far below both the wired 100 Mb/s and the wireless C.
        assert estimate < 0.97 * bianchi.capacity()
        assert estimate > bianchi.fair_share(2)

    def test_rate_scan_knee_at_wireless_fair_share(self, path):
        prober = make_prober(path, repetitions=6)
        curve = prober.rate_scan(
            np.array([1e6, 2e6, 3e6, 4.5e6, 6e6]), n=40, seed=5)
        knee = curve.knee_rate(tolerance=0.08)
        fair_share = BianchiModel().fair_share(2)
        assert knee == pytest.approx(fair_share, rel=0.45)


class TestPathVectorBackend:
    """The multihop chaining layer (carry_batch + dispatch)."""

    def _path(self):
        return NetworkPath([
            WiredHop(100e6, prop_delay=1e-3),
            WlanHop([("neighbour", PoissonGenerator(4e6, 1500))]),
        ])

    def test_wired_hop_batch_replays_event_path_exactly(self):
        hop = WiredHop(10e6, cross_generator=PoissonGenerator(5e6, 1500))
        train = ProbeTrain.at_rate(30, 6e6, 1500)
        times = train.arrival_times(start=1.0)
        seeds = [11, 12, 13]
        batch = hop.carry_batch(
            np.broadcast_to(times, (3, 30)).copy(), 1500, seeds)
        for r, seed in enumerate(seeds):
            event = hop.carry(train.packets(start=1.0),
                              np.random.default_rng(seed))
            assert np.allclose(batch[r], event, atol=1e-9)

    def test_scenario_spec_compiled_from_hops(self):
        channel = SimulatedPathChannel(self._path())
        spec = channel.scenario_spec()
        assert spec.system == "path"
        assert spec.cross_traffic == "poisson"
        assert channel.resolve_backend("auto").kernel == \
            "multihop chain kernel"

    def test_unknown_hop_type_demotes_to_event(self):
        from repro.path.hops import PathHop

        class TeleportHop(PathHop):
            def carry(self, arrivals, rng):
                return np.array([t for t, _ in arrivals])

            def nominal_capacity_bps(self, size_bytes):
                return 1e9

        channel = SimulatedPathChannel(NetworkPath([TeleportHop()]))
        resolution = channel.resolve_backend("auto")
        assert resolution.name == "event"
        assert "TeleportHop" in resolution.fallback
        with pytest.raises(ValueError, match="no vector kernel"):
            channel.send_trains_batch(ProbeTrain.at_rate(4, 2e6), 2)

    def test_retry_limited_wlan_hop_rides_the_chain_kernel(self):
        path = NetworkPath([
            WlanHop([("n", PoissonGenerator(2e6, 1500))], retry_limit=4),
        ])
        channel = SimulatedPathChannel(path)
        resolution = channel.resolve_backend("auto")
        assert resolution.name == "vector"
        assert resolution.kernel == "multihop chain kernel"
        batch = channel.send_trains_batch(ProbeTrain.at_rate(6, 3e6, 1500),
                                          3, seed=7)
        assert batch.recv_times.shape == (3, 6)
        assert np.all(np.diff(batch.recv_times, axis=1) > 0)

    def test_batch_rows_are_plausible_trains(self):
        channel = SimulatedPathChannel(self._path())
        train = ProbeTrain.at_rate(10, 3e6, 1500)
        batch = channel.send_trains_batch(train, 6, seed=5)
        assert batch.recv_times.shape == (6, 10)
        # FIFO order survives the whole chain, and every departure
        # trails its own send instant by at least the wired service
        # plus both propagation-free airtime floors.
        assert np.all(np.diff(batch.recv_times, axis=1) > 0)
        assert np.all(batch.recv_times > batch.send_times)
        assert np.isnan(batch.access_delays).all()

    def test_prober_rides_vector_backend(self):
        channel = SimulatedPathChannel(self._path())
        prober = Prober(channel, ProbeSessionConfig(
            repetitions=8, ideal_clocks=True, backend="vector"))
        rate = prober.dispersion_rate(10, 3e6, seed=3)
        assert 1e6 < rate < 12e6

    def test_packet_pairs_cross_the_chain(self):
        channel = SimulatedPathChannel(self._path())
        pairs = channel.send_trains(PacketPair(1500), 10, seed=9,
                                    backend="vector")
        estimate = packet_pair_capacity(
            [TrainMeasurementAdapter.measurement(r) for r in pairs])
        assert 1e6 < estimate < 20e6

    def test_registry_experiment_runs_on_vector(self):
        from repro.runtime import registry
        report = registry.get("ext-multihop").run(
            scale=0.2, seed=4, backend="vector",
            overrides={"n_packets": 12,
                       "probe_rates_bps": [1e6, 2e6, 3e6]})
        assert report.kwargs["backend"] == "vector"
        assert report.result.meta["backend"] == "vector"


class TrainMeasurementAdapter:
    """Tiny adapter: RawTrainResult -> TrainMeasurement."""

    @staticmethod
    def measurement(raw):
        from repro.core.dispersion import TrainMeasurement
        return TrainMeasurement(send_times=raw.send_times,
                                recv_times=raw.recv_times,
                                size_bytes=raw.size_bytes)


class TestMixedFifoPath:
    def test_mixed_fifo_across_hops_stays_vectorizable(self):
        """Each hop resolves its own FIFO generator, so hops carrying
        different (individually supported) FIFO models must not demote
        the path."""
        from repro.traffic.generators import CBRGenerator
        path = NetworkPath([
            WlanHop([("a", PoissonGenerator(2e6, 1500))],
                    fifo_cross=PoissonGenerator(1e6, 1500)),
            WlanHop([("b", PoissonGenerator(2e6, 1500))],
                    fifo_cross=CBRGenerator(1e6, 1500)),
        ])
        channel = SimulatedPathChannel(path)
        spec = channel.scenario_spec()
        assert spec.fifo_cross == "mixed"
        assert channel.resolve_backend("auto").kernel == \
            "multihop chain kernel"
