"""Tests for the steady-state rate-response curves and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.metrics import (
    achievable_throughput_from_curve,
    available_bandwidth,
    fluid_achievable_throughput,
)
from repro.analytic.rate_response import (
    achievable_throughput_complete,
    complete_rate_response,
    csma_rate_response,
    dispersion_rate_response,
    fifo_rate_response,
)


class TestFifoRateResponse:
    def test_diagonal_below_available(self):
        ri = np.array([1e6, 2e6, 3e6])
        ro = fifo_rate_response(ri, capacity=10e6, available_bandwidth=4e6)
        assert np.allclose(ro, ri)

    def test_sharing_above_available(self):
        ri = np.array([8e6])
        ro = fifo_rate_response(ri, 10e6, 4e6)
        assert ro[0] == pytest.approx(10e6 * 8e6 / (8e6 + 6e6))

    def test_continuous_at_knee(self):
        eps = 1.0
        below = fifo_rate_response(np.array([4e6 - eps]), 10e6, 4e6)[0]
        above = fifo_rate_response(np.array([4e6 + eps]), 10e6, 4e6)[0]
        assert below == pytest.approx(above, rel=1e-5)

    def test_asymptote_is_capacity(self):
        ro = fifo_rate_response(np.array([1e12]), 10e6, 4e6)[0]
        assert ro == pytest.approx(10e6, rel=1e-4)

    def test_zero_available_bandwidth(self):
        ro = fifo_rate_response(np.array([5e6]), 10e6, 0.0)
        assert ro[0] < 5e6

    def test_validation(self):
        with pytest.raises(ValueError):
            fifo_rate_response(np.array([1.0]), -1.0, 0.0)
        with pytest.raises(ValueError):
            fifo_rate_response(np.array([1.0]), 10e6, 11e6)
        with pytest.raises(ValueError):
            fifo_rate_response(np.array([-1.0]), 10e6, 4e6)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e5, max_value=1e8),
           st.floats(min_value=0.0, max_value=1.0))
    def test_output_never_exceeds_input_or_capacity(self, capacity, frac):
        available = capacity * frac
        ri = np.linspace(1e4, 2 * capacity, 50)
        ro = fifo_rate_response(ri, capacity, available)
        assert np.all(ro <= ri + 1e-6)
        assert np.all(ro <= capacity + 1e-6)
        assert np.all(np.diff(ro) >= -1e-6)  # monotone non-decreasing


class TestCsmaRateResponse:
    def test_min_form(self):
        ri = np.array([1e6, 3e6, 9e6])
        ro = csma_rate_response(ri, achievable_throughput=3.4e6)
        assert np.allclose(ro, [1e6, 3e6, 3.4e6])

    def test_validation(self):
        with pytest.raises(ValueError):
            csma_rate_response(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            csma_rate_response(np.array([-1.0]), 1e6)


class TestCompleteRateResponse:
    def test_reduces_to_csma_without_fifo(self):
        ri = np.linspace(1e5, 1e7, 40)
        complete = complete_rate_response(ri, fair_share=3.4e6, u_fifo=0.0)
        simple = csma_rate_response(ri, 3.4e6)
        assert np.allclose(complete, simple)

    def test_continuous_at_b(self):
        fair_share, u_fifo = 3.4e6, 0.3
        b = fair_share * (1 - u_fifo)
        eps = 1.0
        below = complete_rate_response(np.array([b - eps]), fair_share, u_fifo)
        above = complete_rate_response(np.array([b + eps]), fair_share, u_fifo)
        assert below[0] == pytest.approx(above[0], rel=1e-5)

    def test_asymptote_is_fair_share(self):
        ro = complete_rate_response(np.array([1e12]), 3.4e6, 0.3)
        assert ro[0] == pytest.approx(3.4e6, rel=1e-4)

    def test_achievable_throughput_eq5(self):
        assert achievable_throughput_complete(4e6, 0.25) == pytest.approx(3e6)

    def test_more_fifo_traffic_lower_output(self):
        ri = np.array([8e6])
        light = complete_rate_response(ri, 3.4e6, 0.1)[0]
        heavy = complete_rate_response(ri, 3.4e6, 0.5)[0]
        assert heavy < light

    def test_validation(self):
        with pytest.raises(ValueError):
            complete_rate_response(np.array([1.0]), 0.0, 0.1)
        with pytest.raises(ValueError):
            complete_rate_response(np.array([1.0]), 1e6, 1.0)
        with pytest.raises(ValueError):
            achievable_throughput_complete(1e6, -0.1)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e5, max_value=1e7),
           st.floats(min_value=0.0, max_value=0.9))
    def test_monotone_and_bounded(self, fair_share, u_fifo):
        ri = np.linspace(1e4, 3e7, 60)
        ro = complete_rate_response(ri, fair_share, u_fifo)
        assert np.all(np.diff(ro) >= -1e-6)
        assert np.all(ro <= ri + 1e-6)
        assert np.all(ro <= fair_share + 1e-6)


class TestDispersionRateResponse:
    def test_diagonal_at_large_gap(self):
        gi = np.array([0.1])
        go = dispersion_rate_response(gi, 1500, 3.4e6, 0.0)
        assert go[0] == pytest.approx(0.1)

    def test_plateau_at_small_gap_without_fifo(self):
        gi = np.array([1e-4])
        go = dispersion_rate_response(gi, 1500, 3.4e6, 0.0)
        assert go[0] == pytest.approx(1500 * 8 / 3.4e6)

    def test_fifo_term_at_small_gap(self):
        gi = np.array([1e-3])
        go = dispersion_rate_response(gi, 1500, 3.4e6, 0.4)
        assert go[0] == pytest.approx(1500 * 8 / 3.4e6 + 0.4e-3)

    def test_consistent_with_rate_domain(self):
        """L/E[gO] from eq (20) equals ro from eq (4) at every rate."""
        size = 1500
        fair_share, u_fifo = 3.3e6, 0.25
        rates = np.linspace(2e5, 1e7, 100)
        gaps = size * 8 / rates
        go = dispersion_rate_response(gaps, size, fair_share, u_fifo)
        ro_from_gap = size * 8 / go
        ro = complete_rate_response(rates, fair_share, u_fifo)
        assert np.allclose(ro_from_gap, ro, rtol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            dispersion_rate_response(np.array([0.1]), 0, 1e6, 0.0)
        with pytest.raises(ValueError):
            dispersion_rate_response(np.array([-0.1]), 1500, 1e6, 0.0)


class TestMetrics:
    def test_available_bandwidth(self):
        assert available_bandwidth(10e6, 4e6) == 6e6

    def test_available_bandwidth_clipped(self):
        assert available_bandwidth(10e6, 12e6) == 0.0

    def test_available_bandwidth_validation(self):
        with pytest.raises(ValueError):
            available_bandwidth(0.0, 1e6)
        with pytest.raises(ValueError):
            available_bandwidth(1e6, -1.0)

    def test_achievable_from_curve(self):
        ri = np.array([1e6, 2e6, 3e6, 4e6, 5e6])
        ro = np.array([1e6, 2e6, 3e6, 3.3e6, 3.4e6])
        assert achievable_throughput_from_curve(ri, ro) == 3e6

    def test_achievable_tolerance(self):
        ri = np.array([1e6, 2e6])
        ro = np.array([0.97e6, 1.8e6])
        assert achievable_throughput_from_curve(ri, ro, tolerance=0.05) == 1e6
        assert achievable_throughput_from_curve(ri, ro, tolerance=0.15) == 2e6

    def test_achievable_no_conforming_point(self):
        with pytest.raises(ValueError):
            achievable_throughput_from_curve(
                np.array([5e6]), np.array([2e6]))

    def test_achievable_validation(self):
        with pytest.raises(ValueError):
            achievable_throughput_from_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            achievable_throughput_from_curve(np.array([0.0]),
                                             np.array([0.0]))

    def test_fluid_achievable_no_contention_is_capacity(self):
        assert fluid_achievable_throughput(6.5e6, 0.0, 3.3e6) == 6.5e6

    def test_fluid_achievable_saturated_is_fair_share(self):
        assert fluid_achievable_throughput(6.5e6, 5e6, 3.3e6) == 3.3e6

    def test_fluid_achievable_middle_region(self):
        assert fluid_achievable_throughput(6.5e6, 2e6, 3.3e6) \
            == pytest.approx(4.5e6)

    def test_fluid_achievable_validation(self):
        with pytest.raises(ValueError):
            fluid_achievable_throughput(6.5e6, 0.0, 7e6)
