"""Tests for the dispersion-based estimators."""

import numpy as np
import pytest

from repro.core.dispersion import TrainMeasurement
from repro.core.estimators import (
    RateResponseCurve,
    achievable_throughput,
    mean_output_rate,
    packet_pair_capacity,
    rate_response_from_measurements,
    train_dispersion_rate,
)


def synthetic_measurement(gaps_out, gap_in=1e-3, size=1500):
    """Build a measurement with prescribed output gaps."""
    n = len(gaps_out) + 1
    send = np.arange(n) * gap_in
    recv = np.concatenate([[0.002], 0.002 + np.cumsum(gaps_out)])
    return TrainMeasurement(send, recv, size)


class TestPacketPairCapacity:
    def test_deterministic_pair(self):
        m = synthetic_measurement([1e-3])
        assert packet_pair_capacity([m]) == pytest.approx(12e6)

    def test_average_over_pairs(self):
        pairs = [synthetic_measurement([1e-3]),
                 synthetic_measurement([3e-3])]
        assert packet_pair_capacity(pairs) == pytest.approx(1500 * 8 / 2e-3)

    def test_uses_only_first_two_packets(self):
        train = synthetic_measurement([1e-3, 50e-3, 50e-3])
        assert packet_pair_capacity([train]) == pytest.approx(12e6)

    def test_fifo_pair_measures_capacity(self):
        """On an empty wired link, pair dispersion == service time."""
        from repro.testbed.channel import SimulatedFifoChannel
        from repro.traffic.probe import PacketPair
        channel = SimulatedFifoChannel(10e6)
        raws = channel.send_trains(PacketPair(), 10, seed=1)
        pairs = [TrainMeasurement(r.send_times, r.recv_times, r.size_bytes)
                 for r in raws]
        assert packet_pair_capacity(pairs) == pytest.approx(10e6, rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            packet_pair_capacity([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            packet_pair_capacity([synthetic_measurement([1e-3], size=1500),
                                  synthetic_measurement([1e-3], size=40)])


class TestTrainDispersionRate:
    def test_single_train(self):
        m = synthetic_measurement([1e-3, 1e-3, 2e-3])
        expected = 1500 * 8 / np.mean([1e-3, 1e-3, 2e-3])
        assert train_dispersion_rate([m]) == pytest.approx(expected)

    def test_averages_train_gaps(self):
        trains = [synthetic_measurement([1e-3, 1e-3]),
                  synthetic_measurement([3e-3, 3e-3])]
        assert train_dispersion_rate(trains) == pytest.approx(
            1500 * 8 / 2e-3)

    def test_mean_output_rate_close_to_dispersion_rate(self):
        trains = [synthetic_measurement([2e-3] * 10)]
        assert mean_output_rate(trains) == pytest.approx(
            train_dispersion_rate(trains), rel=1e-9)


class TestRateResponseCurve:
    def make_curve(self):
        return RateResponseCurve(
            input_rates=np.array([1e6, 2e6, 3e6, 4e6, 6e6]),
            output_rates=np.array([1e6, 2e6, 2.95e6, 3.2e6, 3.3e6]),
            size_bytes=1500, trains_per_rate=10)

    def test_achievable_throughput(self):
        assert self.make_curve().achievable_throughput() == 3e6

    def test_knee_rate(self):
        assert self.make_curve().knee_rate() == 4e6

    def test_knee_is_last_rate_when_no_deviation(self):
        curve = RateResponseCurve(np.array([1e6, 2e6]),
                                  np.array([1e6, 2e6]), 1500, 5)
        assert curve.knee_rate() == 2e6

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            RateResponseCurve(np.array([1.0]), np.array([1.0, 2.0]), 1500, 1)


class TestRateResponseAssembly:
    def test_grouping(self):
        by_rate = {
            2e6: [synthetic_measurement([6e-3, 6e-3], gap_in=6e-3)],
            6e6: [synthetic_measurement([3e-3, 3e-3], gap_in=2e-3)],
        }
        curve = rate_response_from_measurements(by_rate)
        assert list(curve.input_rates) == [2e6, 6e6]
        assert curve.output_rates[0] == pytest.approx(2e6)
        assert curve.output_rates[1] == pytest.approx(4e6)

    def test_achievable_from_grouped(self):
        by_rate = {
            2e6: [synthetic_measurement([6e-3], gap_in=6e-3)],
            6e6: [synthetic_measurement([3e-3], gap_in=2e-3)],
        }
        assert achievable_throughput(by_rate) == 2e6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rate_response_from_measurements({})

    def test_mixed_sizes_rejected(self):
        by_rate = {
            1e6: [synthetic_measurement([1e-3], size=1500)],
            2e6: [synthetic_measurement([1e-3], size=40)],
        }
        with pytest.raises(ValueError):
            rate_response_from_measurements(by_rate)
