"""Tests for descriptive statistics."""

import numpy as np
import pytest

from repro.stats.descriptive import (
    bootstrap_ci,
    histogram,
    mean_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        stats = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_std_sample(self):
        stats = summarize(np.array([1.0, 3.0]))
        assert stats.std == pytest.approx(np.sqrt(2))

    def test_single_observation(self):
        stats = summarize(np.array([5.0]))
        assert stats.std == 0.0
        assert np.isnan(stats.stderr)

    def test_stderr(self):
        stats = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.stderr == pytest.approx(stats.std / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))


class TestMeanConfidenceInterval:
    def test_contains_mean(self, rng):
        sample = rng.normal(5, 1, 100)
        mean, lo, hi = mean_confidence_interval(sample)
        assert lo < mean < hi
        assert mean == pytest.approx(np.mean(sample))

    def test_wider_at_higher_confidence(self, rng):
        sample = rng.normal(0, 1, 50)
        _, lo95, hi95 = mean_confidence_interval(sample, 0.95)
        _, lo99, hi99 = mean_confidence_interval(sample, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_coverage(self, rng):
        covered = 0
        for _ in range(200):
            sample = rng.normal(0, 1, 30)
            _, lo, hi = mean_confidence_interval(sample, 0.95)
            if lo <= 0 <= hi:
                covered += 1
        assert covered / 200 > 0.88

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval(np.array([1.0]))
        with pytest.raises(ValueError):
            mean_confidence_interval(np.array([1.0, 2.0]), confidence=1.5)


class TestBootstrapCi:
    def test_contains_point(self, rng):
        sample = rng.exponential(2.0, 100)
        point, lo, hi = bootstrap_ci(sample, n_boot=200)
        assert lo <= point <= hi

    def test_custom_statistic(self, rng):
        sample = rng.normal(0, 1, 100)
        point, lo, hi = bootstrap_ci(sample, statistic=np.median, n_boot=200)
        assert point == pytest.approx(np.median(sample))

    def test_deterministic_with_seed(self, rng):
        sample = rng.normal(0, 1, 50)
        first = bootstrap_ci(sample, seed=3)
        second = bootstrap_ci(sample, seed=3)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), confidence=0.0)


class TestHistogram:
    def test_counts_sum_to_n(self, rng):
        sample = rng.normal(0, 1, 500)
        counts, edges = histogram(sample, bins=20)
        assert counts.sum() == 500
        assert len(edges) == 21

    def test_explicit_range(self):
        counts, edges = histogram(np.array([1.0, 2.0, 3.0]), bins=2,
                                  range_=(0.0, 4.0))
        assert edges[0] == 0.0
        assert edges[-1] == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram(np.array([]))
