"""Tests for sweep parsing and grid expansion (repro.runtime.sweep)."""

import types

import pytest

from repro.runtime.sweep import (expand_grid, grid_size, parse_param_spec,
                                 parse_value)


class TestParseValue:
    def test_int(self):
        assert parse_value("400") == 400
        assert isinstance(parse_value("400"), int)

    def test_float_and_scientific(self):
        assert parse_value("0.5") == 0.5
        assert parse_value("5e6") == 5e6

    def test_string_fallback(self):
        assert parse_value("dcf") == "dcf"

    def test_strips_whitespace(self):
        assert parse_value("  7 ") == 7

    @pytest.mark.parametrize(
        "text", ["nan", "NaN", "inf", "-inf", "Infinity", "1e999"])
    def test_non_finite_rejected(self, text):
        with pytest.raises(ValueError, match="non-finite"):
            parse_value(text)

    def test_non_finite_rejected_in_param_spec(self):
        with pytest.raises(ValueError, match="non-finite"):
            parse_param_spec("rate_bps=1e6,nan")


class TestParseParamSpec:
    def test_basic(self):
        assert parse_param_spec("repetitions=100,400,1600") == \
            ("repetitions", [100, 400, 1600])

    def test_single_value(self):
        assert parse_param_spec("n_packets=250") == ("n_packets", [250])

    def test_mixed_types(self):
        name, values = parse_param_spec("probe_rate_bps=5e6,8e6")
        assert name == "probe_rate_bps"
        assert values == [5e6, 8e6]

    @pytest.mark.parametrize("bad", ["", "name", "=1,2", "name=",
                                     "name=,,"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError, match="malformed"):
            parse_param_spec(bad)


class TestExpandGrid:
    def test_single_param(self):
        grid = list(expand_grid([("repetitions", [100, 400])]))
        assert grid == [{"repetitions": 100}, {"repetitions": 400}]

    def test_cartesian_product_last_param_fastest(self):
        grid = list(expand_grid([("a", [1, 2]), ("b", ["x", "y"])]))
        assert grid == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_is_a_generator(self):
        # A 10^18-point atlas must be *plannable* without 10^18 dicts
        # in memory: expansion streams, and the count comes from
        # arithmetic, not materialisation.
        grid = expand_grid([("a", list(range(10)))] )
        assert isinstance(grid, types.GeneratorType)
        assert next(grid) == {"a": 0}

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            expand_grid([("a", [1]), ("a", [2])])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid([("a", [])])

    def test_validation_is_eager(self):
        # The ValueError must fire at the call, not at first next() —
        # the CLI reports malformed specs before any work starts.
        with pytest.raises(ValueError, match="duplicate"):
            expand_grid([("a", [1]), ("a", [2])])  # never iterated


class TestGridSize:
    def test_counts_without_expanding(self):
        specs = [("a", list(range(1000))), ("b", list(range(1000))),
                 ("c", list(range(1000)))]
        assert grid_size(specs) == 10 ** 9

    def test_matches_expansion(self):
        specs = [("a", [1, 2, 3]), ("b", ["x", "y"])]
        assert grid_size(specs) == len(list(expand_grid(specs)))

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="no values"):
            grid_size([("a", [])])
