"""Tests for the fused sweep engine: plan, store, resume, refinement.

The contracts pinned here are the ones ``repro sweep --store`` sells:

* batch fusion never changes results — every fused payload is
  bit-identical to the standalone ``Experiment.run`` at that point,
  for forced and auto-resolved backends alike;
* the columnar store round-trips rows and payloads losslessly in both
  format tiers (parquet / npz), survives torn index tails, and its
  ``completed()`` answer honours the code-version gate;
* a killed fused sweep resumes from the store, re-executing only the
  incomplete points (chaos-marked subprocess test);
* adaptive refinement places its added points around the response
  curve's knee, not uniformly.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.results import ExperimentResult
from repro.backends import dispatch
from repro.runtime import registry
from repro.runtime import store as store_mod
from repro.runtime.cache import code_version
from repro.runtime.executor import map_batched
from repro.runtime.manifest import Manifest, PointRecord, point_id
from repro.runtime.store import StoreError, SweepStore
from repro.runtime.sweep import (SweepPlan, _adapt_axis, point_metric,
                                 refine_candidates, run_adaptive,
                                 run_plan)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: Cheap eq1 configuration: one probe rate, a short train, two reps —
#: sub-millisecond per point, yet it exercises the full kernel path.
CHEAP = {"probe_rates_bps": [4e6], "n_packets": 24, "repetitions": 2}


def cheap_grid(reps=(2, 3), packets=(24, 32)):
    """A small eq1 grid over (repetitions, n_packets)."""
    return [dict(CHEAP, repetitions=r, n_packets=p)
            for r in reps for p in packets]


def make_store(tmp_path, params=("repetitions", "n_packets"),
               experiment="eq1"):
    return SweepStore.create(tmp_path / "store", experiment,
                             params=list(params))


def execute(plan, store, manifest=None, **kwargs):
    """Drain run_plan, returning the windows."""
    return list(run_plan(plan, store=store, manifest=manifest, **kwargs))


@pytest.fixture
def npz_only(monkeypatch):
    """Force the npz tier regardless of what is installed."""
    monkeypatch.setattr(store_mod, "_FORCE_AVAILABLE", False)


# ----------------------------------------------------------------------
# Bit-identity of fused execution
# ----------------------------------------------------------------------

class TestFusedBitIdentity:
    @pytest.mark.parametrize("backend", ["auto", "event", "vector"])
    def test_fused_payload_matches_standalone_run(self, tmp_path,
                                                  npz_only, backend):
        exp = registry.get("eq1")
        grid = cheap_grid()
        store = make_store(tmp_path)
        plan = SweepPlan(exp, iter(grid), seed=7, backend=backend)
        windows = execute(plan, store)
        assert sum(len(w.outcomes) for w in windows) == len(grid)
        for overrides in grid:
            kwargs = exp.kwargs_for(seed=7, overrides=overrides,
                                    backend=backend)
            stored = store.payload(point_id("eq1", kwargs))
            assert stored is not None
            direct = exp.run(seed=7, overrides=overrides,
                             backend=backend).result
            assert json.dumps(stored.to_dict(), sort_keys=True) == \
                json.dumps(direct.to_dict(), sort_keys=True)
            # Annotation parity too: the fused row records the same
            # resolved backend a standalone run reports.
            assert stored.meta.get("backend") == \
                direct.meta.get("backend")

    def test_per_point_backend_override_takes_full_path(self, tmp_path,
                                                        npz_only):
        # A point overriding ``backend`` itself must go through the
        # full kwargs_for resolution (its own validation semantics),
        # and still match the standalone run bit for bit.
        exp = registry.get("eq1")
        grid = [dict(CHEAP, backend="event"),
                dict(CHEAP, backend="vector")]
        store = SweepStore.create(tmp_path / "store", "eq1",
                                  params=["backend"])
        plan = SweepPlan(exp, iter(grid), seed=3, backend="auto")
        execute(plan, store)
        groups = {w.group for w in execute(
            SweepPlan(exp, iter(grid), seed=3, backend="auto"), store)}
        for overrides in grid:
            kwargs = exp.kwargs_for(seed=3, overrides=overrides,
                                    backend="auto")
            stored = store.payload(point_id("eq1", kwargs))
            direct = exp.run(seed=3, overrides=overrides,
                             backend="auto").result
            assert json.dumps(stored.to_dict(), sort_keys=True) == \
                json.dumps(direct.to_dict(), sort_keys=True)
        # The two forced backends landed in two distinct fused groups.
        assert len(groups) == 2

    def test_runner_exception_becomes_error_row(self, tmp_path,
                                                npz_only):
        exp = registry.get("eq1")
        grid = [dict(CHEAP, no_such_kwarg=1)]
        store = SweepStore.create(tmp_path / "store", "eq1",
                                  params=["no_such_kwarg"])
        windows = execute(SweepPlan(exp, iter(grid), seed=1), store)
        (outcome,) = windows[0].outcomes
        assert outcome["status"] == "error"
        assert "no_such_kwarg" in outcome["error"]
        rows = store.rows(columns=["status", "error"])
        assert rows[0]["status"] == "error"


class TestPlanStructure:
    def test_windows_bound_memory(self, npz_only):
        exp = registry.get("eq1")
        grid = [dict(CHEAP, repetitions=r) for r in range(2, 12)]
        plan = SweepPlan(exp, iter(grid), seed=1)
        windows = list(plan.windows(window=4))
        assert [len(w.points) for w in windows] == [4, 4, 2]
        assert all(len({p.group for p in w.points}) == 1
                   for w in windows)
        # group_counts filled during streaming (--report reads it).
        assert sum(plan.group_counts.values()) == len(grid)

    def test_dispatch_resolved_once_per_request(self, monkeypatch):
        exp = registry.get("eq1")
        calls = []
        original = dispatch.resolve

        def counting(spec, requested="auto"):
            calls.append(requested)
            return original(spec, requested)

        monkeypatch.setattr(dispatch, "resolve", counting)
        grid = [dict(CHEAP, repetitions=r) for r in range(2, 22)]
        plan = SweepPlan(exp, iter(grid), seed=1, backend="auto")
        list(plan.planned())
        # A handful of resolutions for the plan's annotation and the
        # one memoised group — never one (or more) per point.
        assert len(calls) < len(grid) // 2

    def test_fusion_key_and_grouping(self):
        exp = registry.get("eq1")
        auto = exp.resolve_backend("auto")
        event = exp.resolve_backend("event")
        assert dispatch.fusion_key(auto) == (auto.name, auto.kernel)
        groups = dispatch.group_by_resolution(
            exp.scenario, ["auto", "auto", "event", "auto"])
        assert groups[dispatch.fusion_key(auto)] == [0, 1, 3]
        assert groups[dispatch.fusion_key(event)] == [2]


# ----------------------------------------------------------------------
# Columnar store
# ----------------------------------------------------------------------

def _rows(n, status="done", start=0):
    return [{"point_id": f"p{start + i:03d}", "label": f"r={i}",
             "status": status, "elapsed_s": 0.5, "error": "",
             "payload": json.dumps({"experiment": "eq1", "title": "t",
                                    "x_label": "x", "x": [float(i)],
                                    "series": {"m": [float(i)]},
                                    "meta": {}, "checks": {}}),
             "repetitions": start + i, "n_packets": 24}
            for i in range(n)]


class TestSweepStoreFormats:
    def test_npz_round_trip(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        assert store.format == "npz"
        store.append(_rows(3))
        assert store.flush() is not None
        reopened = SweepStore.open(tmp_path / "store")
        rows = reopened.rows()
        assert [r["point_id"] for r in rows] == ["p000", "p001", "p002"]
        assert [r["repetitions"] for r in rows] == [0, 1, 2]
        result = reopened.payload("p001")
        assert isinstance(result, ExperimentResult)
        assert result.series["m"].tolist() == [1.0]

    @pytest.mark.skipif(not store_mod.available(),
                        reason="pyarrow not installed")
    def test_parquet_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        assert store.format == "parquet"
        store.append(_rows(3))
        store.flush()
        reopened = SweepStore.open(tmp_path / "store")
        rows = reopened.rows()
        assert [r["point_id"] for r in rows] == ["p000", "p001", "p002"]
        assert [r["repetitions"] for r in rows] == [0, 1, 2]
        assert reopened.payload("p002").x.tolist() == [2.0]

    def test_parquet_request_without_pyarrow_fails(self, tmp_path,
                                                   npz_only):
        with pytest.raises(StoreError, match="pyarrow"):
            SweepStore.create(tmp_path / "store", "eq1",
                              params=["a"], fmt="parquet")

    def test_opening_parquet_store_without_pyarrow_fails(
            self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        root.mkdir()
        header = {"kind": "header", "store_version": 1,
                  "experiment": "eq1", "format": "parquet",
                  "params": ["a"]}
        (root / "index.jsonl").write_text(json.dumps(header) + "\n")
        monkeypatch.setattr(store_mod, "_FORCE_AVAILABLE", False)
        with pytest.raises(StoreError, match="pyarrow"):
            SweepStore.open(root)

    def test_availability_hook(self, monkeypatch):
        monkeypatch.setattr(store_mod, "_FORCE_AVAILABLE", True)
        assert store_mod.available()
        assert store_mod.unavailable_reason() is None
        monkeypatch.setattr(store_mod, "_FORCE_AVAILABLE", False)
        assert not store_mod.available()
        assert "pyarrow" in store_mod.unavailable_reason()


class TestSweepStoreContracts:
    def test_schema_mismatch_rejected(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        with pytest.raises(StoreError, match="missing"):
            store.append([{"point_id": "p", "status": "done"}])
        with pytest.raises(StoreError, match="unknown"):
            store.append([dict(_rows(1)[0], surprise=1)])

    def test_param_fixed_column_collision_rejected(self, tmp_path,
                                                   npz_only):
        with pytest.raises(StoreError, match="collide"):
            SweepStore.create(tmp_path / "store", "eq1",
                              params=["status"])

    def test_open_missing_store_fails(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            SweepStore.open(tmp_path / "nowhere")

    def test_torn_index_tail_dropped(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        store.append(_rows(2))
        store.flush()
        index = tmp_path / "store" / "index.jsonl"
        with open(index, "a") as handle:
            handle.write('{"kind": "chunk", "file": "chu')  # torn
        reopened = SweepStore.open(tmp_path / "store")
        assert len(reopened.chunks) == 1
        assert reopened.point_ids() == {"p000", "p001"}

    def test_mid_file_damage_raises(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        store.append(_rows(1))
        store.flush()
        index = tmp_path / "store" / "index.jsonl"
        lines = index.read_text().splitlines()
        index.write_text("\n".join([lines[0], "garbage", lines[1]])
                         + "\n")
        with pytest.raises(StoreError, match="not\\s+JSON"):
            SweepStore.open(tmp_path / "store")

    def test_indexed_chunk_with_missing_file_dropped(self, tmp_path,
                                                     npz_only):
        store = make_store(tmp_path)
        store.append(_rows(2))
        chunk = store.flush()
        chunk.unlink()  # crash-window orphan in reverse / manual damage
        reopened = SweepStore.open(tmp_path / "store")
        assert reopened.chunks == []
        assert reopened.completed() == set()

    def test_completed_requires_done_and_current_version(self, tmp_path,
                                                         npz_only):
        store = make_store(tmp_path)
        store.append(_rows(2, status="done"))
        store.append(_rows(1, status="failed", start=2))
        store.flush()
        assert store.completed() == {"p000", "p001"}
        # A code edit (different version) invalidates every row.
        assert store.completed(version="somethingelse") == set()
        assert store.completed(version=code_version()) == \
            {"p000", "p001"}

    def test_last_chunk_wins_dedup(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        store.append(_rows(2, status="error"))
        store.flush()
        store.append(_rows(2, status="done"))
        store.flush()
        frame = store.frame(columns=["point_id", "status"])
        assert sorted(frame["point_id"].tolist()) == ["p000", "p001"]
        assert set(frame["status"].tolist()) == {"done"}
        assert store.completed() == {"p000", "p001"}
        assert store.stats()["rows"] == 4
        assert store.stats()["points"] == 2

    def test_frame_projection_and_filter(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        store.append(_rows(4))
        store.flush()
        frame = store.frame(columns=["repetitions"],
                            where={"point_id": "p002"})
        assert list(frame) == ["repetitions"]
        assert frame["repetitions"].tolist() == [2]
        with pytest.raises(StoreError, match="unknown column"):
            store.frame(columns=["nope"])
        with pytest.raises(StoreError, match="unknown filter"):
            store.frame(where={"nope": 1})

    def test_create_wipes_stale_chunks(self, tmp_path, npz_only):
        store = make_store(tmp_path)
        store.append(_rows(2))
        store.flush()
        fresh = SweepStore.create(tmp_path / "store", "eq1",
                                  params=["repetitions", "n_packets"])
        assert fresh.chunks == []
        assert list((tmp_path / "store").glob("chunk-*")) == []


# ----------------------------------------------------------------------
# Execution plumbing: map_batched, record_many
# ----------------------------------------------------------------------

class TestMapBatched:
    def test_windows_and_order(self):
        out = list(map_batched(lambda v: v * v, range(10), jobs=1,
                               window=4))
        assert [len(chunk) for chunk, _ in out] == [4, 4, 2]
        assert [r for _, results in out for r in results] == \
            [v * v for v in range(10)]

    def test_consumes_any_iterable(self):
        stream = (v for v in range(5))
        out = list(map_batched(lambda v: v + 1, stream, jobs=1,
                               window=2))
        assert [r for _, results in out for r in results] == \
            [1, 2, 3, 4, 5]

    def test_empty_input(self):
        assert list(map_batched(lambda v: v, [], jobs=1)) == []

    def test_parallel_matches_serial(self):
        serial = [r for _, rs in map_batched(
            lambda v: v * 3, range(20), jobs=1, window=8) for r in rs]
        parallel = [r for _, rs in map_batched(
            lambda v: v * 3, range(20), jobs=2, window=8) for r in rs]
        assert serial == parallel


class TestRecordMany:
    def test_batch_append_round_trips(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = Manifest.create(path, "sweep", "eq1")
        manifest.record_many([
            PointRecord("a", "done", "r=1"),
            PointRecord("b", "failed", "r=2", error="boom"),
        ])
        assert manifest.get("a").status == "done"
        reloaded = Manifest.load(path)
        assert reloaded.get("b").error == "boom"
        assert reloaded.counts()["done"] == 1

    def test_empty_batch_is_noop(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = Manifest.create(path, "sweep", "eq1")
        before = path.read_bytes()
        manifest.record_many([])
        assert path.read_bytes() == before

    def test_invalid_status_rejected_before_any_write(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = Manifest.create(path, "sweep", "eq1")
        before = path.read_bytes()
        with pytest.raises(ValueError, match="status"):
            manifest.record_many([PointRecord("a", "done", ""),
                                  PointRecord("b", "bogus", "")])
        assert path.read_bytes() == before


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------

class TestResumeFromStore:
    def test_second_run_resumes_everything(self, tmp_path, npz_only):
        exp = registry.get("eq1")
        # reps=(2, 4): every point passes its shape checks at these
        # parameters, so all of them are resumable ("failed" points
        # deliberately re-run on resume).
        grid = cheap_grid(reps=(2, 4))
        store = make_store(tmp_path)
        manifest = Manifest.create(tmp_path / "m.jsonl", "sweep", "eq1")
        first = execute(SweepPlan(exp, iter(grid), seed=5), store,
                        manifest)
        assert sum(w.executed for w in first) == len(grid)
        second = execute(SweepPlan(exp, iter(grid), seed=5), store,
                         manifest)
        assert sum(w.executed for w in second) == 0
        assert sum(w.resumed for w in second) == len(grid)

    def test_refresh_re_executes(self, tmp_path, npz_only):
        exp = registry.get("eq1")
        grid = cheap_grid(reps=(2,), packets=(24,))
        store = make_store(tmp_path)
        execute(SweepPlan(exp, iter(grid), seed=5), store)
        again = execute(SweepPlan(exp, iter(grid), seed=5), store,
                        refresh=True)
        assert sum(w.executed for w in again) == len(grid)

    def test_store_experiment_mismatch_rejected(self, tmp_path,
                                                npz_only):
        exp = registry.get("eq1")
        store = SweepStore.create(tmp_path / "store", "fig6",
                                  params=["repetitions"])
        with pytest.raises(ValueError, match="belongs to"):
            list(run_plan(SweepPlan(exp, iter(cheap_grid())),
                          store=store))

    def test_journal_disagreement_forces_re_run(self, tmp_path,
                                                npz_only):
        # Store says done but the journal has no record (kill between
        # chunk publish and journal append): the point re-runs.
        exp = registry.get("eq1")
        grid = cheap_grid(reps=(2,), packets=(24,))
        store = make_store(tmp_path)
        execute(SweepPlan(exp, iter(grid), seed=5), store)
        manifest = Manifest.create(tmp_path / "m.jsonl", "sweep", "eq1")
        resumed = execute(SweepPlan(exp, iter(grid), seed=5), store,
                          manifest)
        assert sum(w.executed for w in resumed) == len(grid)


# ----------------------------------------------------------------------
# Adaptive refinement
# ----------------------------------------------------------------------

class TestRefineCandidates:
    def test_knee_attracts_candidates(self):
        xs = list(range(11))
        ys = [abs(x - 5) for x in xs]
        candidates = refine_candidates(xs, ys, count=2)
        assert sorted(candidates) == [4.5, 5.5]

    def test_flat_curve_yields_nothing(self):
        xs = list(range(11))
        assert refine_candidates(xs, [2.0 * x for x in xs], 4) == []
        assert refine_candidates(xs, [7.0] * len(xs), 4) == []

    def test_too_few_points(self):
        assert refine_candidates([1, 2], [0, 1], 4) == []

    def test_count_and_gap_respected(self):
        xs = [0.0, 1.0, 2.0, 3.0, 4.0]
        ys = [0.0, 0.0, 4.0, 0.0, 0.0]
        candidates = refine_candidates(xs, ys, count=3)
        assert len(candidates) == 3
        taken = xs + candidates
        assert len(set(taken)) == len(taken)  # no duplicates

    def test_unsorted_input_handled(self):
        xs = [10, 0, 5, 2, 8, 4, 6]
        ys = [abs(x - 5) for x in xs]
        candidates = refine_candidates(xs, ys, count=2)
        assert all(2 < c < 8 for c in candidates)


class TestAdaptAxis:
    def test_single_numeric_axis(self):
        axis, fixed = _adapt_axis([("rate", [1.0, 2.0, 3.0]),
                                   ("n", [24])])
        assert axis == "rate"
        assert fixed == {"n": 24}

    def test_two_multi_params_rejected(self):
        with pytest.raises(ValueError, match="exactly one"):
            _adapt_axis([("a", [1, 2]), ("b", [1, 2])])

    def test_non_numeric_axis_rejected(self):
        with pytest.raises(ValueError, match="numeric"):
            _adapt_axis([("backend", ["event", "vector"])])


def _knee_runner(x=0.0, seed=0):
    """Synthetic response curve with a hinge at x = 5."""
    y = max(0.0, float(x) - 5.0)
    return ExperimentResult(
        experiment="test-knee", title="hinge", x_label="x",
        x=np.asarray([float(x)]),
        series={"response": np.asarray([y])})


@pytest.fixture
def knee_experiment():
    experiment = registry.Experiment(
        name="test-knee", runner=_knee_runner, group="extension")
    registry.register(experiment)
    try:
        yield experiment
    finally:
        registry.unregister("test-knee")


class TestRunAdaptive:
    def test_refinement_clusters_at_the_knee(self, tmp_path, npz_only,
                                             knee_experiment):
        specs = [("x", [0.0, 2.0, 4.0, 6.0, 8.0, 10.0])]
        store = SweepStore.create(tmp_path / "store", "test-knee",
                                  params=["x"])
        windows = list(run_adaptive(knee_experiment, specs, adapt=6,
                                    store=store, metric="response"))
        store.close()
        base = sum(len(w.outcomes) for w in windows if w.wave == 0)
        added = [o["overrides"]["x"] for w in windows if w.wave > 0
                 for o in w.outcomes]
        assert base == 6
        assert 1 <= len(added) <= 6
        # Curvature lives only at the hinge: every refinement point
        # must land inside the coarse intervals flanking it ([2, 8]),
        # most of them in the immediate [4, 6] bracket, and the waves
        # must close in on x = 5 itself.
        assert all(2.0 <= x <= 8.0 for x in added)
        assert sum(4.0 <= x <= 6.0 for x in added) >= len(added) // 2
        assert min(abs(x - 5.0) for x in added) <= 0.5

    def test_flat_curve_stops_after_wave_zero(self, tmp_path, npz_only,
                                              knee_experiment):
        specs = [("x", [6.0, 7.0, 8.0, 9.0])]  # linear region only
        store = SweepStore.create(tmp_path / "store", "test-knee",
                                  params=["x"])
        windows = list(run_adaptive(knee_experiment, specs, adapt=4,
                                    store=store, metric="response"))
        assert {w.wave for w in windows} == {0}

    def test_requires_store(self, knee_experiment):
        with pytest.raises(ValueError, match="store"):
            list(run_adaptive(knee_experiment, [("x", [1.0, 2.0])],
                              adapt=2, store=None))

    def test_point_metric_names_series(self):
        result = _knee_runner(x=7.0)
        assert point_metric(result) == 2.0
        assert point_metric(result, "response") == 2.0
        with pytest.raises(ValueError, match="unknown metric"):
            point_metric(result, "nope")


# ----------------------------------------------------------------------
# CLI integration (in-process)
# ----------------------------------------------------------------------

class TestSweepCli:
    def test_adapt_without_store_is_an_error(self, capsys):
        from repro import cli
        code = cli.main(["sweep", "eq1", "--param", "repetitions=2,3",
                         "--adapt", "4"])
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def test_cache_stats_reports_store(self, tmp_path, npz_only,
                                       capsys):
        from repro import cli
        store = SweepStore.create(tmp_path / "s", "eq1",
                                  params=["repetitions", "n_packets"])
        store.append(_rows(3))
        store.flush()
        code = cli.main(["cache", "stats",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--store", str(tmp_path / "s")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["entries"] == 0
        (stats,) = payload["stores"]
        assert stats["points"] == 3
        assert stats["format"] == "npz"

    def test_cache_stats_bad_store_exits_2(self, tmp_path, capsys):
        from repro import cli
        code = cli.main(["cache", "stats",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--store", str(tmp_path / "missing")])
        assert code == 2
        assert "index" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Chaos: SIGKILL mid-sweep, resume from the store
# ----------------------------------------------------------------------

def run_cli(args, cwd, env_extra=None, timeout=600):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_SWEEP_WINDOW", None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=cwd, capture_output=True, text=True,
        timeout=timeout)


@pytest.mark.chaos
class TestKilledSweepResumesFromStore:
    def test_kill_after_one_point_then_resume(self, tmp_path):
        argv = ["sweep", "fig6", "--param", "repetitions=4,6,8",
                "--seed", "2", "--store", "atlas"]
        killed = run_cli(argv, tmp_path, env_extra={
            "REPRO_FAULTS": "kill-after-points=1",
            "REPRO_SWEEP_WINDOW": "1"})
        assert killed.returncode == -signal.SIGKILL
        store = SweepStore.open(tmp_path / "atlas")
        survivors = store.completed()
        assert len(survivors) < 3  # genuinely partial
        resumed = run_cli(argv + ["--resume", "atlas/manifest.jsonl"],
                          tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        assert f"({len(survivors)} resumed)" in resumed.stdout
        store = SweepStore.open(tmp_path / "atlas")
        assert len(store.completed()) == 3
        # The resumed store serves payloads bit-identical to an
        # undisturbed standalone run of the same point.
        exp = registry.get("fig6")
        kwargs = exp.kwargs_for(seed=2, overrides={"repetitions": 4},
                                backend="auto")
        stored = store.payload(point_id("fig6", kwargs))
        direct = exp.run(seed=2, overrides={"repetitions": 4},
                         backend="auto").result
        assert json.dumps(stored.to_dict(), sort_keys=True) == \
            json.dumps(direct.to_dict(), sort_keys=True)
