"""Tests for the on-disk result cache (repro.runtime.cache)."""

import concurrent.futures
import json
import multiprocessing
import sys

import numpy as np
import pytest

from repro.analysis.results import ExperimentResult
from repro.runtime import faults
from repro.runtime.cache import (
    ResultCache,
    canonical_kwargs,
    code_version,
    default_cache_dir,
    payload_checksum,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


@pytest.fixture
def result():
    out = ExperimentResult(
        experiment="toy", title="Toy", x_label="x",
        x=np.array([1.0, 2.0, 3.0]),
        series={"zeta": np.array([0.5, 0.25, 0.125]),
                "alpha": np.array([1.0, 2.0, 4.0])},
        meta={"repetitions": 9, "rate_bps": 5e6, "label": "paper"})
    out.add_check("zig", True)
    out.add_check("azag", True)
    return out


class TestRoundTrip:
    def test_to_from_dict_preserves_table(self, result):
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.table() == result.table()
        assert clone.summary() == result.summary()

    def test_series_and_check_order_preserved(self, result):
        clone = ExperimentResult.from_dict(result.to_dict())
        assert list(clone.series) == ["zeta", "alpha"]
        assert list(clone.checks) == ["zig", "azag"]

    def test_numpy_meta_values_become_plain(self):
        out = ExperimentResult(
            experiment="np", title="t", x_label="x",
            x=np.array([1.0]), series={"y": np.array([2.0])},
            meta={"scalar": np.float64(0.125), "vec": np.arange(3)})
        payload = json.dumps(out.to_dict())
        assert json.loads(payload)["meta"]["scalar"] == 0.125

    def test_numpy_nested_in_containers_serialises(self):
        out = ExperimentResult(
            experiment="np", title="t", x_label="x",
            x=np.array([1.0]), series={"y": np.array([2.0])},
            meta={"counts": [np.int64(3), np.int64(4)],
                  "nested": {"rates": (np.float64(1.5),)}})
        payload = json.loads(json.dumps(out.to_dict()))
        assert payload["meta"]["counts"] == [3, 4]
        assert payload["meta"]["nested"]["rates"] == [1.5]


class TestKeying:
    def test_same_inputs_same_key(self, cache):
        a = cache.key_for("fig6", {"repetitions": 40, "seed": 7})
        b = cache.key_for("fig6", {"seed": 7, "repetitions": 40})
        assert a == b

    def test_kwargs_change_key(self, cache):
        a = cache.key_for("fig6", {"repetitions": 40, "seed": 7})
        b = cache.key_for("fig6", {"repetitions": 41, "seed": 7})
        assert a != b

    def test_seed_changes_key(self, cache):
        a = cache.key_for("fig6", {"seed": 7})
        assert a != cache.key_for("fig6", {"seed": 8})

    def test_experiment_changes_key(self, cache):
        kwargs = {"repetitions": 40}
        assert cache.key_for("fig6", kwargs) != \
            cache.key_for("fig7", kwargs)

    def test_code_version_changes_key(self, cache):
        kwargs = {"repetitions": 40}
        assert cache.key_for("fig6", kwargs, version="aaaa") != \
            cache.key_for("fig6", kwargs, version="bbbb")

    def test_numpy_kwargs_are_canonical(self, cache):
        a = cache.key_for("e", {"rates": np.array([1.0, 2.0]), "n": 5})
        b = cache.key_for("e", {"rates": [1.0, 2.0], "n": 5})
        assert a == b

    def test_canonical_kwargs_sorts_and_flattens(self):
        out = canonical_kwargs({"b": (1, 2), "a": np.int64(3)})
        assert list(out) == ["a", "b"]
        assert out == {"a": 3, "b": [1, 2]}


class TestHitMissInvalidation:
    def test_miss_then_hit(self, cache, result):
        key = cache.key_for("toy", {"repetitions": 9})
        assert cache.load("toy", key) is None
        cache.store("toy", key, {"repetitions": 9}, result)
        hit = cache.load("toy", key)
        assert hit is not None
        assert hit.table() == result.table()

    def test_code_version_invalidates(self, cache, result):
        old_key = cache.key_for("toy", {"repetitions": 9}, version="old")
        cache.store("toy", old_key, {"repetitions": 9}, result,
                    version="old")
        new_key = cache.key_for("toy", {"repetitions": 9}, version="new")
        assert new_key != old_key
        assert cache.load("toy", new_key) is None

    def test_corrupt_entry_is_a_miss(self, cache, result):
        key = cache.key_for("toy", {})
        path = cache.store("toy", key, {}, result)
        path.write_text("{not json")
        assert cache.load("toy", key) is None

    def test_entries_and_clear(self, cache, result):
        for reps in (1, 2, 3):
            key = cache.key_for("toy", {"repetitions": reps})
            cache.store("toy", key, {"repetitions": reps}, result)
        entries = cache.entries()
        assert len(entries) == 3
        assert all(entry.experiment == "toy" for entry in entries)
        assert all(not entry.stale for entry in entries)
        assert cache.clear() == 3
        assert cache.entries() == []

    def test_stale_entries_flagged(self, cache, result):
        key = cache.key_for("toy", {}, version="ancient")
        cache.store("toy", key, {}, result, version="ancient")
        [entry] = cache.entries()
        assert entry.stale

    def test_clear_on_missing_directory(self, tmp_path):
        assert ResultCache(root=tmp_path / "nowhere").clear() == 0

    def test_clear_sweeps_orphaned_tmp_files(self, cache, result):
        key = cache.key_for("toy", {})
        cache.store("toy", key, {}, result)
        orphan = cache.root / "toy-dead.tmp"
        orphan.write_text("interrupted store")
        assert cache.clear() == 2
        assert not orphan.exists()


def _make_result(tag="toy"):
    return ExperimentResult(
        experiment=tag, title="Toy", x_label="x",
        x=np.array([1.0, 2.0]), series={"y": np.array([3.0, 4.0])},
        meta={"tag": tag})


def _racing_store(root):
    """One concurrent writer: store the same key as everyone else."""
    cache = ResultCache(root=root)
    key = cache.key_for("race", {"n": 1})
    cache.store("race", key, {"n": 1}, _make_result("race"))


class TestChecksumAndQuarantine:
    def test_stored_payload_carries_checksum(self, cache, result):
        key = cache.key_for("toy", {})
        path = cache.store("toy", key, {}, result)
        payload = json.loads(path.read_text())
        checksum = payload.pop("checksum")
        assert checksum == payload_checksum(payload)

    def test_bit_flip_quarantines_and_misses(self, cache, result):
        key = cache.key_for("toy", {})
        path = cache.store("toy", key, {}, result)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        path.write_bytes(bytes(raw))
        assert cache.load("toy", key) is None
        assert not path.exists()
        assert len(cache.quarantined()) == 1

    def test_truncation_quarantines_and_misses(self, cache, result):
        key = cache.key_for("toy", {})
        path = cache.store("toy", key, {}, result)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        assert cache.load("toy", key) is None
        assert len(cache.quarantined()) == 1

    def test_recompute_after_quarantine(self, cache, result):
        key = cache.key_for("toy", {})
        path = cache.store("toy", key, {}, result)
        path.write_text("{")
        assert cache.load("toy", key) is None
        cache.store("toy", key, {}, result)  # the recompute
        hit = cache.load("toy", key)
        assert hit is not None
        assert hit.table() == result.table()
        assert len(cache.quarantined()) == 1

    def test_scan_reports_malformed_without_mutating(self, cache,
                                                     result):
        good_key = cache.key_for("toy", {"n": 1})
        cache.store("toy", good_key, {"n": 1}, result)
        bad_key = cache.key_for("toy", {"n": 2})
        bad_path = cache.store("toy", bad_key, {"n": 2}, result)
        bad_path.write_text("{corrupt")
        entries, malformed = cache.scan()
        assert len(entries) == 1
        assert malformed == [bad_path]
        assert bad_path.exists()  # scan never quarantines
        assert cache.quarantined() == []

    def test_clear_removes_quarantined_entries(self, cache, result):
        key = cache.key_for("toy", {})
        path = cache.store("toy", key, {}, result)
        path.write_text("{")
        cache.load("toy", key)
        assert len(cache.quarantined()) == 1
        assert cache.clear() == 1
        assert cache.quarantined() == []

    def test_injected_bitflip_round_trips_through_quarantine(
            self, cache, result):
        key = cache.key_for("toy", {})
        with faults.injected("cache-bitflip=1"):
            cache.store("toy", key, {}, result)
        assert cache.load("toy", key) is None
        assert len(cache.quarantined()) == 1

    def test_injected_truncation_round_trips_through_quarantine(
            self, cache, result):
        key = cache.key_for("toy", {})
        with faults.injected("cache-truncate=1"):
            cache.store("toy", key, {}, result)
        assert cache.load("toy", key) is None
        assert len(cache.quarantined()) == 1


class TestConcurrentWriters:
    """Racing writers of the same key: last rename wins, entry valid."""

    def _assert_single_valid_entry(self, root):
        cache = ResultCache(root=root)
        key = cache.key_for("race", {"n": 1})
        hit = cache.load("race", key)
        assert hit is not None
        assert hit.meta["tag"] == "race"
        entries, malformed = cache.scan()
        assert len(entries) == 1
        assert malformed == []
        assert list(root.glob("*.tmp")) == []

    def test_threads(self, tmp_path):
        root = tmp_path / "cache"
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            list(pool.map(lambda _: _racing_store(root), range(16)))
        self._assert_single_valid_entry(root)

    def test_processes(self, tmp_path):
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context(
            "fork" if sys.platform != "win32" else None)
        procs = [ctx.Process(target=_racing_store, args=(root,))
                 for _ in range(6)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        self._assert_single_valid_entry(root)


class TestDefaults:
    def test_env_var_moves_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16
