"""Tests for the dispersion data model."""

import numpy as np
import pytest

from repro.core.dispersion import (
    TrainMeasurement,
    decompose_output_gap,
    output_gap,
)


def make_measurement(send=None, recv=None, size=1500):
    if send is None:
        send = np.array([0.0, 0.01, 0.02])
    if recv is None:
        recv = np.array([0.005, 0.016, 0.027])
    return TrainMeasurement(send_times=send, recv_times=recv,
                            size_bytes=size)


class TestOutputGap:
    def test_eq16(self):
        assert output_gap([0.0, 0.5, 1.2]) == pytest.approx(0.6)

    def test_two_packets(self):
        assert output_gap([1.0, 1.25]) == pytest.approx(0.25)

    def test_needs_two(self):
        with pytest.raises(ValueError):
            output_gap([1.0])

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            output_gap([1.0, 0.5])


class TestTrainMeasurement:
    def test_n(self):
        assert make_measurement().n == 3

    def test_input_gap(self):
        assert make_measurement().input_gap == pytest.approx(0.01)

    def test_output_gap(self):
        assert make_measurement().output_gap == pytest.approx(0.011)

    def test_input_rate(self):
        assert make_measurement().input_rate == pytest.approx(1.2e6)

    def test_output_rate(self):
        assert make_measurement().output_rate == pytest.approx(
            1500 * 8 / 0.011)

    def test_infinite_input_rate_for_pair(self):
        m = make_measurement(send=np.array([0.0, 0.0]),
                             recv=np.array([0.001, 0.003]))
        assert m.input_rate == float("inf")

    def test_per_packet_gaps(self):
        m = make_measurement()
        assert np.allclose(m.input_gaps, [0.01, 0.01])
        assert np.allclose(m.output_gaps, [0.011, 0.011])

    def test_one_way_delays(self):
        m = make_measurement()
        assert np.allclose(m.one_way_delays, [0.005, 0.006, 0.007])

    def test_clock_offset_cancels_in_gaps(self):
        base = make_measurement()
        offset = TrainMeasurement(base.send_times,
                                  base.recv_times + 123.456, 1500)
        assert offset.output_gap == pytest.approx(base.output_gap)
        assert offset.output_rate == pytest.approx(base.output_rate)

    def test_validation_shapes(self):
        with pytest.raises(ValueError):
            TrainMeasurement(np.array([0.0, 1.0]), np.array([0.0]), 1500)

    def test_validation_min_length(self):
        with pytest.raises(ValueError):
            TrainMeasurement(np.array([0.0]), np.array([0.0]), 1500)

    def test_validation_size(self):
        with pytest.raises(ValueError):
            make_measurement(size=0)

    def test_validation_ordering(self):
        with pytest.raises(ValueError):
            TrainMeasurement(np.array([0.0, -1.0]),
                             np.array([0.0, 1.0]), 1500)
        with pytest.raises(ValueError):
            TrainMeasurement(np.array([0.0, 1.0]),
                             np.array([1.0, 0.0]), 1500)

    def test_frozen(self):
        m = make_measurement()
        with pytest.raises(AttributeError):
            m.size_bytes = 40


class TestDecomposeOutputGap:
    def test_eq18_reconstruction(self):
        mu = np.array([1e-3, 1.5e-3, 2e-3])
        value = decompose_output_gap(
            input_gap=2e-3, access_delays=mu, residual_last=0.5e-3,
            workload_first=0.1e-3, workload_last=0.3e-3)
        expected = 2e-3 + 0.5e-3 / 2 + 0.2e-3 / 2 + 1e-3 / 2
        assert value == pytest.approx(expected)

    def test_steady_state_reduces_to_input_gap(self):
        mu = np.full(10, 2e-3)
        value = decompose_output_gap(5e-3, mu, 0.0, 0.0, 0.0)
        assert value == pytest.approx(5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose_output_gap(1e-3, np.array([1e-3]), 0, 0, 0)
        with pytest.raises(ValueError):
            decompose_output_gap(-1.0, np.array([1e-3, 1e-3]), 0, 0, 0)
