"""Tests for the backend-coverage gate (tools/check_backend_coverage.py)."""

import json
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_backend_coverage as gate  # noqa: E402

from repro.runtime import registry  # noqa: E402


@pytest.fixture
def manifest(tmp_path):
    path = tmp_path / "coverage.json"

    def write(payload):
        path.write_text(json.dumps(payload))
        return path

    return write


class TestCompare:
    def test_clean_when_identical(self, capsys):
        current = {"a": ["event", "vector"], "b": ["event"]}
        assert gate.compare(current, dict(current)) == []

    def test_lost_backend_fails(self):
        failures = gate.compare({"a": ["event"]},
                                {"a": ["event", "vector"]})
        assert len(failures) == 1
        assert "lost backend(s) vector" in failures[0]

    def test_lost_experiment_fails(self):
        failures = gate.compare({}, {"a": ["event"]})
        assert len(failures) == 1
        assert "disappeared" in failures[0]

    def test_gained_backend_passes_with_note(self, capsys):
        failures = gate.compare({"a": ["event", "vector"]},
                                {"a": ["event"]})
        assert failures == []
        assert "gained backend(s) vector" in capsys.readouterr().out

    def test_new_experiment_passes_with_note(self, capsys):
        failures = gate.compare({"a": ["event"], "b": ["event"]},
                                {"a": ["event"]})
        assert failures == []
        assert "new experiment" in capsys.readouterr().out


class TestMain:
    def test_passes_against_committed_manifest(self, capsys):
        assert gate.main([str(gate.DEFAULT_BASELINE)]) == 0
        assert "gate clean" in capsys.readouterr().out

    def test_fails_on_lost_vector_entry(self, manifest, capsys):
        current = gate.registry_coverage()
        doctored = dict(current)
        doctored["fig1"] = ["event", "vector"]  # pretend fig1 had it
        path = manifest(doctored)
        assert gate.main([str(path)]) == 1
        assert "lost backend(s) vector" in capsys.readouterr().err

    def test_missing_manifest_is_an_error(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "nope.json")]) == 2

    def test_refresh_round_trips(self, tmp_path, capsys):
        path = tmp_path / "coverage.json"
        assert gate.main([str(path), "--refresh"]) == 0
        assert gate.main([str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == set(registry.names())


class TestCommittedManifest:
    def test_manifest_matches_registry_exactly(self):
        committed = gate.load_baseline(gate.DEFAULT_BASELINE)
        assert committed == gate.registry_coverage()

    def test_dual_backend_floor(self):
        """The PR's acceptance floor: >= 8 dual-backend experiments."""
        committed = gate.load_baseline(gate.DEFAULT_BASELINE)
        dual = [name for name, backends in committed.items()
                if "vector" in backends]
        assert len(dual) >= 8
