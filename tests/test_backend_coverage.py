"""Tests for the backend-coverage gate and the doc-matrix generator.

Covers ``tools/check_backend_coverage.py`` (coverage can only grow,
derived from the dispatcher) and ``tools/gen_backend_docs.py`` (the
README / architecture matrices are generated from the manifest and
must stay in sync).
"""

import json
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_backend_coverage as gate  # noqa: E402
import gen_backend_docs as docgen  # noqa: E402

from repro.runtime import registry  # noqa: E402


@pytest.fixture
def manifest(tmp_path):
    path = tmp_path / "coverage.json"

    def write(payload):
        path.write_text(json.dumps(payload))
        return path

    return write


def entry(*backends, **extra):
    return {"backends": list(backends), **extra}


class TestCompare:
    def test_clean_when_identical(self, capsys):
        current = {"a": entry("event", "vector"), "b": entry("event")}
        assert gate.compare(current, dict(current)) == []

    def test_lost_backend_fails(self):
        failures = gate.compare({"a": entry("event")},
                                {"a": entry("event", "vector")})
        assert len(failures) == 1
        assert "lost backend(s) vector" in failures[0]

    def test_lost_experiment_fails(self):
        failures = gate.compare({}, {"a": entry("event")})
        assert len(failures) == 1
        assert "disappeared" in failures[0]

    def test_gained_backend_passes_with_note(self, capsys):
        failures = gate.compare({"a": entry("event", "vector")},
                                {"a": entry("event")})
        assert failures == []
        assert "gained backend(s) vector" in capsys.readouterr().out

    def test_new_experiment_passes_with_note(self, capsys):
        failures = gate.compare({"a": entry("event"), "b": entry("event")},
                                {"a": entry("event")})
        assert failures == []
        assert "new experiment" in capsys.readouterr().out


class TestRegistryCoverage:
    def test_derived_entries_annotated(self):
        current = gate.registry_coverage()
        assert set(current) == set(registry.names())
        for name, info in current.items():
            if "vector" in info["backends"]:
                assert info["kernel"], name
            else:
                assert info["reason"], name

    def test_kernels_match_dispatcher(self):
        """The manifest names the fastest capable kernel — the jit
        twin for jit-capable experiments (availability ignored), the
        vector kernel for the path study that has no jit twin."""
        current = gate.registry_coverage()
        assert current["ext-saturation"]["kernel"] == \
            "saturated-DCF kernel (jit)"
        assert current["eq1"]["kernel"] == "batched Lindley recursion (jit)"
        assert current["fig6"]["kernel"] == "probe-train kernel (jit)"
        assert current["fig8"]["kernel"] == "probe-train kernel (jit)"
        assert current["ablation-rts"]["kernel"] == "probe-train kernel (jit)"
        assert current["ablation-bianchi"]["kernel"] == \
            "probe-train kernel (jit)"
        assert current["ext-multihop"]["kernel"] == "multihop chain kernel"


class TestMain:
    def test_passes_against_committed_manifest(self, capsys):
        assert gate.main([str(gate.DEFAULT_BASELINE)]) == 0
        assert "gate clean" in capsys.readouterr().out

    def test_fails_on_lost_vector_entry(self, manifest, capsys):
        current = gate.registry_coverage()
        doctored = dict(current)
        # Every registry entry is dual-backend now, so pretend fig8
        # used to offer a third backend: the gate must flag the loss.
        doctored["fig8"] = entry("event", "vector", "cuda")
        path = manifest(doctored)
        assert gate.main([str(path), "--skip-docs"]) == 1
        assert "lost backend(s) cuda" in capsys.readouterr().err

    def test_missing_manifest_is_an_error(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "nope.json")]) == 2

    def test_refresh_round_trips(self, tmp_path, capsys):
        path = tmp_path / "coverage.json"
        assert gate.main([str(path), "--refresh"]) == 0
        assert gate.main([str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == set(registry.names())

    def test_legacy_flat_manifest_still_loads(self, manifest):
        current = gate.registry_coverage()
        flat = {name: info["backends"] for name, info in current.items()}
        path = manifest(flat)
        loaded = gate.load_baseline(path)
        assert loaded["fig6"]["backends"] == ["event", "vector", "jit"]
        assert gate.compare(current, loaded) == []


class TestDocGeneration:
    def test_committed_docs_in_sync(self):
        coverage = docgen.load_manifest()
        assert docgen.stale_targets(coverage) == []

    def test_check_mode_flags_drift(self, tmp_path):
        coverage = docgen.load_manifest()
        target = tmp_path / "doc.md"
        target.write_text(
            f"# X\n\n{docgen.BEGIN_MARK}\nstale\n{docgen.END_MARK}\n")
        assert docgen.stale_targets(coverage, [target])
        docgen.write_targets(coverage, [target])
        assert docgen.stale_targets(coverage, [target]) == []

    def test_missing_markers_reported(self, tmp_path):
        coverage = docgen.load_manifest()
        target = tmp_path / "bare.md"
        target.write_text("# no markers here\n")
        stale = docgen.stale_targets(coverage, [target])
        assert stale and "markers" in stale[0]

    def test_matrix_mentions_every_experiment(self):
        block = docgen.render_matrix(docgen.load_manifest())
        for name in registry.names():
            assert f"`{name}`" in block
        assert "dual-backend" in block

    def test_main_check_and_write(self, capsys):
        assert docgen.main(["--check"]) == 0
        assert "in sync" in capsys.readouterr().out


class TestCommittedManifest:
    def test_manifest_matches_registry_exactly(self):
        committed = gate.load_baseline(gate.DEFAULT_BASELINE)
        assert committed == gate.registry_coverage()

    def test_dual_backend_floor(self):
        """The acceptance floor: all 25 experiments dual-backend
        (23 from the vector-coverage PR plus ``ext-retry-limit`` and
        ``ext-onoff``), zero ``reason`` entries left in the
        manifest, and every experiment except the multi-hop path
        (whose kernel has no jit twin) also offers the jit tier."""
        committed = gate.load_baseline(gate.DEFAULT_BASELINE)
        dual = [name for name, info in committed.items()
                if "vector" in info["backends"]]
        assert len(dual) == len(committed) == 25
        assert not any("reason" in info for info in committed.values())
        jit = {name for name, info in committed.items()
               if "jit" in info["backends"]}
        assert jit == set(committed) - {"ext-multihop"}

    def test_manifest_matches_derived_vector_experiments(self):
        committed = gate.load_baseline(gate.DEFAULT_BASELINE)
        dual = {name for name, info in committed.items()
                if "vector" in info["backends"]}
        assert dual == set(registry.VECTOR_EXPERIMENTS)
