"""Smoke tests for every figure runner.

These run each experiment with deliberately tiny parameters and verify
structure (series present, finite values, metadata) — the full-size
shape checks are exercised by the benchmark harness.
"""

import numpy as np
import pytest

import repro.analysis as analysis


def assert_well_formed(result, expected_series):
    assert result.experiment
    for name in expected_series:
        assert name in result.series, f"missing series {name}"
        assert np.all(np.isfinite(result.series[name]))
    assert len(result.x) > 0
    assert result.table()


RATES = np.array([1e6, 3e6, 6e6])


class TestSteadyStateRunners:
    def test_fig1(self):
        result = analysis.fig1_rate_response(
            probe_rates_bps=RATES, duration=1.0, warmup=0.3,
            repetitions=1)
        assert_well_formed(result, ["probe_bps", "cross_bps"])
        assert result.meta["capacity_bps"] > 5e6

    def test_fig4(self):
        result = analysis.fig4_complete_picture(
            probe_rates_bps=RATES, duration=1.0, warmup=0.3,
            repetitions=1)
        assert_well_formed(result, ["probe_bps", "cross_bps", "fifo_bps",
                                    "model_eq4_bps"])

    def test_steady_state_throughputs_validation(self):
        with pytest.raises(ValueError):
            analysis.steady_state_throughputs(1e6, 1e6, duration=0.1,
                                              warmup=0.2)


class TestTransientRunners:
    def test_fig6(self):
        result = analysis.fig6_mean_access_delay(
            n_packets=40, repetitions=25, plot_limit=20)
        assert_well_formed(result, ["mean_access_delay_s"])
        assert result.meta["steady_state_mean_s"] > 0

    def test_fig7(self):
        result = analysis.fig7_delay_histograms(
            n_packets=40, repetitions=30, bins=10)
        assert_well_formed(result, ["count_first", "count_steady"])
        assert result.series["count_first"].sum() == 30

    def test_fig8(self):
        result = analysis.fig8_ks_and_queue(
            n_packets=40, repetitions=30, plot_limit=15)
        assert_well_formed(result, ["ks_value", "ks_threshold",
                                    "mean_queue_pkts"])

    def test_fig9(self):
        result = analysis.fig9_ks_complex(
            n_packets=16, repetitions=25, plot_limit=8)
        assert_well_formed(result, ["ks_value", "ks_threshold"])

    def test_fig10(self):
        result = analysis.fig10_transient_duration(
            cross_loads_erlang=[0.3, 0.6], n_packets=60, repetitions=30)
        assert_well_formed(result, ["transient_tol_0.1",
                                    "transient_tol_0.01"])
        assert np.all(result.series["transient_tol_0.1"] >= 1)

    def test_fig10_load_validation(self):
        with pytest.raises(ValueError):
            analysis.fig10_transient_duration(
                cross_loads_erlang=[0.0], n_packets=60, repetitions=5)

    def test_collect_delay_matrix_queues(self):
        from repro.traffic.generators import PoissonGenerator
        collection = analysis.collect_delay_matrix(
            5e6, [("cross", PoissonGenerator(2e6, 1500))],
            n_packets=10, repetitions=5, track_queues=True)
        assert collection.matrix.repetitions == 5
        assert collection.mean_queue_profile("cross").shape == (10,)


class TestTrainRunners:
    def test_fig13(self):
        result = analysis.fig13_short_trains(
            probe_rates_bps=RATES, train_lengths=(3, 10),
            repetitions=8)
        assert_well_formed(result, ["steady_state_bps", "train_3_bps",
                                    "train_10_bps"])

    def test_fig15(self):
        result = analysis.fig15_short_trains_fifo(
            probe_rates_bps=RATES, train_lengths=(3, 10),
            repetitions=8)
        assert_well_formed(result, ["steady_state_bps", "train_3_bps"])

    def test_fig16(self):
        result = analysis.fig16_packet_pair(
            cross_rates_bps=[0.0, 3e6], pair_repetitions=40)
        assert_well_formed(result, ["fluid_actual_bps", "packet_pair_bps"])

    def test_fig17(self):
        result = analysis.fig17_mser(
            probe_rates_bps=RATES, n_packets=20, repetitions=12)
        assert_well_formed(result, ["steady_state_bps", "train_20_bps",
                                    "mser2_bps"])


class TestBaselineRunners:
    def test_eq1(self):
        result = analysis.eq1_fifo_rate_response(
            probe_rates_bps=RATES, n_packets=120, repetitions=8)
        assert_well_formed(result, ["model_eq1_bps", "measured_bps"])
        assert result.all_checks_pass

    def test_bounds_consistency(self):
        result = analysis.bounds_consistency(
            probe_rates_bps=np.array([2e6, 6e6]), repetitions=40)
        assert_well_formed(result, ["lower_s", "measured_s", "upper_s"])
        assert result.checks["bounds-ordered"]
