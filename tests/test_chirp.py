"""Tests for the pathChirp-style chirp trains and analysis."""

import numpy as np
import pytest

from repro.core.chirp import (
    ChirpTrain,
    analyze_chirp,
    chirp_estimate,
)
from repro.core.dispersion import TrainMeasurement


class TestChirpTrain:
    def test_gaps_geometric(self):
        chirp = ChirpTrain(n=5, initial_gap=8e-3, spread_factor=2.0)
        assert np.allclose(chirp.gaps, [8e-3, 4e-3, 2e-3, 1e-3])

    def test_instantaneous_rates_increase(self):
        chirp = ChirpTrain(n=8, initial_gap=6e-3)
        assert np.all(np.diff(chirp.instantaneous_rates) > 0)

    def test_duration_is_gap_sum(self):
        chirp = ChirpTrain(n=5, initial_gap=8e-3, spread_factor=2.0)
        assert chirp.duration == pytest.approx(15e-3)

    def test_arrival_times(self):
        chirp = ChirpTrain(n=4, initial_gap=4e-3, spread_factor=2.0)
        assert np.allclose(chirp.arrival_times(1.0),
                           [1.0, 1.004, 1.006, 1.007])

    def test_packets_flow_and_seq(self):
        packets = ChirpTrain(n=4, initial_gap=1e-3).packets()
        assert [p.seq for _, p in packets] == [0, 1, 2, 3]
        assert all(p.flow == "probe" for _, p in packets)

    def test_covering_rates(self):
        chirp = ChirpTrain.covering_rates(1e6, 10e6, spread_factor=1.5)
        rates = chirp.instantaneous_rates
        assert rates[0] == pytest.approx(1e6)
        assert rates[-1] >= 10e6

    def test_validation(self):
        with pytest.raises(ValueError):
            ChirpTrain(n=2, initial_gap=1e-3)
        with pytest.raises(ValueError):
            ChirpTrain(n=5, initial_gap=0.0)
        with pytest.raises(ValueError):
            ChirpTrain(n=5, initial_gap=1e-3, spread_factor=1.0)
        with pytest.raises(ValueError):
            ChirpTrain.covering_rates(5e6, 1e6)


def measurement_for(chirp, delays, start=0.0):
    send = chirp.arrival_times(start)
    return TrainMeasurement(send, send + np.asarray(delays), chirp.size_bytes)


class TestAnalyzeChirp:
    def test_clean_turning_point(self):
        chirp = ChirpTrain(n=10, initial_gap=8e-3, spread_factor=1.5)
        # Delays flat for the first 5 packets, then ramping: the
        # excursion starts at gap index ~4.
        delays = np.concatenate([np.full(5, 1e-3),
                                 1e-3 + np.linspace(1e-3, 8e-3, 5)])
        analysis = analyze_chirp(measurement_for(chirp, delays), chirp)
        assert analysis.found_turning_point
        assert 3 <= analysis.turning_index <= 5
        assert analysis.turning_rate_bps == pytest.approx(
            chirp.instantaneous_rates[analysis.turning_index])

    def test_no_excursion_reports_max_rate(self):
        chirp = ChirpTrain(n=8, initial_gap=4e-3)
        delays = np.full(8, 1.2e-3)
        analysis = analyze_chirp(measurement_for(chirp, delays), chirp)
        assert not analysis.found_turning_point
        assert analysis.turning_rate_bps == pytest.approx(
            chirp.instantaneous_rates[-1])

    def test_recovered_excursion_ignored(self):
        chirp = ChirpTrain(n=10, initial_gap=8e-3, spread_factor=1.5)
        # An early delay bump that decays back to baseline (a burst of
        # cross-traffic that cleared): no turning point.  The decay is
        # gradual so receive times stay monotone.
        delays = np.array([1.0, 1.0, 5.0, 3.0, 1.0, 1.0, 1.0, 1.0,
                           1.0, 1.0]) * 1e-3
        analysis = analyze_chirp(measurement_for(chirp, delays), chirp)
        assert not analysis.found_turning_point

    def test_size_mismatch_rejected(self):
        chirp = ChirpTrain(n=6, initial_gap=2e-3)
        other = ChirpTrain(n=5, initial_gap=2e-3)
        with pytest.raises(ValueError):
            analyze_chirp(measurement_for(other, np.full(5, 1e-3)), chirp)

    def test_departure_fraction_validation(self):
        chirp = ChirpTrain(n=5, initial_gap=2e-3)
        m = measurement_for(chirp, np.full(5, 1e-3))
        with pytest.raises(ValueError):
            analyze_chirp(m, chirp, departure_fraction=0.0)
        with pytest.raises(ValueError):
            analyze_chirp(m, chirp, departure_fraction=1.0)


class TestChirpOnWlan:
    def test_chirp_targets_achievable_throughput(self):
        from repro.analytic.bianchi import BianchiModel
        from repro.testbed import (Prober, ProbeSessionConfig,
                                   SimulatedWlanChannel)
        from repro.traffic import PoissonGenerator
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, 1500))], warmup=0.15)
        prober = Prober(channel, ProbeSessionConfig(repetitions=30,
                                                    ideal_clocks=True))
        chirp = ChirpTrain.covering_rates(0.8e6, 12e6, spread_factor=1.3)
        measurements = prober.measure_chirps(chirp, seed=5)
        estimate = chirp_estimate(measurements, chirp)
        bianchi = BianchiModel()
        capacity = bianchi.capacity()
        available = capacity - 4e6
        # The chirp's turning point is near B (loosely: chirps are
        # noisy), clearly above A and below C.
        assert estimate > 1.2 * available
        assert estimate < capacity

    def test_chirp_estimate_empty_rejected(self):
        chirp = ChirpTrain(n=5, initial_gap=1e-3)
        with pytest.raises(ValueError):
            chirp_estimate([], chirp)
