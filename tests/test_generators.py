"""Tests for the cross-traffic generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.generators import (
    ArrivalSchedule,
    CBRGenerator,
    OnOffGenerator,
    PoissonGenerator,
    TraceGenerator,
)
from repro.traffic.packets import Packet


class TestArrivalSchedule:
    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            ArrivalSchedule([(1.0, Packet(100)), (0.5, Packet(100))])

    def test_len_and_iter(self):
        schedule = ArrivalSchedule([(0.0, Packet(100)), (1.0, Packet(200))])
        assert len(schedule) == 2
        assert [t for t, _ in schedule] == [0.0, 1.0]

    def test_total_bytes(self):
        schedule = ArrivalSchedule([(0.0, Packet(100)), (1.0, Packet(200))])
        assert schedule.total_bytes == 300

    def test_offered_rate(self):
        schedule = ArrivalSchedule([(0.0, Packet(1250))])
        assert schedule.offered_rate_bps(1.0) == 10000

    def test_offered_rate_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            ArrivalSchedule([]).offered_rate_bps(0.0)

    def test_shifted(self):
        schedule = ArrivalSchedule([(0.0, Packet(100)), (1.0, Packet(100))])
        shifted = schedule.shifted(5.0)
        assert list(shifted.times) == [5.0, 6.0]

    def test_times_array(self):
        schedule = ArrivalSchedule([(0.5, Packet(100))])
        assert schedule.times.dtype == float


class TestPoissonGenerator:
    def test_rate_accuracy(self, rng):
        gen = PoissonGenerator(2e6, 1500)
        schedule = gen.generate(20.0, rng)
        rate = schedule.offered_rate_bps(20.0)
        assert rate == pytest.approx(2e6, rel=0.1)

    def test_packets_per_second(self):
        gen = PoissonGenerator(1.2e6, 1500)
        assert gen.packets_per_second == pytest.approx(100.0)

    def test_zero_rate_yields_empty(self, rng):
        assert len(PoissonGenerator(0.0).generate(10.0, rng)) == 0

    def test_zero_horizon_yields_empty(self, rng):
        assert len(PoissonGenerator(1e6).generate(0.0, rng)) == 0

    def test_times_within_horizon(self, rng):
        schedule = PoissonGenerator(5e6, 1500).generate(2.0, rng, start=1.0)
        times = schedule.times
        assert times.min() >= 1.0
        assert times.max() < 3.0

    def test_exponential_gaps(self, rng):
        gen = PoissonGenerator(4e6, 1500)
        gaps = np.diff(gen.generate(30.0, rng).times)
        # CV of exponential is 1.
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, abs=0.12)

    def test_flow_label_propagates(self, rng):
        schedule = PoissonGenerator(1e6, flow="fifo").generate(1.0, rng)
        assert all(p.flow == "fifo" for _, p in schedule)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PoissonGenerator(-1.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            PoissonGenerator(1e6, size_bytes=0)

    def test_reproducible_with_same_seed(self):
        a = PoissonGenerator(1e6).generate(5.0, np.random.default_rng(3))
        b = PoissonGenerator(1e6).generate(5.0, np.random.default_rng(3))
        assert np.array_equal(a.times, b.times)


class TestCBRGenerator:
    def test_interval(self):
        gen = CBRGenerator(1.2e6, 1500)
        assert gen.interval == pytest.approx(0.01)

    def test_periodic_times(self, rng):
        schedule = CBRGenerator(1.2e6, 1500).generate(0.1, rng)
        gaps = np.diff(schedule.times)
        assert np.allclose(gaps, 0.01)

    def test_rate_accuracy(self, rng):
        schedule = CBRGenerator(3e6, 1500).generate(10.0, rng)
        assert schedule.offered_rate_bps(10.0) == pytest.approx(3e6, rel=0.01)

    def test_zero_rate_empty(self, rng):
        assert len(CBRGenerator(0.0).generate(1.0, rng)) == 0

    def test_jitter_requires_rng(self):
        gen = CBRGenerator(1e6, jitter=1e-3)
        with pytest.raises(ValueError):
            gen.generate(1.0, None)

    def test_jitter_moves_times(self, rng):
        plain = CBRGenerator(1e6, 1500).generate(1.0, np.random.default_rng(1))
        jittered = CBRGenerator(1e6, 1500, jitter=1e-3).generate(
            1.0, np.random.default_rng(1))
        assert not np.allclose(plain.times[:len(jittered)],
                               jittered.times[:len(plain)])

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            CBRGenerator(1e6, jitter=-1e-3)

    def test_start_offset(self, rng):
        schedule = CBRGenerator(1.2e6, 1500).generate(0.05, rng, start=2.0)
        assert schedule.times.min() >= 2.0


class TestOnOffGenerator:
    def test_mean_rate(self):
        gen = OnOffGenerator(4e6, mean_on=0.1, mean_off=0.1)
        assert gen.mean_rate_bps == pytest.approx(2e6)

    def test_long_run_rate(self, rng):
        gen = OnOffGenerator(4e6, mean_on=0.05, mean_off=0.05)
        schedule = gen.generate(50.0, rng)
        assert schedule.offered_rate_bps(50.0) == pytest.approx(2e6, rel=0.2)

    def test_burstier_than_poisson(self, rng):
        onoff = OnOffGenerator(8e6, mean_on=0.05, mean_off=0.15, size_bytes=1500)
        gaps = np.diff(onoff.generate(30.0, rng).times)
        # On-off gaps have CV > 1 (heavier than exponential).
        assert np.std(gaps) / np.mean(gaps) > 1.1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OnOffGenerator(0.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            OnOffGenerator(1e6, 0.0, 0.1)
        with pytest.raises(ValueError):
            OnOffGenerator(1e6, 0.1, 0.1, size_bytes=-1)

    def test_times_within_horizon(self, rng):
        schedule = OnOffGenerator(4e6, 0.05, 0.05).generate(2.0, rng)
        if len(schedule):
            assert schedule.times.max() < 2.0


class TestTraceGenerator:
    def test_replays_trace(self):
        gen = TraceGenerator([(0.1, 100), (0.2, 200)])
        schedule = gen.generate(1.0)
        assert len(schedule) == 2
        assert schedule.arrivals[1][1].size_bytes == 200

    def test_clips_to_window(self):
        gen = TraceGenerator([(0.1, 100), (0.9, 100), (1.5, 100)])
        schedule = gen.generate(1.0)
        assert len(schedule) == 2

    def test_respects_start(self):
        gen = TraceGenerator([(0.1, 100), (0.9, 100)])
        schedule = gen.generate(1.0, start=0.5)
        assert len(schedule) == 1

    def test_rejects_unsorted_trace(self):
        with pytest.raises(ValueError):
            TraceGenerator([(1.0, 100), (0.5, 100)])


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(min_value=1e5, max_value=8e6),
           size=st.integers(min_value=40, max_value=1500),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_poisson_times_sorted_and_bounded(self, rate, size, seed):
        gen = PoissonGenerator(rate, size)
        schedule = gen.generate(1.0, np.random.default_rng(seed))
        times = schedule.times
        assert np.all(np.diff(times) >= 0)
        if len(times):
            assert times.min() >= 0.0 and times.max() < 1.0

    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(min_value=1e5, max_value=8e6),
           size=st.integers(min_value=40, max_value=1500))
    def test_cbr_rate_matches_request(self, rate, size):
        schedule = CBRGenerator(rate, size).generate(5.0, None)
        measured = schedule.offered_rate_bps(5.0)
        assert measured == pytest.approx(rate, rel=0.05)
